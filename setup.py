"""Setup shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The execution environment has no network and no `wheel` package, so the
PEP 517 editable path (which needs bdist_wheel) is unavailable; this shim
lets setuptools' classic `develop` command handle `pip install -e .`.
"""

from setuptools import setup

setup()
