"""Tests for repro.verify: structural verifiers, fuzzer, minimizer, CLI."""

import itertools
import json

import numpy as np
import pytest

from conftest import random_forest_model
from repro.api import compile_model
from repro.config import Schedule
from repro.errors import VerificationError
from repro.forest.ensemble import Forest
from repro.forest.statistics import populate_node_probabilities
from repro.hir.ir import build_hir
from repro.lir.layout.array_layout import EMPTY_SLOT
from repro.lir.lowering import lower_mir_to_lir
from repro.mir.lowering import lower_hir_to_mir
from repro.mir.passes import run_mir_pipeline
from repro.verify import (
    FuzzConfig,
    minimize_case,
    run_fuzz,
    verify_hir,
    verify_lir_module,
    verify_mir_module,
)
from repro.verify.fuzz import (
    adversarial_batches,
    compare_case,
    load_repro,
    random_fuzz_forest,
    sample_schedule,
)

NUM_FEATURES = 6


@pytest.fixture(scope="module")
def verify_forest():
    forest = random_forest_model(
        np.random.default_rng(21), num_trees=6, max_depth=5, num_features=NUM_FEATURES
    )
    populate_node_probabilities(
        forest, np.random.default_rng(22).normal(size=(64, NUM_FEATURES))
    )
    return forest


def lower(forest, schedule):
    """Run the pipeline up to LIR without codegen."""
    hir = build_hir(forest, schedule)
    mir = run_mir_pipeline(lower_hir_to_mir(hir), hir)
    return hir, mir, lower_mir_to_lir(mir, hir)


# ----------------------------------------------------------------------
# Verifiers accept every grid configuration (both precisions)
# ----------------------------------------------------------------------
GRID = [
    pytest.param(
        ts, layout, precision, opt,
        id=f"t{ts}-{layout}-{precision}-{'opt' if opt else 'plain'}",
    )
    for ts, layout, precision, opt in itertools.product(
        (1, 2, 4, 8), ("array", "sparse"), ("float64", "float32"), (False, True)
    )
]


class TestVerifiersClean:
    @pytest.mark.parametrize("tile_size,layout,precision,opt", GRID)
    def test_grid_schedule_verifies_and_matches(
        self, verify_forest, tile_size, layout, precision, opt
    ):
        schedule = Schedule(
            tile_size=tile_size,
            layout=layout,
            precision=precision,
            tiling="hybrid" if opt else "basic",
            interleave=4 if opt else 1,
            peel_walk=opt,
            pad_and_unroll=opt,
            verify=True,
        )
        rows = np.random.default_rng(30).normal(size=(16, NUM_FEATURES))
        assert compare_case(verify_forest, schedule, rows) is None

    def test_verify_spans_recorded(self, verify_forest):
        predictor = compile_model(verify_forest, Schedule(verify=True))
        for name in ("verify-hir", "verify-mir-module", "verify-lir"):
            span = predictor.trace.find(name)
            assert span is not None, name
            assert span.stats  # every verifier reports stats

    def test_verify_off_is_default_and_adds_no_spans(self, verify_forest):
        predictor = compile_model(verify_forest, Schedule())
        assert predictor.schedule.verify is False
        assert predictor.trace.find("verify-hir") is None
        assert predictor.trace.find("verify-lir") is None

    def test_verify_off_kernel_is_byte_identical(self, verify_forest):
        """Acceptance: verification must never change what is compiled."""
        base = compile_model(verify_forest, Schedule(verify=False))
        checked = compile_model(verify_forest, Schedule(verify=True))
        assert base.generated_source == checked.generated_source
        rows = np.random.default_rng(31).normal(size=(8, NUM_FEATURES))
        np.testing.assert_array_equal(
            base.raw_predict(rows), checked.raw_predict(rows)
        )

    def test_verifiers_return_stats(self, verify_forest):
        hir, mir, lir = lower(verify_forest, Schedule())
        hs = verify_hir(hir)
        assert hs["trees_checked"] == verify_forest.num_trees
        assert hs["tiles_checked"] > 0
        ms = verify_mir_module(mir, hir)
        assert ms["trees_covered"] == verify_forest.num_trees
        ls = verify_lir_module(lir)
        assert ls["lanes_checked"] == verify_forest.num_trees
        assert ls["tiles_walked"] > 0


# ----------------------------------------------------------------------
# Corrupted modules are rejected with precise diagnostics
# ----------------------------------------------------------------------
class TestHIRRejections:
    def test_corrupted_group_depth(self, verify_forest):
        hir, _, _ = lower(verify_forest, Schedule())
        hir.groups[0].depth += 1
        with pytest.raises(VerificationError, match=r"HIR: group 0: cached depth"):
            verify_hir(hir)

    def test_group_not_a_permutation(self, verify_forest):
        hir, _, _ = lower(verify_forest, Schedule())
        hir.groups[0].tree_indices.append(hir.groups[0].tree_indices[0])
        with pytest.raises(VerificationError, match="permutation"):
            verify_hir(hir)

    def test_corrupted_lut_row(self, verify_forest):
        hir, _, _ = lower(verify_forest, Schedule())
        # Flip one stored child index of a real shape's LUT row.
        sid = next(
            i for i, s in enumerate(hir.shape_registry.shapes()) if s != ()
        )
        hir.lut[sid, 0] = (hir.lut[sid, 0] + 1) % (len(hir.shape_registry.shapes()[sid]) + 1)
        with pytest.raises(VerificationError, match=rf"LUT row {sid} pattern"):
            verify_hir(hir)


class TestMIRRejections:
    def test_chunk_step_disagrees_with_jam_width(self, verify_forest):
        hir, mir, _ = lower(verify_forest, Schedule())
        loop = mir.tree_loops[0]
        if loop.num_trees == 1:
            pytest.skip("single-tree loop cannot desynchronize step and width")
        loop.step = max(1, loop.walk.width - 1)
        with pytest.raises(VerificationError, match="MIR: group 0"):
            verify_mir_module(mir, hir)

    def test_wrong_thread_count(self, verify_forest):
        hir, mir, _ = lower(verify_forest, Schedule())
        mir.row_loop.num_threads = 7
        with pytest.raises(VerificationError, match="threads"):
            verify_mir_module(mir, hir)


class TestLIRRejections:
    def test_corrupted_dummy_lut_row(self, verify_forest):
        """Acceptance: a corrupted reserved LUT row is named in the error."""
        hir, mir, lir = lower(
            verify_forest, Schedule(tile_size=4, layout="sparse")
        )
        assert lir.dummy_shape_id is not None  # hops/padding register it
        lir.lut[lir.dummy_shape_id, 3] = 1
        with pytest.raises(
            VerificationError,
            match=rf"dummy LUT row {lir.dummy_shape_id} corrupted: pattern 0x3",
        ):
            verify_lir_module(lir)

    def test_sparse_child_base_out_of_bounds(self, verify_forest):
        hir, mir, lir = lower(verify_forest, Schedule(layout="sparse"))
        group = next(g for g in lir.groups if not g.trivial)
        lane = int(np.argmax(~group.layout.root_leaf))
        n = int(group.layout.num_tiles[lane])
        group.layout.child_base[lane, 0] = n + 5
        with pytest.raises(
            VerificationError,
            match=rf"group {group.group_id} lane {lane} tile 0: child index",
        ):
            verify_lir_module(lir)

    def test_sparse_child_base_no_progress(self, verify_forest):
        hir, mir, lir = lower(verify_forest, Schedule(layout="sparse"))
        group = next(g for g in lir.groups if not g.trivial)
        lane = int(np.argmax(~group.layout.root_leaf))
        if int(group.layout.child_base[lane, 0]) < 0:
            pytest.skip("root's children are already leaves in this lane")
        group.layout.child_base[lane, 0] = 0
        with pytest.raises(VerificationError, match="does not advance"):
            verify_lir_module(lir)

    def test_array_walk_into_empty_slot(self, verify_forest):
        hir, mir, lir = lower(
            verify_forest, Schedule(layout="array", tile_size=2)
        )
        group = next(g for g in lir.groups if not g.trivial)
        lane = next(
            l for l in range(group.layout.num_trees)
            if int(group.layout.shape_ids[l, 0]) >= 0
        )
        arity = group.layout.tile_size + 1
        child = 1  # first child slot of the root
        assert child < group.layout.num_slots
        group.layout.shape_ids[lane, child] = EMPTY_SLOT
        with pytest.raises(VerificationError, match="empty slot"):
            verify_lir_module(lir)

    def test_feature_index_out_of_range(self, verify_forest):
        hir, mir, lir = lower(verify_forest, Schedule(layout="sparse"))
        group = next(g for g in lir.groups if not g.trivial)
        lane = int(np.argmax(~group.layout.root_leaf))
        group.layout.features[lane, 0, 0] = lir.num_features + 3
        with pytest.raises(VerificationError, match="feature index"):
            verify_lir_module(lir)

    def test_compile_model_surfaces_verification_error(self, verify_forest, monkeypatch):
        """verify=True wires the LIR verifier into compile_model itself."""
        import repro.api as api

        def corrupt_lower(mir, hir, trace=None):
            lir = lower_mir_to_lir(mir, hir, trace=trace)
            for g in lir.groups:
                if not g.trivial and g.layout.kind == "sparse":
                    lane = int(np.argmax(~g.layout.root_leaf))
                    g.layout.child_base[lane, 0] = int(g.layout.num_tiles[lane]) + 9
                    return lir
            return lir

        monkeypatch.setattr(api, "lower_mir_to_lir", corrupt_lower)
        with pytest.raises(VerificationError, match="LIR:"):
            api.compile_model(verify_forest, Schedule(layout="sparse", verify=True))


# ----------------------------------------------------------------------
# Fuzzer
# ----------------------------------------------------------------------
class TestFuzzer:
    def test_adversarial_corpus_shapes(self, verify_forest):
        rng = np.random.default_rng(5)
        batches = dict(adversarial_batches(verify_forest, rng))
        assert batches["empty"].shape == (0, NUM_FEATURES)
        assert batches["one-row"].shape == (1, NUM_FEATURES)
        assert not batches["non-contiguous-cols"].flags.c_contiguous
        assert not batches["strided-rows"].flags.c_contiguous
        assert batches["wrong-dtype"].dtype == np.float32
        assert np.isinf(batches["plus-inf"]).any()
        assert np.isinf(batches["minus-inf"]).any()
        # threshold-equal rows really are drawn from the model's thresholds
        # (plus the 0.0 the corpus always keeps in the pool)
        thr = np.concatenate(
            [t.threshold[t.internal_nodes()] for t in verify_forest.trees]
            + [np.zeros(1)]
        )
        assert np.isin(batches["threshold-equal"], thr).all()

    def test_sampled_schedules_are_valid_and_verify(self):
        rng = np.random.default_rng(6)
        for _ in range(40):
            schedule = sample_schedule(rng)  # Schedule.__post_init__ validates
            assert schedule.verify is True

    def test_fixed_seed_fuzz_run_is_clean(self):
        """A small seeded campaign: zero mismatches across the corpus."""
        report = run_fuzz(FuzzConfig(cases=8, seed=1234, minimize=False))
        assert report.ok, report.summary()
        assert report.comparisons == 8 * 14  # every corpus batch compared
        assert "0 failures" in report.summary()

    def test_fuzz_records_and_dumps_failures(self, tmp_path, monkeypatch):
        import repro.verify.fuzz as fuzz

        def fake_compare(forest, schedule, rows):
            if rows.shape[0] == 1:  # fail exactly the one-row batch
                return ("interpreter", 0.5)
            return None

        monkeypatch.setattr(fuzz, "compare_case", fake_compare)
        report = fuzz.run_fuzz(
            FuzzConfig(cases=2, seed=9, minimize=False, out_dir=str(tmp_path))
        )
        assert len(report.failures) == 2
        failure = report.failures[0]
        assert failure.batch == "one-row" and failure.stage == "interpreter"
        assert failure.repro_path is not None
        payload = json.loads(open(failure.repro_path).read())
        assert payload["batch"] == "one-row"
        forest, schedule, rows = load_repro(failure.repro_path)
        assert isinstance(forest, Forest) and rows.shape[0] == 1
        assert schedule.verify is True

    def test_repro_json_roundtrips_infinities(self, tmp_path):
        from repro.verify.fuzz import _dump_repro, FuzzFailure

        forest = random_fuzz_forest(np.random.default_rng(2), num_trees=2)
        rows = np.array([[np.inf, -np.inf, 0.0, 1.0, 2.0, 3.0]])
        failure = FuzzFailure(
            case=0, stage="interpreter", batch="plus-inf", max_abs_err=1.0,
            schedule={}, num_trees=2, num_rows=1,
        )
        path = _dump_repro(str(tmp_path), 0, forest, Schedule(), rows, failure)
        loaded_forest, loaded_schedule, loaded_rows = load_repro(path)
        np.testing.assert_array_equal(loaded_rows, rows)
        assert loaded_forest.num_trees == 2


class TestMinimizer:
    def test_minimizer_shrinks_to_injected_core(self):
        """With an injected failure predicate the shrink is fully checkable:
        the failure needs one marked tree and one marked row, so the minimal
        repro is exactly 1 tree x 1 row and a near-baseline schedule."""
        rng = np.random.default_rng(77)
        forest = random_fuzz_forest(rng, num_trees=5, max_depth=3)
        marked = forest.trees[2]
        marked_value = float(marked.value[marked.leaves()[0]])
        rows = rng.normal(size=(8, NUM_FEATURES))
        rows[5, 0] = 1e6  # the marked row

        def check(f, s, r):
            has_tree = any(
                marked_value in t.value.tolist() for t in f.trees
            )
            has_row = bool((np.asarray(r)[:, 0] == 1e6).any())
            return has_tree and has_row

        schedule = Schedule(tile_size=4, interleave=4, parallel=2, row_block=3)
        small_forest, small_schedule, small_rows = minimize_case(
            forest, schedule, rows, check=check, budget=200
        )
        assert small_forest.num_trees == 1
        assert marked_value in small_forest.trees[0].value.tolist()
        assert small_rows.shape[0] == 1 and small_rows[0, 0] == 1e6
        # Schedule walked toward the scalar baseline wherever possible.
        assert small_schedule.parallel == 1
        assert small_schedule.row_block == 0
        assert small_schedule.interleave == 1
        assert small_schedule.tile_size == 1
        assert small_schedule.layout == "array"

    def test_minimizer_respects_budget(self):
        calls = []

        def check(f, s, r):
            calls.append(1)
            return True

        forest = random_fuzz_forest(np.random.default_rng(3), num_trees=4)
        minimize_case(
            forest, Schedule(), np.zeros((16, NUM_FEATURES)), check=check, budget=10
        )
        assert len(calls) <= 10


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_smoke_exit_zero(self, tmp_path, capsys):
        from repro.verify.__main__ import main

        rc = main(
            ["--no-grid", "--cases", "3", "--seed", "0", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verify: OK" in out

    def test_grid_phase_runs(self, capsys):
        from repro.verify.__main__ import run_grid

        failures = run_grid(seed=0, smoke=True, log=print)
        assert failures == 0
        assert "grid:" in capsys.readouterr().out


class TestCostRankedSweep:
    def test_tiny_sweep_is_clean(self, capsys):
        """The schedules the budgeted tuner compiles first must verify and
        match the references on the adversarial corpus (PR5 sweep config)."""
        from repro.verify.sweep import run_cost_ranked_sweep

        comparisons, failures = run_cost_ranked_sweep(
            seeds=(0,), top_k=2, log=print
        )
        assert failures == 0
        assert comparisons > 0

    def test_cli_flag_runs_sweep(self, tmp_path, capsys):
        from repro.verify.__main__ import main

        rc = main(
            [
                "--no-grid", "--cost-ranked", "--smoke", "--cases", "1",
                "--seed", "0", "--out", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "cost-ranked sweep:" in out
