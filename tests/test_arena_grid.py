"""Differential + concurrency tests for scratch-arena kernels.

The arena emitter rewrites every walk-step temporary into preallocated
per-thread buffers, so three things must hold beyond the existing grid:

* arena kernels match the reference walk across the full Table-II schedule
  grid at both precisions (float64 tight, float32 within 1e-5 relative);
* arena and alloc emitters are *bit-identical* at equal precision — the
  rewrite only changes where temporaries live, never the op sequence;
* arenas rebind correctly across varying batch sizes (views are sliced per
  chunk, growth is monotonic) and across threads (one arena per thread,
  never shared, never corrupting concurrent outputs).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from conftest import random_forest_model
from repro.api import compile_model
from repro.config import Schedule
from repro.lir.memory import ArenaSpec, ScratchArena
from test_differential_grid import GRID, NUM_FEATURES, _with_probabilities

PRECISIONS = ("float64", "float32")


@pytest.fixture(scope="module")
def arena_rows():
    return np.random.default_rng(404).normal(size=(64, NUM_FEATURES))


@pytest.fixture(scope="module")
def arena_forest(arena_rows):
    forest = random_forest_model(
        np.random.default_rng(41), num_trees=6, max_depth=5, num_features=NUM_FEATURES
    )
    return _with_probabilities(forest, arena_rows)


def _schedule(tile_size, tiling, layout, loops, precision, scratch="arena"):
    return Schedule(
        tile_size=tile_size, tiling=tiling, layout=layout,
        precision=precision, scratch=scratch, **loops,
    )


def _rtol(precision):
    # float32 narrows thresholds/features/leaves; comparisons near a
    # rounded threshold may legitimately flip, but leaf sums stay within
    # single-precision noise on these smooth forests.
    return 1e-5 if precision == "float32" else 1e-10


@pytest.mark.parametrize("precision", PRECISIONS)
@pytest.mark.parametrize("tile_size,tiling,layout,loops", GRID)
class TestArenaGrid:
    def test_matches_reference_and_alloc(
        self, arena_forest, arena_rows, tile_size, tiling, layout, loops, precision
    ):
        arena = compile_model(
            arena_forest, _schedule(tile_size, tiling, layout, loops, precision)
        )
        alloc = compile_model(
            arena_forest,
            _schedule(tile_size, tiling, layout, loops, precision, scratch="alloc"),
        )
        got = arena.raw_predict(arena_rows)
        want = arena_forest.raw_predict(arena_rows)
        np.testing.assert_allclose(got, want, rtol=_rtol(precision), atol=1e-7)
        # Same op sequence, same dtypes — only the temporaries' storage
        # differs, so arena and alloc must agree bit for bit.
        np.testing.assert_array_equal(got, alloc.raw_predict(arena_rows))


class TestArenaReuse:
    """One predictor, many batch shapes: views must rebind, capacity grow."""

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_varying_batch_sizes(self, arena_forest, arena_rows, precision):
        predictor = compile_model(
            arena_forest, Schedule(precision=precision, scratch="arena")
        )
        rng = np.random.default_rng(7)
        assert predictor.scratch_nbytes() == 0  # lazy: nothing until first run
        for n in (64, 1, 7, 130, 0, 33, 130):
            rows = rng.normal(size=(n, NUM_FEATURES))
            np.testing.assert_allclose(
                predictor.raw_predict(rows),
                arena_forest.raw_predict(rows),
                rtol=_rtol(precision),
                atol=1e-7,
            )
        assert predictor.scratch_nbytes() > 0

    def test_growth_is_monotonic(self, arena_forest):
        predictor = compile_model(arena_forest, Schedule(scratch="arena"))
        rng = np.random.default_rng(8)
        predictor.raw_predict(rng.normal(size=(8, NUM_FEATURES)))
        small = predictor.scratch_nbytes()
        predictor.raw_predict(rng.normal(size=(256, NUM_FEATURES)))
        grown = predictor.scratch_nbytes()
        assert grown >= small
        # Shrinking the batch must not shrink (or reallocate) the arena.
        predictor.raw_predict(rng.normal(size=(4, NUM_FEATURES)))
        assert predictor.scratch_nbytes() == grown

    def test_one_row_arena_is_batch_independent(self, arena_forest):
        predictor = compile_model(
            arena_forest, Schedule(loop_order="one-row", scratch="arena")
        )
        rng = np.random.default_rng(9)
        predictor.raw_predict(rng.normal(size=(4, NUM_FEATURES)))
        first = predictor.scratch_nbytes()
        predictor.raw_predict(rng.normal(size=(512, NUM_FEATURES)))
        # Row-at-a-time kernels touch one row of scratch regardless of B.
        assert predictor.scratch_nbytes() == first

    def test_repeated_results_identical(self, arena_forest, arena_rows):
        """Arena reuse leaves no state behind: rerunning is bit-stable."""
        predictor = compile_model(arena_forest, Schedule(scratch="arena"))
        first = predictor.raw_predict(arena_rows)
        for _ in range(3):
            np.testing.assert_array_equal(predictor.raw_predict(arena_rows), first)


class TestArenaConcurrency:
    def test_threads_get_distinct_arenas(self, arena_forest, arena_rows):
        predictor = compile_model(arena_forest, Schedule(scratch="arena"))
        arenas = {}
        barrier = threading.Barrier(2)

        def worker(tid):
            barrier.wait()
            predictor.raw_predict(arena_rows)
            arenas[tid] = predictor._arena()

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert arenas[0] is not arenas[1]
        assert predictor.scratch_nbytes() >= arenas[0].nbytes() + arenas[1].nbytes()

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_shared_predictor_uncorrupted(self, arena_forest, precision):
        """Two threads hammer one Predictor; per-thread arenas never mix."""
        predictor = compile_model(
            arena_forest, Schedule(precision=precision, scratch="arena")
        )
        rng = np.random.default_rng(11)
        # Different batch shapes per thread so shared scratch would show up
        # as shape errors or cross-talk, not silent luck.
        batches = {
            0: [rng.normal(size=(n, NUM_FEATURES)) for n in (64, 3, 128, 17)],
            1: [rng.normal(size=(n, NUM_FEATURES)) for n in (5, 200, 1, 96)],
        }
        serial = {
            tid: [predictor.raw_predict(b) for b in rows]
            for tid, rows in batches.items()
        }
        results = {}
        barrier = threading.Barrier(2)

        def worker(tid):
            barrier.wait()
            out = []
            for _ in range(10):
                out = [predictor.raw_predict(b) for b in batches[tid]]
            return out

        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = {tid: pool.submit(worker, tid) for tid in batches}
            for tid, future in futures.items():
                results[tid] = future.result()
        for tid, outs in results.items():
            for got, want in zip(outs, serial[tid]):
                np.testing.assert_array_equal(got, want)


class TestNoCopyFastPath:
    def test_matching_dtype_not_copied(self, arena_forest):
        predictor = compile_model(arena_forest, Schedule())
        rows = np.ascontiguousarray(
            np.random.default_rng(0).normal(size=(16, NUM_FEATURES))
        )
        assert predictor._check(rows) is rows

    def test_float32_predictor_accepts_float32_without_copy(self, arena_forest):
        predictor = compile_model(arena_forest, Schedule(precision="float32"))
        rows = np.random.default_rng(0).normal(size=(16, NUM_FEATURES))
        rows32 = np.ascontiguousarray(rows, dtype=np.float32)
        assert predictor._check(rows32) is rows32
        # Mismatched dtype still converts (correctness over zero-copy).
        converted = predictor._check(rows)
        assert converted.dtype == np.float32

    def test_noncontiguous_still_copied(self, arena_forest):
        predictor = compile_model(arena_forest, Schedule())
        wide = np.random.default_rng(0).normal(size=(16, 2 * NUM_FEATURES))
        view = wide[:, ::2]
        checked = predictor._check(view)
        assert checked is not view
        assert checked.flags.c_contiguous


class TestArenaSpec:
    def test_nbytes_for_matches_allocation(self, arena_forest):
        predictor = compile_model(arena_forest, Schedule(scratch="arena"))
        spec = predictor.arena_spec
        arena = ScratchArena(spec).ensure(64)
        assert arena.nbytes() == spec.nbytes_for(64)

    def test_row_block_preallocates(self):
        spec = ArenaSpec(
            max_lane=8, max_scalar=2, num_classes=1, num_features=4,
            per_row=False, row_block=32, float_dtype="float64",
            findex_dtype="int64", pack_widths=(16,),
        )
        arena = ScratchArena(spec)
        assert arena.nbytes() == spec.nbytes_for(32)
        assert arena.grows == 1
        arena.ensure(32)  # covered by the construction-time allocation
        assert arena.grows == 1

    def test_alloc_mode_has_no_spec(self, arena_forest):
        predictor = compile_model(arena_forest, Schedule(scratch="alloc"))
        assert predictor.arena_spec is None
        predictor.raw_predict(np.zeros((4, NUM_FEATURES)))
        assert predictor.scratch_nbytes() == 0
