"""Tests for the ``repro.observe`` observability subsystem.

Covers the compilation trace (spans, stats, report, JSON), the kernel
profiling counters (zero-cost-when-off, differential correctness against
unprofiled kernels, schedule consistency, thread aggregation), the unified
registry (stable snapshot schema, serving integration, error isolation) and
the ``python -m repro.observe`` dump CLI.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import Schedule, compile_model, explain
from repro.observe import (
    COUNTER_FIELDS,
    SNAPSHOT_KEYS,
    CompilationTrace,
    ProfileCounters,
    ProfileRecorder,
    Registry,
    registry,
)
from repro.observe.trace import jsonable

PIPELINE_SPANS = ("hir", "mir-lower", "mir-passes", "lir-lower", "backend")


# ----------------------------------------------------------------------
# Compilation traces
# ----------------------------------------------------------------------
class TestCompilationTrace:
    def test_compile_model_attaches_trace(self, trained_forest):
        predictor = compile_model(trained_forest, Schedule(tile_size=4))
        trace = predictor.trace
        assert trace is not None
        names = [child.name for child in trace.root.children]
        for span in PIPELINE_SPANS:
            assert span in names
        assert trace.total_seconds > 0.0

    def test_span_durations_nested_and_nonnegative(self, trained_forest):
        trace = compile_model(trained_forest, Schedule()).trace
        hir = trace.find("hir")
        assert hir.duration_s >= 0.0
        # nested passes sum to no more than the enclosing span
        child_total = sum(c.duration_s for c in hir.children)
        assert child_total <= hir.duration_s + 1e-6
        assert {c.name for c in hir.children} >= {"tiling", "padding", "reorder"}

    def test_tiling_stats_recorded(self, trained_forest):
        trace = compile_model(trained_forest, Schedule(tile_size=8)).trace
        stats = trace.find("tiling").stats
        assert stats["tile_size"] == 8
        assert stats["num_trees"] == trained_forest.num_trees
        assert stats["tiles_per_tree"]["count"] == trained_forest.num_trees
        assert sum(stats["tile_shape_hist"].values()) > 0
        # tiling shortens walks: tile levels <= node levels
        assert (
            stats["leaf_tile_depth_after"]["mean"]
            <= stats["tree_depth_before"]["mean"]
        )

    def test_padding_and_layout_stats(self, deep_forest):
        trace = compile_model(
            deep_forest, Schedule(tile_size=8, pad_and_unroll=True)
        ).trace
        pad = trace.find("padding").stats
        assert pad["total_tiles"] >= pad["dummy_tiles"] >= 0
        assert 0.0 <= pad["dummy_fraction"] <= 1.0
        layout = trace.find("layout").stats
        assert layout["model_bytes"] > 0
        assert layout["lut_bytes"] > 0

    def test_report_and_json_roundtrip(self, trained_forest):
        trace = compile_model(trained_forest, Schedule()).trace
        report = trace.report()
        for span in ("tiling", "codegen-emit", "jit-compile"):
            assert span in report
        doc = json.loads(trace.to_json())
        assert doc["name"] == "compile"
        assert isinstance(doc["children"], list)

    def test_jsonable_coerces_numpy(self):
        value = jsonable(
            {"a": np.int64(3), "b": np.float32(0.5), "c": np.arange(3), 4: "x"}
        )
        assert json.loads(json.dumps(value)) == {
            "a": 3,
            "b": 0.5,
            "c": [0, 1, 2],
            "4": "x",
        }

    def test_standalone_trace_spans(self):
        trace = CompilationTrace(label="t")
        with trace.span("outer"):
            with trace.span("inner") as span:
                span.stats["k"] = 1
        trace.finish()
        assert trace.find("inner").stats == {"k": 1}
        assert trace.find("inner") in trace.find("outer").children


# ----------------------------------------------------------------------
# Kernel profiling counters
# ----------------------------------------------------------------------
GRID = [
    Schedule.scalar_baseline(),
    Schedule(tile_size=4, tiling="basic", layout="array"),
    Schedule(tile_size=8, tiling="hybrid", layout="sparse"),
    Schedule(tile_size=8, tiling="hybrid", layout="sparse", compact_walks=True),
    Schedule(tile_size=8, tiling="hybrid", layout="sparse", peel_walk=False),
    Schedule(tile_size=8, loop_order="one-row"),
]


class TestProfileCounters:
    @pytest.mark.parametrize("schedule", GRID, ids=lambda s: (
        f"t{s.tile_size}-{s.tiling}-{s.layout}-{s.loop_order}"
        f"{'-compact' if s.compact_walks else ''}{'' if s.peel_walk else '-nopeel'}"
    ))
    def test_profiled_predictions_bit_identical(
        self, trained_forest, test_rows, schedule
    ):
        plain = compile_model(trained_forest, schedule)
        profiled = compile_model(trained_forest, schedule.with_(profile=True))
        expected = plain.raw_predict(test_rows)
        got = profiled.raw_predict(test_rows)
        assert np.array_equal(expected, got)
        counters = profiled.profile_counters()
        assert counters["kernel_calls"] >= 1
        assert counters["rows"] == test_rows.shape[0]
        assert counters["walk_steps"] > 0

    def test_unprofiled_source_has_no_instrumentation(
        self, trained_forest
    ):
        predictor = compile_model(trained_forest, Schedule(tile_size=8))
        source = predictor.generated_source
        for token in ("_C", "_P", "walk_steps", "lut_lookups", "rows_masked"):
            assert token not in source
        assert predictor.profile_counters() == {}

    def test_profiled_source_contains_instrumentation(self, trained_forest):
        predictor = compile_model(
            trained_forest, Schedule(tile_size=8, profile=True)
        )
        source = predictor.generated_source
        assert "_C = _P.local()" in source
        assert "_C.walk_steps" in source

    def test_tiled_walks_fewer_steps_than_untiled(
        self, trained_forest, test_rows
    ):
        untiled = compile_model(
            trained_forest, Schedule.scalar_baseline().with_(profile=True)
        )
        tiled = compile_model(
            trained_forest, Schedule(tile_size=8, profile=True)
        )
        untiled.raw_predict(test_rows)
        tiled.raw_predict(test_rows)
        steps_untiled = untiled.profile_counters()["walk_steps"]
        steps_tiled = tiled.profile_counters()["walk_steps"]
        assert 0 < steps_tiled < steps_untiled

    def test_reset_profile_zeroes_counters(self, trained_forest, test_rows):
        predictor = compile_model(trained_forest, Schedule(profile=True))
        predictor.raw_predict(test_rows)
        assert predictor.profile_counters()["rows"] == test_rows.shape[0]
        predictor.reset_profile()
        assert predictor.profile_counters()["rows"] == 0
        predictor.raw_predict(test_rows[:16])
        assert predictor.profile_counters()["rows"] == 16

    def test_parallel_threads_aggregate(self, trained_forest):
        rows = np.random.default_rng(1).normal(
            size=(256, trained_forest.num_features)
        )
        schedule = Schedule(tile_size=4, parallel=4, row_block=32, profile=True)
        predictor = compile_model(trained_forest, schedule)
        expected = compile_model(
            trained_forest, schedule.with_(profile=False)
        ).raw_predict(rows)
        got = predictor.raw_predict(rows)
        assert np.array_equal(expected, got)
        counters = predictor.profile_counters()
        assert counters["rows"] == rows.shape[0]
        assert predictor.profile_recorder.num_threads >= 1

    def test_counters_struct(self):
        c = ProfileCounters()
        assert c.as_dict() == {name: 0 for name in COUNTER_FIELDS}
        c.walk_steps += 5
        assert c.as_dict()["walk_steps"] == 5
        c.clear()
        assert c.as_dict()["walk_steps"] == 0

    def test_recorder_thread_isolation(self):
        recorder = ProfileRecorder(label="iso")
        errors = []

        def worker(n):
            try:
                local = recorder.local()
                for _ in range(n):
                    local.walk_steps += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(1000,)) for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert recorder.aggregate()["walk_steps"] == 8000
        assert recorder.num_threads == 8
        recorder.reset()
        assert recorder.aggregate()["walk_steps"] == 0

    def test_thread_churn_keeps_struct_list_bounded(self):
        # Regression: one struct per thread that *ever* existed grew the
        # recorder without bound under kernel-pool churn. Exited threads
        # must fold into the retired total and drop their structs.
        recorder = ProfileRecorder(label="churn")

        def worker():
            recorder.local().walk_steps += 1

        for _ in range(50):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert recorder.aggregate()["walk_steps"] == 50
        assert recorder.num_threads == 50
        assert len(recorder._threads) == 0  # all churned threads retired

    def test_reset_races_registration(self):
        # Regression: reset() used to snapshot the thread list and clear
        # outside one lock hold, so a thread registering concurrently
        # could carry pre-reset counts into the after-measurement.
        recorder = ProfileRecorder(label="race")
        stop = threading.Event()
        errors: list[Exception] = []

        def bump():
            try:
                while not stop.is_set():
                    recorder.local().walk_steps += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def resetter():
            try:
                for _ in range(300):
                    recorder.reset()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        bumpers = [threading.Thread(target=bump) for _ in range(4)]
        racer = threading.Thread(target=resetter)
        for t in bumpers:
            t.start()
        racer.start()
        racer.join()
        stop.set()
        for t in bumpers:
            t.join()
        assert not errors
        recorder.reset()
        assert recorder.aggregate()["walk_steps"] == 0

    def test_released_predictor_vanishes_from_global_aggregate(
        self, trained_forest, test_rows
    ):
        # Regression: the kernel namespace held a strong reference to the
        # recorder (namespace ↔ function cycle), so predictors evicted
        # from a PredictorCache kept reporting in aggregate_all() forever.
        import gc

        from repro.observe.profile import aggregate_all

        predictor = compile_model(trained_forest, Schedule(profile=True))
        predictor.raw_predict(test_rows)
        label = predictor.profile_recorder.label
        assert label in aggregate_all()["recorders"]
        del predictor
        gc.collect()
        assert label not in aggregate_all()["recorders"]

    def test_evicted_profiled_predictor_leaves_registry(
        self, trained_forest, test_rows
    ):
        import gc

        from repro.observe.profile import aggregate_all
        from repro.serve.cache import PredictorCache

        cache = PredictorCache(capacity=1)
        predictor = compile_model(trained_forest, Schedule(profile=True))
        predictor.raw_predict(test_rows)
        label = predictor.profile_recorder.label
        cache.put("a", predictor)
        del predictor
        gc.collect()
        assert label in aggregate_all()["recorders"]  # cache keeps it live
        cache.put("b", object())  # capacity 1: evicts the predictor
        gc.collect()
        assert label not in aggregate_all()["recorders"]


# ----------------------------------------------------------------------
# explain()
# ----------------------------------------------------------------------
class TestExplain:
    def test_explain_reports_decisions(self, trained_forest):
        report = explain(trained_forest, Schedule(tile_size=8))
        assert "schedule decision report" in report
        assert "-- tiling" in report
        assert "-- padding" in report
        assert "-- memory" in report
        assert "tile levels" in report

    def test_explain_with_profiled_predictor(self, trained_forest, test_rows):
        predictor = compile_model(
            trained_forest, Schedule(tile_size=8, profile=True)
        )
        predictor.raw_predict(test_rows)
        report = explain(trained_forest, predictor=predictor)
        assert "-- kernel profile" in report
        assert "walk_steps" in report


# ----------------------------------------------------------------------
# The unified registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_snapshot_schema_is_stable(self):
        snap = Registry().snapshot()
        assert tuple(snap.keys()) == SNAPSHOT_KEYS
        assert snap["schema_version"] == 5
        assert SNAPSHOT_KEYS == (
            "schema_version",
            "kernel_pool",
            "traces",
            "profiles",
            "tunes",
            "backends",
            "serving",
            "spans",
            "events",
            "gauges",
        )
        # the v5 keys are structured rings, present even when empty
        assert set(snap["spans"]) >= {"recorded", "kept", "recent"}
        assert set(snap["events"]) >= {"recorded", "kept", "by_kind", "recent"}

    def test_backend_events_accumulate(self):
        reg = Registry()
        reg.record_backend_event("numpy_jit", "compiles")
        reg.record_backend_event("numpy_jit", "compiles", 2)
        reg.record_backend_event("aot_export", "artifact_loads")
        snap = reg.snapshot()
        assert snap["backends"] == {
            "numpy_jit": {"compiles": 3},
            "aot_export": {"artifact_loads": 1},
        }
        reg.clear()
        assert reg.snapshot()["backends"] == {}

    def test_tune_ring_records_and_bounds(self):
        reg = Registry()
        for i in range(40):
            reg.record_tune({"explored": i})
        snap = reg.snapshot()
        assert snap["tunes"]["recorded"] == 40
        assert snap["tunes"]["kept"] == 32
        assert snap["tunes"]["recent"][-1]["explored"] == 39
        reg.clear()
        assert reg.snapshot()["tunes"]["recorded"] == 0

    def test_global_registry_snapshot_schema(self):
        snap = registry.snapshot()
        assert tuple(snap.keys()) == SNAPSHOT_KEYS

    def test_export_json_valid(self, trained_forest):
        compile_model(trained_forest, Schedule())  # record at least one trace
        doc = json.loads(registry.export_json())
        assert doc["traces"]["recorded"] >= 1
        assert doc["traces"]["kept"] <= doc["traces"]["recorded"]
        assert doc["traces"]["recent"][-1]["name"] == "compile"
        assert "tasks_submitted" in doc["kernel_pool"]

    def test_trace_ring_is_bounded(self, trained_forest):
        reg = Registry(trace_capacity=2)
        for _ in range(5):
            trace = CompilationTrace()
            trace.finish()
            reg.record_trace(trace)
        snap = reg.snapshot()
        assert snap["traces"]["recorded"] == 5
        assert snap["traces"]["kept"] == 2

    def test_server_registers_and_unregisters(self, trained_forest, test_rows):
        from repro.serve import ModelServer

        server = ModelServer()
        name = server._registry_name
        try:
            server.register("m", trained_forest, Schedule(tile_size=4))
            server.predict("m", test_rows)
            serving = registry.snapshot()["serving"]
            assert name in serving
            assert serving[name]["requests"] >= 1
            assert serving[name]["latency"]["count"] >= 1
        finally:
            server.close()
        assert name not in registry.snapshot()["serving"]

    def test_failing_provider_reports_error_string(self):
        reg = Registry()
        reg.register_gauge("ok", lambda: 42)
        reg.register_gauge("bad", lambda: 1 / 0)
        reg.register_serving("down", lambda: (_ for _ in ()).throw(RuntimeError("x")))
        snap = reg.snapshot()
        assert snap["gauges"]["ok"] == 42
        assert str(snap["gauges"]["bad"]).startswith("<error:")
        assert str(snap["serving"]["down"]).startswith("<error:")
        json.loads(reg.export_json())  # errors must stay serializable

    def test_failing_provider_does_not_poison_siblings_or_schema(self):
        # One raising provider must leave every sibling gauge readable and
        # the top-level schema intact — across repeated snapshots (the
        # failure must not latch) and with several failure flavors.
        reg = Registry()
        reg.register_gauge("before", lambda: 1)
        reg.register_gauge("div", lambda: 1 / 0)
        reg.register_gauge("key", lambda: {}["missing"])
        reg.register_gauge("typ", lambda: len(None))
        reg.register_gauge("after", lambda: {"nested": [1, 2]})
        for _ in range(3):
            snap = reg.snapshot()
            assert tuple(snap.keys()) == SNAPSHOT_KEYS
            assert snap["gauges"]["before"] == 1
            assert snap["gauges"]["after"] == {"nested": [1, 2]}
            assert str(snap["gauges"]["div"]).startswith("<error:")
            assert str(snap["gauges"]["key"]).startswith("<error:")
            assert str(snap["gauges"]["typ"]).startswith("<error:")
        # recovery: replacing the provider clears the error on the next read
        reg.register_gauge("div", lambda: 7)
        assert reg.snapshot()["gauges"]["div"] == 7
        json.loads(reg.export_json())

    def test_profiles_section_aggregates(self, trained_forest, test_rows):
        predictor = compile_model(trained_forest, Schedule(profile=True))
        predictor.raw_predict(test_rows)
        profiles = registry.snapshot()["profiles"]
        assert predictor.profile_recorder.label in profiles["recorders"]
        assert profiles["totals"]["walk_steps"] > 0


# ----------------------------------------------------------------------
# Dump CLI
# ----------------------------------------------------------------------
class TestDumpCli:
    def test_main_writes_valid_snapshot(self, tmp_path, capsys):
        from repro.observe.__main__ import main

        out = tmp_path / "trace.json"
        rc = main(
            ["--rows", "32", "--requests", "2", "--profile", "--output", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert tuple(doc.keys()) == SNAPSHOT_KEYS
        assert doc["profiles"]["totals"]["rows"] >= 64
        printed = json.loads(capsys.readouterr().out)
        assert printed["schema_version"] == doc["schema_version"]


# ----------------------------------------------------------------------
# Experiment harness trace recording
# ----------------------------------------------------------------------
class TestHarnessTraces:
    def test_record_schedule_trace(self, tmp_path, trained_forest):
        from repro.experiments.harness import (
            ExperimentConfig,
            record_schedule_trace,
        )

        predictor = compile_model(trained_forest, Schedule(tile_size=4))
        config = ExperimentConfig(record_traces=True, trace_dir=str(tmp_path))
        path = record_schedule_trace(config, "bench", "t4/basic", predictor)
        assert path is not None and path.endswith(".trace.json")
        doc = json.loads(open(path).read())
        assert doc["name"] == "compile"
        # off by default: no writes, no error
        assert (
            record_schedule_trace(
                ExperimentConfig(), "bench", "t4", predictor
            )
            is None
        )
