"""Thread-safety tests: shared predictors, sessions, caches and servers.

Compiled predictors hold only read-only buffers, so concurrent callers must
get bit-identical results to a serial run — both through the raw kernel and
through the serving layer (with and without micro-batching). The predictor
cache must coalesce concurrent compilations of the same fingerprint into
exactly one compile.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import compile_model
from repro.config import Schedule
from repro.serve import (
    BatchingPolicy,
    InferenceSession,
    ModelServer,
    PredictorCache,
    ServingMetrics,
)

NUM_THREADS = 8
CALLS_PER_THREAD = 5


def _hammer(fn, rows_of):
    """Run ``fn`` from many threads; return {(thread, call): result}."""
    results = {}
    barrier = threading.Barrier(NUM_THREADS)

    def worker(tid):
        barrier.wait()
        for call in range(CALLS_PER_THREAD):
            results[(tid, call)] = fn(rows_of(tid, call))

    with ThreadPoolExecutor(max_workers=NUM_THREADS) as pool:
        futures = [pool.submit(worker, t) for t in range(NUM_THREADS)]
        for f in futures:
            f.result()
    return results


class TestSharedPredictor:
    @pytest.mark.parametrize("schedule", [Schedule(), Schedule(parallel=4)],
                             ids=["serial", "parallel4"])
    def test_bit_identical_to_serial(self, trained_forest, test_rows, schedule):
        predictor = compile_model(trained_forest, schedule)
        batches = {
            (t, c): test_rows[(t * 7 + c) % 32: (t * 7 + c) % 32 + 16]
            for t in range(NUM_THREADS) for c in range(CALLS_PER_THREAD)
        }
        serial = {key: predictor.raw_predict(rows) for key, rows in batches.items()}
        threaded = _hammer(predictor.raw_predict, lambda t, c: batches[(t, c)])
        for key, want in serial.items():
            assert np.array_equal(threaded[key], want)


class TestSharedSession:
    def test_session_without_batching(self, trained_forest, test_rows):
        with InferenceSession(trained_forest) as session:
            want = session.raw_predict(test_rows)
            threaded = _hammer(session.raw_predict, lambda t, c: test_rows)
        for got in threaded.values():
            assert np.array_equal(got, want)

    def test_session_with_batching(self, trained_forest, test_rows):
        policy = BatchingPolicy(max_batch_rows=256, max_delay_s=0.002)
        with InferenceSession(trained_forest, batching=policy) as session:
            want = session.predictor.raw_predict(test_rows)
            threaded = _hammer(session.raw_predict, lambda t, c: test_rows)
        for got in threaded.values():
            assert np.array_equal(got, want)
        # Everything went through the batcher.
        snap = session.metrics.snapshot()
        assert snap["batches"] >= 1
        assert sum(snap["batch_rows_hist"].values()) == snap["batches"]

    def test_concurrent_submit_futures(self, trained_forest, test_rows):
        policy = BatchingPolicy(max_batch_rows=1024, max_delay_s=0.005)
        with InferenceSession(trained_forest, batching=policy) as session:
            want = session.predictor.raw_predict(test_rows[:8])
            futures = _hammer(session.submit, lambda t, c: test_rows[:8])
            for future in futures.values():
                assert np.array_equal(future.result(timeout=5), want)


class TestCacheCoalescing:
    def test_concurrent_sessions_compile_once(self, trained_forest):
        metrics = ServingMetrics()
        cache = PredictorCache(metrics=metrics)
        sessions = {}
        barrier = threading.Barrier(NUM_THREADS)

        def build(tid):
            barrier.wait()
            sessions[tid] = InferenceSession(
                trained_forest, cache=cache, metrics=metrics
            )

        with ThreadPoolExecutor(max_workers=NUM_THREADS) as pool:
            for f in [pool.submit(build, t) for t in range(NUM_THREADS)]:
                f.result()

        predictors = {id(s.predictor) for s in sessions.values()}
        assert len(predictors) == 1
        assert metrics.snapshot()["compiles"] == 1
        assert len(cache) == 1
        # All but the leader observed a (coalesced) hit.
        hits = sum(1 for s in sessions.values() if s.cache_hit)
        assert hits == NUM_THREADS - 1


class TestServerConcurrency:
    def test_mixed_models_threads(self, trained_forest, binary_forest, test_rows):
        with ModelServer() as server:
            server.register("reg", trained_forest)
            server.register("bin", binary_forest)
            want = {
                "reg": server.raw_predict("reg", test_rows),
                "bin": server.raw_predict("bin", test_rows),
            }

            def call(args):
                name = "reg" if (args[0] + args[1]) % 2 == 0 else "bin"
                return name, server.raw_predict(name, test_rows)

            results = _hammer(call, lambda t, c: (t, c))
            for name, got in results.values():
                assert np.array_equal(got, want[name])
