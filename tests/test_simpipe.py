"""Unit tests for the microarchitectural cost model (simpipe)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.perf.machine import AMD_RYZEN_LIKE, INTEL_ROCKET_LAKE_LIKE
from repro.perf.simpipe import (
    Cache,
    MemoryHierarchy,
    TwoBitPredictor,
    stall_breakdown,
    trace_variant,
)
from repro.perf.simpipe.trace import VARIANTS
from repro.training.gbdt import GBDTParams, train_gbdt


@pytest.fixture(scope="module")
def small_model():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 10))
    y = X[:, 0] * 2 + np.sin(3 * X[:, 1])
    forest = train_gbdt(X, y, GBDTParams(num_rounds=10, max_depth=6, seed=2))
    rows = rng.normal(size=(32, 10))
    return forest, rows


class TestCache:
    def test_hit_after_miss(self):
        cache = Cache(size=1024, assoc=2, line=64)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)  # same line

    def test_lru_eviction(self):
        cache = Cache(size=128, assoc=1, line=64)  # 2 sets, direct mapped
        cache.access(0)
        cache.access(128)  # same set (stride = num_sets * line), evicts 0
        assert not cache.access(0)

    def test_associativity_retains(self):
        cache = Cache(size=256, assoc=2, line=64)  # 2 sets, 2 ways
        cache.access(0)
        cache.access(256)
        assert cache.access(0)  # both fit in the 2-way set

    def test_counters(self):
        cache = Cache(size=1024, assoc=2)
        cache.access(0)
        cache.access(0)
        assert cache.misses == 1
        assert cache.hits == 1
        cache.reset_counters()
        assert cache.misses == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ReproError):
            Cache(size=0, assoc=1)
        with pytest.raises(ReproError):
            Cache(size=100, assoc=3, line=64)


class TestHierarchy:
    def test_latency_ladder(self):
        mem = MemoryHierarchy.for_machine(INTEL_ROCKET_LAKE_LIKE)
        first = mem.access(0)
        second = mem.access(0)
        assert first == INTEL_ROCKET_LAKE_LIKE.mem_latency
        assert second == INTEL_ROCKET_LAKE_LIKE.l1_latency

    def test_range_access_touches_lines(self):
        mem = MemoryHierarchy.for_machine(INTEL_ROCKET_LAKE_LIKE)
        # 8 bytes straddling a line boundary -> two accesses.
        mem.access_range(60, 8)
        assert mem.total_accesses == 2


class TestPredictor2Bit:
    def test_learns_bias(self):
        p = TwoBitPredictor()
        for _ in range(10):
            p.record(5, True)
        assert p.record(5, True)

    def test_alternating_hurts(self):
        p = TwoBitPredictor()
        wrong = sum(not p.record(1, bool(i % 2)) for i in range(100))
        assert wrong > 30

    def test_aliasing(self):
        p = TwoBitPredictor(table_size=4)
        p.record(0, True)
        p.record(4, False)  # aliases slot 0
        assert p.predictions == 2


class TestTracers:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_all_variants_produce_events(self, small_model, variant):
        forest, rows = small_model
        stats = trace_variant(variant, forest, rows, INTEL_ROCKET_LAKE_LIKE)
        assert stats.instructions > 0
        assert stats.steps > 0
        assert stats.mem_accesses > 0

    def test_one_row_one_tree_same_work(self, small_model):
        """Loop order changes locality, not the amount of work."""
        forest, rows = small_model
        a = trace_variant("OneRow", forest, rows, INTEL_ROCKET_LAKE_LIKE)
        b = trace_variant("OneTree", forest, rows, INTEL_ROCKET_LAKE_LIKE)
        assert a.instructions == b.instructions
        assert a.steps == b.steps

    def test_vector_fewer_steps(self, small_model):
        """Tiling must cut the number of walk steps."""
        forest, rows = small_model
        scalar = trace_variant("OneTree", forest, rows, INTEL_ROCKET_LAKE_LIKE)
        vector = trace_variant("Vector", forest, rows, INTEL_ROCKET_LAKE_LIKE)
        assert vector.steps < scalar.steps

    def test_interleaved_fewer_instructions(self, small_model):
        forest, rows = small_model
        vector = trace_variant("Vector", forest, rows, INTEL_ROCKET_LAKE_LIKE)
        inter = trace_variant("Interleaved", forest, rows, INTEL_ROCKET_LAKE_LIKE)
        assert inter.instructions < vector.instructions
        assert inter.width > 1

    def test_vector_has_no_branches(self, small_model):
        """The LUT-driven walk is branchless (no data-dependent branches)."""
        forest, rows = small_model
        stats = trace_variant("Vector", forest, rows, INTEL_ROCKET_LAKE_LIKE)
        assert stats.branches == 0
        assert stats.mispredictions == 0

    def test_treelite_has_code_footprint(self, small_model):
        forest, rows = small_model
        stats = trace_variant("Treelite", forest, rows, INTEL_ROCKET_LAKE_LIKE)
        assert stats.code_bytes > 0
        assert stats.branches > 0


class TestBreakdown:
    def test_fractions_sum_to_one(self, small_model):
        forest, rows = small_model
        for variant in sorted(VARIANTS):
            stats = trace_variant(variant, forest, rows, INTEL_ROCKET_LAKE_LIKE)
            b = stall_breakdown(stats, INTEL_ROCKET_LAKE_LIKE)
            total = b.retiring + b.frontend + b.backend_memory + b.backend_core
            assert total == pytest.approx(1.0)

    def test_interleaving_cuts_core_stalls(self, small_model):
        forest, rows = small_model
        vec = stall_breakdown(
            trace_variant("Vector", forest, rows, INTEL_ROCKET_LAKE_LIKE),
            INTEL_ROCKET_LAKE_LIKE,
        )
        inter = stall_breakdown(
            trace_variant("Interleaved", forest, rows, INTEL_ROCKET_LAKE_LIKE),
            INTEL_ROCKET_LAKE_LIKE,
        )
        assert inter.backend_core < vec.backend_core
        assert inter.cycles_per_row < vec.cycles_per_row

    def test_treelite_frontend_dominant(self, small_model):
        forest, rows = small_model
        b = stall_breakdown(
            trace_variant("Treelite", forest, rows, INTEL_ROCKET_LAKE_LIKE),
            INTEL_ROCKET_LAKE_LIKE,
        )
        assert b.frontend > b.backend_memory
        assert b.frontend > 0.2

    def test_amd_gathers_cost_more(self, small_model):
        """The machine profiles must reproduce the Intel gather advantage."""
        forest, rows = small_model
        intel = stall_breakdown(
            trace_variant("Vector", forest, rows, INTEL_ROCKET_LAKE_LIKE),
            INTEL_ROCKET_LAKE_LIKE,
        )
        amd = stall_breakdown(
            trace_variant("Vector", forest, rows, AMD_RYZEN_LIKE), AMD_RYZEN_LIKE
        )
        assert amd.cycles_per_row > intel.cycles_per_row * 0.9

    def test_report_rendering(self, small_model):
        forest, rows = small_model
        b = stall_breakdown(
            trace_variant("OneRow", forest, rows, INTEL_ROCKET_LAKE_LIKE),
            INTEL_ROCKET_LAKE_LIKE,
        )
        assert "OneRow" in str(b)
        row = b.row()
        assert set(row) >= {"variant", "cycles/row", "retiring%"}
