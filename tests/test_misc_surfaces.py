"""Coverage for smaller public surfaces: dumps, helpers, harness utilities."""

import numpy as np
import pytest

from repro.api import compile_model
from repro.config import Schedule
from repro.datasets.registry import fresh_rows, mixed_rows
from repro.experiments.harness import paired_per_row_us
from repro.hir.ir import build_hir
from repro.lir.ir import WALK_STEP_OPS
from repro.lir.lowering import lower_mir_to_lir
from repro.mir.lowering import lower_hir_to_mir
from repro.mir.passes import run_mir_pipeline
from repro.perf.timer import measure


class TestDumps:
    def _lir(self, forest, schedule=None):
        hir = build_hir(forest, schedule or Schedule())
        return lower_mir_to_lir(run_mir_pipeline(lower_hir_to_mir(hir), hir), hir)

    def test_lir_dump_lists_groups_and_ops(self, trained_forest):
        lir = self._lir(trained_forest)
        text = lir.dump()
        assert "LIRModule" in text
        for op in WALK_STEP_OPS:
            assert op in text

    def test_lir_dump_array_layout_dims(self, trained_forest):
        lir = self._lir(trained_forest, Schedule(layout="array", tile_size=2))
        assert "slots=" in lir.dump()

    def test_mir_dump_parallel_header(self, trained_forest):
        hir = build_hir(trained_forest, Schedule(parallel=4))
        mir = run_mir_pipeline(lower_hir_to_mir(hir), hir)
        assert mir.dump().startswith("parallel.for")

    def test_walk_step_ops_complete(self):
        """The §V-A listing has eight steps, load → advance."""
        assert len(WALK_STEP_OPS) == 8
        assert WALK_STEP_OPS[0] == "loadThresholds"
        assert WALK_STEP_OPS[-1] == "advanceToChild"


class TestTimerEdge:
    def test_min_time_loops_fast_functions(self):
        calls = []
        m = measure(lambda: calls.append(1), rows=1, repeats=1, min_time_s=0.02)
        assert len(calls) > 1  # looped to meet the floor
        assert m.seconds > 0

    def test_paired_helper_returns_all_labels(self, trained_forest, test_rows):
        p = compile_model(trained_forest)
        times = paired_per_row_us(
            {"a": p.raw_predict, "b": p.raw_predict}, test_rows,
            rounds=1, min_time_s=0.01,
        )
        assert set(times) == {"a", "b"}
        assert all(v > 0 for v in times.values())


class TestDatasetHelpers:
    def test_mixed_rows_share(self):
        rows = mixed_rows("higgs", 200, prototype_fraction=0.5, seed=1)
        assert rows.shape == (200, 28)
        # Half the rows collapse onto prototypes on the prototype feature
        # columns: some per-column value must repeat heavily.
        max_dup = max(
            int(np.unique(np.round(rows[:, j], 9), return_counts=True)[1].max())
            for j in range(rows.shape[1])
        )
        assert max_dup >= 10

    def test_diffuse_rows_have_no_heavy_hitters(self):
        rows = fresh_rows("higgs", 200, diffuse=True, seed=1)
        _, counts = np.unique(np.round(rows, 6), axis=0, return_counts=True)
        assert counts.max() == 1


class TestApiFlags:
    def test_validate_tiling_off_still_correct(self, trained_forest, test_rows):
        predictor = compile_model(trained_forest, validate_tiling=False)
        want = trained_forest.raw_predict(test_rows[:16])
        assert np.allclose(predictor.raw_predict(test_rows[:16]), want, rtol=1e-12)

    def test_predictor_repr(self, trained_forest):
        predictor = compile_model(trained_forest)
        assert "Predictor(" in repr(predictor)

    @pytest.mark.parametrize("parallel", [1, 2, 3, 7])
    def test_parallel_degrees(self, trained_forest, test_rows, parallel):
        predictor = compile_model(trained_forest, Schedule(parallel=parallel))
        want = trained_forest.raw_predict(test_rows)
        assert np.allclose(predictor.raw_predict(test_rows), want, rtol=1e-12)
