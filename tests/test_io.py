"""Unit tests for model import/export (XGBoost JSON, LightGBM text, sklearn)."""

import json

import numpy as np
import pytest

from repro.errors import ModelParseError
from repro.forest.io_lightgbm import parse_lightgbm_text
from repro.forest.io_sklearn import forest_from_arrays, tree_from_arrays
from repro.forest.io_xgboost import (
    forest_from_xgboost_json,
    forest_to_xgboost_json,
    tree_from_xgboost_dict,
)


XGB_TREE = {
    "nodeid": 0,
    "split": "f2",
    "split_condition": 1.5,
    "yes": 1,
    "no": 2,
    "children": [
        {"nodeid": 1, "leaf": -0.5},
        {
            "nodeid": 2,
            "split": "0",
            "split_condition": -1.0,
            "yes": 3,
            "no": 4,
            "children": [{"nodeid": 3, "leaf": 0.25}, {"nodeid": 4, "leaf": 1.0}],
        },
    ],
}


class TestXGBoost:
    def test_parse_single_tree(self):
        tree = tree_from_xgboost_dict(XGB_TREE)
        assert tree.num_nodes == 5
        # x2 < 1.5 goes to "yes" -> left.
        assert tree.predict_row(np.array([0.0, 0.0, 0.0])) == -0.5
        assert tree.predict_row(np.array([-2.0, 0.0, 2.0])) == 0.25
        assert tree.predict_row(np.array([0.0, 0.0, 2.0])) == 1.0

    def test_forest_from_json_string(self):
        text = json.dumps([XGB_TREE, XGB_TREE])
        forest = forest_from_xgboost_json(text, num_features=3)
        assert forest.num_trees == 2
        pred = forest.raw_predict(np.zeros((1, 3)))
        assert pred[0] == pytest.approx(-1.0)

    def test_forest_from_dump_strings(self):
        dumps = [json.dumps(XGB_TREE)]
        forest = forest_from_xgboost_json(dumps, num_features=3)
        assert forest.num_trees == 1

    def test_roundtrip(self):
        forest = forest_from_xgboost_json([XGB_TREE], num_features=3)
        text = forest_to_xgboost_json(forest)
        clone = forest_from_xgboost_json(text, num_features=3)
        rows = np.random.default_rng(0).normal(size=(20, 3))
        assert np.array_equal(clone.raw_predict(rows), forest.raw_predict(rows))

    def test_multiclass_round_robin(self):
        dumps = [XGB_TREE] * 4
        forest = forest_from_xgboost_json(
            dumps, num_features=3, objective="multiclass", num_classes=2
        )
        assert [t.class_id for t in forest.trees] == [0, 1, 0, 1]

    def test_malformed_node_rejected(self):
        with pytest.raises(ModelParseError):
            tree_from_xgboost_dict({"nodeid": 0, "split": "f0"})

    def test_bad_json_rejected(self):
        with pytest.raises(ModelParseError):
            forest_from_xgboost_json("{not json", num_features=1)

    def test_empty_list_rejected(self):
        with pytest.raises(ModelParseError):
            forest_from_xgboost_json([], num_features=1)

    def test_bad_split_name_rejected(self):
        bad = dict(XGB_TREE, split="feature_two")
        with pytest.raises(ModelParseError):
            tree_from_xgboost_dict(bad)


LGB_TEXT = """tree
version=v3
num_class=1
max_feature_idx=2
objective=regression

Tree=0
num_leaves=3
split_feature=2 0
threshold=1.5 -1.0
left_child=-1 -2
right_child=1 -3
leaf_value=-0.5 0.25 1.0

end of trees
"""


class TestLightGBM:
    def test_parse(self):
        forest = parse_lightgbm_text(LGB_TEXT)
        assert forest.num_trees == 1
        assert forest.num_features == 3
        tree = forest.trees[0]
        assert tree.num_leaves == 3
        # LightGBM x <= 1.5 goes left (converted to strict threshold).
        assert tree.predict_row(np.array([0.0, 0.0, 1.5])) == -0.5
        assert tree.predict_row(np.array([-1.0, 0.0, 2.0])) == 0.25
        assert tree.predict_row(np.array([0.0, 0.0, 2.0])) == 1.0

    def test_single_leaf_tree(self):
        text = LGB_TEXT.replace(
            "num_leaves=3\nsplit_feature=2 0\nthreshold=1.5 -1.0\n"
            "left_child=-1 -2\nright_child=1 -3\nleaf_value=-0.5 0.25 1.0",
            "num_leaves=1\nleaf_value=7.0",
        )
        forest = parse_lightgbm_text(text)
        assert forest.trees[0].num_nodes == 1
        assert forest.raw_predict(np.zeros((1, 3)))[0] == 7.0

    def test_missing_header_feature_count(self):
        with pytest.raises(ModelParseError):
            parse_lightgbm_text("Tree=0\nnum_leaves=1\nleaf_value=1.0")

    def test_no_trees_rejected(self):
        with pytest.raises(ModelParseError):
            parse_lightgbm_text("max_feature_idx=2\n")

    def test_length_mismatch_rejected(self):
        bad = LGB_TEXT.replace("leaf_value=-0.5 0.25 1.0", "leaf_value=-0.5 0.25")
        with pytest.raises(ModelParseError):
            parse_lightgbm_text(bad)


class TestSklearn:
    def _arrays(self):
        # x0 <= 0.5 ? 1 : 2   (sklearn semantics)
        return dict(
            children_left=np.array([1, -1, -1]),
            children_right=np.array([2, -1, -1]),
            feature=np.array([0, -2, -2]),
            threshold=np.array([0.5, 0.0, 0.0]),
            value=np.array([[0.0], [1.0], [2.0]]),
        )

    def test_inclusive_threshold_conversion(self):
        tree = tree_from_arrays(**self._arrays())
        # Equality must go LEFT under sklearn's <= semantics.
        assert tree.predict_row(np.array([0.5])) == 1.0
        assert tree.predict_row(np.array([0.5000001])) == 2.0

    def test_strict_mode(self):
        tree = tree_from_arrays(**self._arrays(), inclusive_threshold=False)
        assert tree.predict_row(np.array([0.5])) == 2.0

    def test_forest_scaling(self):
        forest = forest_from_arrays(
            [self._arrays(), self._arrays()], num_features=1, scale=0.5
        )
        pred = forest.raw_predict(np.array([[0.0]]))
        assert pred[0] == pytest.approx(1.0)  # (1.0 * 0.5) * 2 trees

    def test_length_mismatch_rejected(self):
        arrays = self._arrays()
        arrays["feature"] = arrays["feature"][:2]
        with pytest.raises(ModelParseError):
            tree_from_arrays(**arrays)
