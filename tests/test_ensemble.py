"""Unit tests for Forest."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.forest.builder import TreeBuilder
from repro.forest.ensemble import Forest, sigmoid, softmax

from conftest import random_forest_model


def leaf_tree(value, class_id=0):
    b = TreeBuilder()
    b.leaf(value)
    return b.build(class_id=class_id)


class TestConstruction:
    def test_empty_forest_rejected(self):
        with pytest.raises(ModelError, match="at least one"):
            Forest([], num_features=3)

    def test_bad_objective_rejected(self):
        with pytest.raises(ModelError, match="objective"):
            Forest([leaf_tree(1.0)], num_features=3, objective="poisson")

    def test_feature_out_of_range_rejected(self):
        b = TreeBuilder()
        root = b.internal(feature=9, threshold=0.0)
        b.leaf(0.0, parent=root, side="left")
        b.leaf(1.0, parent=root, side="right")
        with pytest.raises(ModelError, match="feature"):
            Forest([b.build()], num_features=3)

    def test_class_id_out_of_range_rejected(self):
        with pytest.raises(ModelError, match="class_id"):
            Forest(
                [leaf_tree(1.0, class_id=5)],
                num_features=3,
                objective="multiclass",
                num_classes=3,
            )

    def test_multiclass_requires_classes(self):
        with pytest.raises(ModelError):
            Forest([leaf_tree(1.0)], num_features=3, objective="multiclass", num_classes=1)

    def test_regression_with_classes_rejected(self):
        with pytest.raises(ModelError):
            Forest([leaf_tree(1.0)], num_features=3, objective="regression", num_classes=2)

    def test_tree_ids_renumbered(self, rng):
        forest = random_forest_model(rng, num_trees=4)
        assert [t.tree_id for t in forest.trees] == [0, 1, 2, 3]


class TestPrediction:
    def test_base_score_added(self):
        forest = Forest([leaf_tree(2.0)], num_features=1, base_score=0.5)
        assert forest.raw_predict(np.zeros((3, 1)))[0] == 2.5

    def test_sum_of_trees(self):
        forest = Forest([leaf_tree(1.0), leaf_tree(2.0)], num_features=1)
        assert forest.raw_predict(np.zeros((1, 1)))[0] == 3.0

    def test_multiclass_shape_and_routing(self):
        trees = [leaf_tree(1.0, 0), leaf_tree(2.0, 1), leaf_tree(3.0, 2)]
        forest = Forest(trees, num_features=1, objective="multiclass", num_classes=3)
        raw = forest.raw_predict(np.zeros((2, 1)))
        assert raw.shape == (2, 3)
        assert np.array_equal(raw[0], [1.0, 2.0, 3.0])

    def test_logistic_transform(self):
        forest = Forest([leaf_tree(0.0)], num_features=1, objective="binary:logistic")
        assert forest.predict(np.zeros((1, 1)))[0] == pytest.approx(0.5)

    def test_softmax_rows_sum_to_one(self):
        trees = [leaf_tree(1.0, 0), leaf_tree(2.0, 1)]
        forest = Forest(trees, num_features=1, objective="multiclass", num_classes=2)
        probs = forest.predict(np.zeros((4, 1)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_wrong_width_rejected(self):
        forest = Forest([leaf_tree(1.0)], num_features=4)
        with pytest.raises(ModelError, match="features"):
            forest.raw_predict(np.zeros((2, 3)))

    def test_1d_rows_rejected(self):
        forest = Forest([leaf_tree(1.0)], num_features=4)
        with pytest.raises(ModelError, match="2-D"):
            forest.raw_predict(np.zeros(4))


class TestTransforms:
    def test_sigmoid_stable_for_large_inputs(self):
        vals = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert vals[0] == pytest.approx(0.0)
        assert vals[1] == pytest.approx(0.5)
        assert vals[2] == pytest.approx(1.0)

    def test_softmax_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(x), softmax(x + 100.0))


class TestSerialization:
    def test_roundtrip(self, rng, tmp_path):
        forest = random_forest_model(rng, num_trees=3, num_classes=2)
        path = str(tmp_path / "forest.json")
        forest.save(path)
        clone = Forest.load(path)
        rows = rng.normal(size=(10, forest.num_features))
        assert np.array_equal(clone.raw_predict(rows), forest.raw_predict(rows))
        assert clone.objective == forest.objective
        assert clone.num_classes == forest.num_classes

    def test_introspection(self, rng):
        forest = random_forest_model(rng, num_trees=3)
        assert forest.num_trees == 3
        assert forest.total_nodes == sum(t.num_nodes for t in forest.trees)
        assert forest.max_depth == max(t.max_depth for t in forest.trees)
        assert "trees=3" in repr(forest)
