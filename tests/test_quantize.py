"""Integer-only quantized kernels (PR7 tentpole).

The contract under test: ``Schedule(precision="int16"/"int8")`` compiles a
kernel that routes on order-preserving rank-coded thresholds (so every
float64 comparison is reproduced *exactly*) and accumulates fixed-point
leaf codes in int64 with one boundary rescale — making the kernel bitwise
equal to the reference interpreter and within the computed rounding bound
``0.5 * leaf_scale * num_trees`` of the reference forest.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import compile_model
from repro.autotune.persist import CacheEntry, ScheduleCache, machine_id
from repro.backend.interpreter import interpret_lir
from repro.config import (
    PRECISION_TABLE,
    PRECISIONS,
    QUANTIZED_PRECISIONS,
    Schedule,
)
from repro.errors import CodegenError, QuantizationError, ScheduleError
from repro.forest.builder import TreeBuilder
from repro.forest.ensemble import Forest
from repro.lir.memory import arena_spec, quantized_param_nbytes
from repro.verify.fuzz import random_fuzz_forest

QUANT_GRID = [
    Schedule(precision=p, **overrides)
    for p in QUANTIZED_PRECISIONS
    for overrides in (
        {},
        {"layout": "array", "tile_size": 4},
        {"loop_order": "one-row", "tile_size": 2, "interleave": 2},
        {"scratch": "alloc"},
        {"tile_size": 1, "tiling": "basic", "pad_and_unroll": False,
         "peel_walk": False, "interleave": 1, "layout": "array"},
    )
]


@pytest.fixture(scope="module")
def forest():
    return random_fuzz_forest(
        np.random.default_rng(21), num_trees=11, max_depth=6
    )


@pytest.fixture(scope="module")
def multiclass():
    return random_fuzz_forest(
        np.random.default_rng(22), num_trees=9, max_depth=5, num_classes=3
    )


@pytest.fixture(scope="module")
def rows(forest):
    rng = np.random.default_rng(23)
    base = rng.normal(size=(97, forest.num_features))
    # Sprinkle exact-threshold hits and infinities: the inputs where rank
    # coding must not flip a comparison.
    thr = np.concatenate(
        [t.threshold[t.internal_nodes()] for t in forest.trees]
    )
    base[:11, 0] = rng.choice(thr, size=11)
    base[3, 2] = np.inf
    base[5, 4] = -np.inf
    return base


# ----------------------------------------------------------------------
# Schedule surface (satellite: precision round-trips + cache hygiene)
# ----------------------------------------------------------------------

def test_precision_table_covers_schedule_axis():
    assert set(PRECISIONS) == set(PRECISION_TABLE)
    assert set(QUANTIZED_PRECISIONS) == {"int16", "int8"}


@pytest.mark.parametrize("precision", QUANTIZED_PRECISIONS)
def test_schedule_roundtrips_through_dict_and_json(precision):
    schedule = Schedule(precision=precision, tile_size=4, layout="array")
    assert Schedule.from_dict(schedule.to_dict()) == schedule
    assert Schedule.from_dict(json.loads(json.dumps(schedule.to_dict()))) == schedule


def test_schedule_rejects_unknown_precision():
    with pytest.raises(ScheduleError, match="precision"):
        Schedule(precision="int4")


def test_schedule_cache_discards_unknown_precision_entries(tmp_path):
    """A cache written by a newer build with precisions this build does not
    know must lose only those entries, not the whole file."""
    path = tmp_path / "schedules.json"
    good = CacheEntry(schedule=Schedule(precision="int8"), per_row_us=1.0)
    machine = machine_id()
    cache = ScheduleCache(str(path))
    cache.store("fp-good", machine, 64, good)

    doc = json.loads(path.read_text())
    bad = good.to_dict()
    bad["schedule"] = dict(bad["schedule"], precision="int4")
    doc["entries"][ScheduleCache.key("fp-bad", machine, 64)] = bad
    path.write_text(json.dumps(doc))

    fresh = ScheduleCache(str(path))
    hit = fresh.lookup("fp-good", machine, 64)
    assert hit is not None and hit.schedule.precision == "int8"
    assert fresh.lookup("fp-bad", machine, 64) is None


# ----------------------------------------------------------------------
# Quantization mapping invariants
# ----------------------------------------------------------------------

@pytest.mark.parametrize("precision", QUANTIZED_PRECISIONS)
def test_rank_codes_preserve_every_comparison(forest, precision):
    quant = compile_model(forest, Schedule(precision=precision)).lir.quant
    rng = np.random.default_rng(31)
    xs = np.concatenate(
        [rng.normal(size=200), quant.cuts, np.nextafter(quant.cuts, np.inf),
         np.nextafter(quant.cuts, -np.inf), [np.inf, -np.inf, 0.0]]
    )
    for f in range(quant.num_features):
        cuts = quant.cuts_for(f)
        if not cuts.size:
            continue
        rows = np.zeros((xs.size, quant.num_features))
        rows[:, f] = xs
        q = quant.quantize_rows(rows)[:, f].astype(np.int64)
        codes = quant.quantize_thresholds(
            cuts, np.full(cuts.size, f)
        ).astype(np.int64)
        for t, c in zip(cuts, codes):
            np.testing.assert_array_equal(xs < t, q < c)


@pytest.mark.parametrize("precision", QUANTIZED_PRECISIONS)
def test_padding_sentinels(forest, precision):
    quant = compile_model(forest, Schedule(precision=precision)).lir.quant
    codes = quant.quantize_thresholds(
        np.array([np.inf, -np.inf]), np.array([0, 0])
    )
    assert codes[0] == quant.sentinel  # +inf pad: every finite q() is below
    assert codes[1] == 0               # -inf: nothing compares below

    rows = np.array([[np.inf] * quant.num_features])
    assert (quant.quantize_rows(rows).astype(np.int64) < quant.sentinel).all()


@pytest.mark.parametrize("precision", QUANTIZED_PRECISIONS)
def test_leaf_codes_bounded_and_scale_tight(forest, precision):
    quant = compile_model(forest, Schedule(precision=precision)).lir.quant
    values = np.concatenate(
        [t.value[t.leaves()] for t in forest.trees]
    )
    codes = quant.quantize_leaves(values).astype(np.float64)
    assert np.abs(codes).max() <= quant.qmax
    err = np.abs(codes * quant.leaf_scale - values)
    assert err.max() <= 0.5 * quant.leaf_scale * (1 + 1e-9)


def test_all_zero_leaves_use_unit_scale():
    builder = TreeBuilder()
    root = builder.internal(0, 0.5)
    builder.leaf(0.0, parent=root, side="left")
    builder.leaf(0.0, parent=root, side="right")
    forest = Forest([builder.build(tree_id=0)], num_features=2, base_score=0.25)
    predictor = compile_model(forest, Schedule(precision="int8"))
    assert predictor.lir.quant.leaf_scale == 1.0
    np.testing.assert_array_equal(
        predictor.raw_predict(np.zeros((3, 2))), np.full(3, 0.25)
    )


def test_int8_capacity_overflow_raises():
    """One feature with more distinct thresholds than int8 rank codes."""
    builder = TreeBuilder()
    node = builder.internal(0, 0.0)
    for i in range(1, 200):
        nxt = builder.internal(0, float(i), parent=node, side="left")
        builder.leaf(float(i) / 200.0, parent=node, side="right")
        node = nxt
    builder.leaf(0.0, parent=node, side="left")
    builder.leaf(1.0, parent=node, side="right")
    forest = Forest([builder.build(tree_id=0)], num_features=1)
    with pytest.raises(QuantizationError, match="int8"):
        compile_model(forest, Schedule(precision="int8"))
    # int16 has 32766 usable ranks: same model compiles and matches.
    predictor = compile_model(forest, Schedule(precision="int16", verify=True))
    rows = np.linspace(-5, 250, 64).reshape(-1, 1)
    got = predictor.raw_predict(rows)
    assert np.abs(got - forest.raw_predict(rows)).max() <= (
        predictor.lir.quant.tolerance()
    )


def test_quickscorer_rejects_quantized_precision(forest):
    with pytest.raises(CodegenError, match="quickscorer"):
        compile_model(
            forest, Schedule(precision="int8", traversal="quickscorer")
        )


# ----------------------------------------------------------------------
# Kernel equivalence
# ----------------------------------------------------------------------

@pytest.mark.parametrize("schedule", QUANT_GRID, ids=str)
def test_kernel_bitwise_matches_interpreter(forest, rows, schedule):
    predictor = compile_model(forest, schedule.with_(verify=True))
    got = predictor.raw_predict(rows)
    want = interpret_lir(predictor.lir, rows)[:, 0]
    np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("precision", QUANTIZED_PRECISIONS)
def test_forest_reference_within_computed_tolerance(forest, rows, precision):
    predictor = compile_model(forest, Schedule(precision=precision))
    got = predictor.raw_predict(rows)
    ref = forest.raw_predict(rows)
    tol = predictor.lir.quant.tolerance()
    assert tol < 0.5  # the bound itself stays useful
    assert np.abs(got - ref).max() <= tol


def test_multiclass_argmax_preserved_where_decided(multiclass):
    rng = np.random.default_rng(41)
    rows = rng.normal(size=(400, multiclass.num_features))
    for precision in QUANTIZED_PRECISIONS:
        predictor = compile_model(multiclass, Schedule(precision=precision))
        got = predictor.raw_predict(rows)
        ref = multiclass.raw_predict(rows)
        tol = predictor.lir.quant.tolerance()
        top2 = np.sort(ref, axis=1)[:, -2:]
        decided = (top2[:, 1] - top2[:, 0]) > 2.0 * tol
        assert decided.any()  # the check must actually bite
        np.testing.assert_array_equal(
            got.argmax(axis=1)[decided], ref.argmax(axis=1)[decided]
        )


def test_quantized_routing_is_exact_not_rounded(forest):
    """int16 must agree with float64 on threshold-equal inputs where
    float32 legitimately rounds: rank codes never merge distinct cuts."""
    thr = np.concatenate(
        [t.threshold[t.internal_nodes()] for t in forest.trees]
    )
    rng = np.random.default_rng(43)
    rows = rng.choice(thr, size=(31, forest.num_features))
    ref = forest.raw_predict(rows)
    got = compile_model(forest, Schedule(precision="int16")).raw_predict(rows)
    quant_tol = compile_model(
        forest, Schedule(precision="int16")
    ).lir.quant.tolerance()
    assert np.abs(got - ref).max() <= quant_tol


# ----------------------------------------------------------------------
# Memory accounting
# ----------------------------------------------------------------------

@pytest.mark.parametrize("precision", PRECISIONS)
def test_arena_spec_dtypes_follow_the_table(forest, precision):
    spec = arena_spec(compile_model(forest, Schedule(precision=precision)).lir)
    info = PRECISION_TABLE[precision]
    assert spec.float_dtype == info.element_dtype
    assert spec.findex_dtype == info.findex_dtype
    assert spec.acc_dtype == info.acc_dtype
    assert spec.quantized == info.quantized


def test_param_bytes_shrink_by_element_width(forest):
    sizes = {
        p: sum(quantized_param_nbytes(compile_model(forest, Schedule(precision=p)).lir))
        for p in PRECISIONS
    }
    assert sizes["float32"] * 2 == sizes["float64"]
    assert sizes["int16"] * 4 == sizes["float64"]
    assert sizes["int8"] * 8 == sizes["float64"]


def test_quantized_memory_bytes_reports_kernel_buffers(forest):
    predictor = compile_model(forest, Schedule(precision="int8"))
    assert predictor.memory_bytes() > 0
    assert predictor.lir.quant.table_nbytes() > 0


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------

def test_serving_caches_precisions_separately(forest):
    from repro.serve import ModelServer

    rng = np.random.default_rng(47)
    rows = rng.normal(size=(16, forest.num_features))
    with ModelServer() as server:
        f64 = server.register("f64", forest, Schedule())
        i8 = server.register("i8", forest, Schedule(precision="int8"))
        assert f64.fingerprint != i8.fingerprint
        got64 = server.predict("f64", rows)
        got8 = server.predict("i8", rows)
        tol = i8.predictor.lir.quant.tolerance()
        assert np.abs(got64 - got8).max() <= tol
        by_prec = server.metrics_snapshot()["runtime"]["bytes_by_precision"]
        assert by_prec["int8"]["param_bytes"] * 8 == (
            by_prec["float64"]["param_bytes"]
        )
