"""Differential testing across the Table-II schedule grid.

Every valid combination of tile size x tiling algorithm x layout x
interleave/peel settings is compiled on small regression, binary and
multiclass forests, and the compiled output is checked against the
reference ``Forest`` semantics (tolerating only accumulation-order float
noise). Hypothesis drives randomized row batches through representative
grid corners, and invalid inputs (NaN, wrong width/rank) must be rejected
at every point the same way.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_forest_model
from repro.api import compile_model
from repro.config import Schedule
from repro.errors import ExecutionError
from repro.forest.statistics import populate_node_probabilities
from repro.training.gbdt import GBDTParams, train_gbdt

NUM_FEATURES = 6

# The Table-II axes this harness sweeps. "loops" pairs the MIR loop knobs:
# everything off (guarded walk loops) vs. the paper's peel+pad+interleave.
TILE_SIZES = (1, 2, 4, 8)
TILINGS = ("basic", "probability", "hybrid")
LAYOUTS = ("array", "sparse")
LOOPS = (
    {"interleave": 1, "peel_walk": False, "pad_and_unroll": False},
    {"interleave": 4, "peel_walk": True, "pad_and_unroll": True},
)

GRID = [
    pytest.param(
        ts, tiling, layout, loops,
        id=f"t{ts}-{tiling}-{layout}-{'opt' if loops['interleave'] > 1 else 'plain'}",
    )
    for ts, tiling, layout, loops in itertools.product(
        TILE_SIZES, TILINGS, LAYOUTS, LOOPS
    )
]


def _with_probabilities(forest, rows):
    populate_node_probabilities(forest, rows)
    return forest


@pytest.fixture(scope="module")
def grid_rows():
    return np.random.default_rng(2024).normal(size=(64, NUM_FEATURES))


@pytest.fixture(scope="module")
def regression_forest(grid_rows):
    forest = random_forest_model(
        np.random.default_rng(1), num_trees=6, max_depth=5, num_features=NUM_FEATURES
    )
    return _with_probabilities(forest, grid_rows)


@pytest.fixture(scope="module")
def grid_binary_forest(grid_rows):
    rng = np.random.default_rng(2)
    X = rng.normal(size=(300, NUM_FEATURES))
    y = (X[:, 0] + X[:, 1] ** 2 > 0.5).astype(np.float64)
    forest = train_gbdt(
        X, y, GBDTParams(num_rounds=5, max_depth=4, objective="binary:logistic", seed=2)
    )
    return _with_probabilities(forest, X)


@pytest.fixture(scope="module")
def grid_multiclass_forest(grid_rows):
    forest = random_forest_model(
        np.random.default_rng(3),
        num_trees=6,
        max_depth=4,
        num_features=NUM_FEATURES,
        num_classes=3,
    )
    return _with_probabilities(forest, grid_rows)


def schedule_for(tile_size, tiling, layout, loops) -> Schedule:
    return Schedule(tile_size=tile_size, tiling=tiling, layout=layout, **loops)


def assert_matches_reference(forest, schedule, rows):
    predictor = compile_model(forest, schedule)
    got = predictor.raw_predict(rows)
    want = forest.raw_predict(rows)
    # Exact up to accumulation order: reassociation of ~tens of float64
    # leaf-value additions.
    np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-12)
    # predict() additionally applies the objective transform.
    np.testing.assert_allclose(
        predictor.predict(rows), forest.predict(rows), rtol=1e-10, atol=1e-12
    )


@pytest.mark.parametrize("tile_size,tiling,layout,loops", GRID)
class TestScheduleGrid:
    def test_regression(self, regression_forest, grid_rows, tile_size, tiling, layout, loops):
        assert_matches_reference(
            regression_forest, schedule_for(tile_size, tiling, layout, loops), grid_rows
        )

    def test_binary(self, grid_binary_forest, grid_rows, tile_size, tiling, layout, loops):
        rows = np.random.default_rng(5).normal(size=(32, NUM_FEATURES))
        assert_matches_reference(
            grid_binary_forest, schedule_for(tile_size, tiling, layout, loops), rows
        )

    def test_multiclass(self, grid_multiclass_forest, grid_rows, tile_size, tiling, layout, loops):
        assert_matches_reference(
            grid_multiclass_forest,
            schedule_for(tile_size, tiling, layout, loops),
            grid_rows[:32],
        )


# Representative corners for the randomized and rejection sweeps: the scalar
# baseline, the paper default, and the two extreme grid cells.
CORNERS = [
    pytest.param(Schedule.scalar_baseline(), id="scalar-baseline"),
    pytest.param(Schedule(), id="paper-default"),
    pytest.param(
        Schedule(tile_size=8, tiling="basic", layout="array",
                 interleave=1, peel_walk=False, pad_and_unroll=False),
        id="t8-basic-array-plain",
    ),
    pytest.param(
        Schedule(tile_size=2, tiling="probability", layout="sparse",
                 interleave=4, peel_walk=True, pad_and_unroll=True),
        id="t2-prob-sparse-opt",
    ),
]


@pytest.fixture(scope="module")
def corner_predictors(regression_forest):
    return {
        id(corner.values[0]): compile_model(regression_forest, corner.values[0])
        for corner in CORNERS
    }


class TestRandomizedBatches:
    @pytest.mark.parametrize("schedule", CORNERS)
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_rows_match_reference(
        self, regression_forest, corner_predictors, schedule, data
    ):
        predictor = corner_predictors[id(schedule)]
        n = data.draw(st.integers(min_value=0, max_value=24), label="rows")
        finite = st.floats(
            min_value=-1e9, max_value=1e9, allow_nan=False, width=64
        )
        batch = np.asarray(
            data.draw(
                st.lists(
                    st.lists(finite, min_size=NUM_FEATURES, max_size=NUM_FEATURES),
                    min_size=n,
                    max_size=n,
                ),
                label="batch",
            ),
            dtype=np.float64,
        ).reshape(n, NUM_FEATURES)
        got = predictor.raw_predict(batch)
        want = regression_forest.raw_predict(batch)
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("schedule", CORNERS)
    def test_infinities_match_reference(self, regression_forest, corner_predictors, schedule):
        predictor = corner_predictors[id(schedule)]
        rows = np.zeros((4, NUM_FEATURES))
        rows[0, :] = np.inf
        rows[1, :] = -np.inf
        rows[2, 0] = np.inf
        rows[3, -1] = -np.inf
        np.testing.assert_allclose(
            predictor.raw_predict(rows),
            regression_forest.raw_predict(rows),
            rtol=1e-10,
            atol=1e-12,
        )


class TestRejections:
    @pytest.mark.parametrize("schedule", CORNERS)
    def test_nan_rejected(self, regression_forest, corner_predictors, schedule):
        predictor = corner_predictors[id(schedule)]
        bad = np.zeros((3, NUM_FEATURES))
        bad[1, 2] = np.nan
        with pytest.raises(ExecutionError, match="NaN"):
            predictor.raw_predict(bad)

    @pytest.mark.parametrize("schedule", CORNERS)
    def test_wrong_width_rejected(self, regression_forest, corner_predictors, schedule):
        predictor = corner_predictors[id(schedule)]
        with pytest.raises(ExecutionError, match="rows"):
            predictor.raw_predict(np.zeros((3, NUM_FEATURES + 1)))

    @pytest.mark.parametrize("schedule", CORNERS)
    def test_wrong_rank_rejected(self, regression_forest, corner_predictors, schedule):
        predictor = corner_predictors[id(schedule)]
        with pytest.raises(ExecutionError, match="rows"):
            predictor.raw_predict(np.zeros(NUM_FEATURES))

    @pytest.mark.parametrize("schedule", CORNERS)
    def test_zero_rows_ok(self, regression_forest, corner_predictors, schedule):
        predictor = corner_predictors[id(schedule)]
        out = predictor.raw_predict(np.zeros((0, NUM_FEATURES)))
        assert out.shape == (0,)
