"""Property-based tests (hypothesis) on the compiler's core invariants.

These are the strongest correctness guarantees in the suite: for *arbitrary*
random trees and schedules, tilings must satisfy the Section III-B1
constraints and every lowering must preserve prediction semantics exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import compile_model
from repro.config import Schedule
from repro.forest.builder import TreeBuilder
from repro.forest.ensemble import Forest
from repro.forest.statistics import leaf_probabilities
from repro.forest.tree import DecisionTree
from repro.hir.tiling import (
    ShapeRegistry,
    TiledTree,
    basic_tiling,
    check_valid_tiling,
    probability_tiling,
)
from repro.hir.padding import pad_to_uniform_depth
from repro.hir.tiling.shapes import out_edge_order, shape_child_for_bits, shape_key_of_tile

NUM_FEATURES = 6


@st.composite
def trees(draw, max_depth=6):
    """Strategy generating random full binary decision trees."""
    seed = draw(st.integers(0, 2**32 - 1))
    depth = draw(st.integers(0, max_depth))
    leaf_prob = draw(st.floats(0.1, 0.6))
    rng = np.random.default_rng(seed)
    builder = TreeBuilder()

    def grow(parent, side, d):
        if d >= depth or rng.uniform() < leaf_prob:
            builder.leaf(float(rng.normal()), parent=parent, side=side)
            return
        node = builder.internal(
            int(rng.integers(NUM_FEATURES)), float(rng.normal()), parent=parent, side=side
        )
        grow(node, "left", d + 1)
        grow(node, "right", d + 1)

    if depth == 0:
        builder.leaf(float(rng.normal()))
    else:
        root = builder.internal(int(rng.integers(NUM_FEATURES)), float(rng.normal()))
        grow(root, "left", 1)
        grow(root, "right", 1)
    return builder.build()


@st.composite
def forests(draw, max_trees=4):
    n = draw(st.integers(1, max_trees))
    members = [draw(trees()) for _ in range(n)]
    return Forest(members, num_features=NUM_FEATURES)


def rows_for(seed: int, n: int = 24) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, NUM_FEATURES))


class TestTilingProperties:
    @settings(max_examples=60, deadline=None)
    @given(tree=trees(), nt=st.integers(1, 8))
    def test_basic_tiling_always_valid(self, tree, nt):
        check_valid_tiling(tree, basic_tiling(tree, nt), nt)

    @settings(max_examples=60, deadline=None)
    @given(tree=trees(), nt=st.integers(1, 8), seed=st.integers(0, 1000))
    def test_probability_tiling_always_valid(self, tree, nt, seed):
        tree.node_probability = leaf_probabilities(tree, rows_for(seed, 50))
        check_valid_tiling(tree, probability_tiling(tree, nt), nt)

    @settings(max_examples=40, deadline=None)
    @given(tree=trees(), nt=st.integers(1, 6), seed=st.integers(0, 1000))
    def test_tiled_walk_equals_binary_walk(self, tree, nt, seed):
        tiled = TiledTree.from_tiling(tree, basic_tiling(tree, nt), nt)
        rows = rows_for(seed)
        assert np.array_equal(tiled.walk_rows(rows), tree.predict(rows))

    @settings(max_examples=40, deadline=None)
    @given(tree=trees(), nt=st.integers(1, 6), seed=st.integers(0, 1000))
    def test_padding_preserves_semantics(self, tree, nt, seed):
        tiled = TiledTree.from_tiling(tree, basic_tiling(tree, nt), nt)
        pad_to_uniform_depth(tiled)
        assert tiled.is_uniform_depth
        rows = rows_for(seed)
        assert np.array_equal(tiled.walk_rows(rows), tree.predict(rows))

    @settings(max_examples=40, deadline=None)
    @given(tree=trees(), nt=st.integers(2, 8))
    def test_tile_count_decreases_with_tile_size(self, tree, nt):
        big = basic_tiling(tree, nt)
        small = basic_tiling(tree, 1)
        assert len(big) <= len(small)


class TestShapeProperties:
    @settings(max_examples=60, deadline=None)
    @given(tree=trees(max_depth=4), nt=st.integers(1, 8))
    def test_out_edges_match_original_children(self, tree, nt):
        """Out-edge order must enumerate each tile's children exactly once."""
        for tile_nodes in basic_tiling(tree, nt):
            shape, ordered = shape_key_of_tile(tree, tile_nodes)
            edges = out_edge_order(shape)
            assert len(edges) == len(tile_nodes) + 1
            children = []
            for intra, side in edges:
                node = ordered[intra]
                child = tree.left[node] if side == "L" else tree.right[node]
                children.append(int(child))
            assert len(set(children)) == len(children)

    @settings(max_examples=30, deadline=None)
    @given(tree=trees(max_depth=4), nt=st.integers(1, 6), bits_seed=st.integers(0, 10**6))
    def test_lut_agrees_with_walk(self, tree, nt, bits_seed):
        """LUT-selected children must equal the explicit in-tile walk for
        random predicate patterns."""
        reg = ShapeRegistry(nt)
        rng = np.random.default_rng(bits_seed)
        tilings = basic_tiling(tree, nt)
        if not tilings:
            return
        for tile_nodes in tilings:
            shape, _ = shape_key_of_tile(tree, tile_nodes)
            sid = reg.register(shape)
        lut = reg.build_lut()
        for tile_nodes in tilings:
            shape, _ = shape_key_of_tile(tree, tile_nodes)
            sid = reg.register(shape)
            bits = int(rng.integers(1 << nt))
            k = len(shape)
            assert lut[sid, bits] == shape_child_for_bits(shape, bits & ((1 << k) - 1))


class TestPipelineProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        forest=forests(),
        nt=st.sampled_from([1, 2, 4, 8]),
        layout=st.sampled_from(["array", "sparse"]),
        order=st.sampled_from(["one-tree", "one-row"]),
        pad=st.booleans(),
        interleave=st.sampled_from([1, 3, 8]),
        seed=st.integers(0, 1000),
    )
    def test_compiled_matches_reference(self, forest, nt, layout, order, pad, interleave, seed):
        schedule = Schedule(
            tile_size=nt,
            layout=layout,
            loop_order=order,
            pad_and_unroll=pad,
            interleave=interleave,
            tiling="basic",
        )
        predictor = compile_model(forest, schedule)
        rows = rows_for(seed)
        assert np.allclose(
            predictor.raw_predict(rows), forest.raw_predict(rows), rtol=1e-12, atol=1e-12
        )

    @settings(max_examples=25, deadline=None)
    @given(tree=trees(), seed=st.integers(0, 10**6))
    def test_serialization_roundtrip(self, tree, seed):
        clone = DecisionTree.from_dict(tree.to_dict())
        rows = rows_for(seed)
        assert np.array_equal(clone.predict(rows), tree.predict(rows))
        assert clone.structure_signature() == tree.structure_signature()
