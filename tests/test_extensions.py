"""Tests for the extension features: the QuickScorer traversal strategy,
the compaction ablation flag, storage-width padding, group merging, and
the single-shape codegen specialization."""

import numpy as np
import pytest

from repro.api import compile_model
from repro.autotune import autotune
from repro.autotune.space import TuningSpace
from repro.backend.codegen import emit_module_source
from repro.backend.strategies import QuickScorerStrategyPredictor
from repro.config import Schedule
from repro.errors import ExecutionError, ScheduleError
from repro.experiments import ablations
from repro.experiments.harness import ExperimentConfig
from repro.hir.ir import build_hir
from repro.hir.tiling.shapes import ShapeRegistry, storage_width
from repro.lir.lowering import lower_mir_to_lir
from repro.mir.lowering import lower_hir_to_mir
from repro.mir.passes import run_mir_pipeline


def lower(forest, schedule):
    hir = build_hir(forest, schedule)
    return lower_mir_to_lir(run_mir_pipeline(lower_hir_to_mir(hir), hir), hir)


class TestStorageWidth:
    @pytest.mark.parametrize("nt,expected", [(1, 1), (2, 2), (3, 4), (4, 4),
                                             (5, 8), (7, 8), (8, 8), (9, 16)])
    def test_power_of_two(self, nt, expected):
        assert storage_width(nt) == expected

    def test_layout_buffers_padded(self, trained_forest):
        lir = lower(trained_forest, Schedule(tile_size=3))
        for group in lir.groups:
            if not group.trivial:
                assert group.layout.thresholds.shape[2] == 4

    def test_lut_width_matches_padding(self, trained_forest):
        lir = lower(trained_forest, Schedule(tile_size=3))
        assert lir.lut.shape[1] == 16  # 2**storage_width(3)

    def test_lut_width_guard(self):
        reg = ShapeRegistry(4)
        with pytest.raises(Exception):
            reg.build_lut(width=2)

    @pytest.mark.parametrize("nt", [3, 5, 6, 7])
    def test_odd_tile_sizes_still_correct(self, trained_forest, test_rows, nt):
        predictor = compile_model(trained_forest, Schedule(tile_size=nt))
        want = trained_forest.raw_predict(test_rows[:48])
        assert np.allclose(predictor.raw_predict(test_rows[:48]), want, rtol=1e-12)


class TestCompactionFlag:
    @pytest.mark.parametrize("layout", ["array", "sparse"])
    def test_masked_loops_equivalent(self, deep_forest, test_rows, layout):
        base = Schedule(layout=layout, pad_and_unroll=False)
        want = compile_model(deep_forest, base).raw_predict(test_rows)
        masked = compile_model(
            deep_forest, base.with_(compact_walks=False)
        ).raw_predict(test_rows)
        assert np.allclose(want, masked, rtol=1e-12)

    def test_masked_source_differs(self, deep_forest):
        compact = lower(deep_forest, Schedule(pad_and_unroll=False))
        masked = lower(
            deep_forest, Schedule(pad_and_unroll=False, compact_walks=False)
        )
        assert "act_r" in emit_module_source(compact)
        assert "alive" in emit_module_source(masked)
        assert "act_r" not in emit_module_source(masked)


class TestGroupMerging:
    def test_loop_style_merges_groups(self, deep_forest):
        hir = build_hir(deep_forest, Schedule(pad_and_unroll=False))
        assert len(hir.groups) == 1
        assert hir.groups[0].num_trees == deep_forest.num_trees

    def test_merged_group_sorted_by_depth(self, deep_forest):
        hir = build_hir(deep_forest, Schedule(pad_and_unroll=False))
        depths = [hir.tiled_trees[i].max_leaf_depth for i in hir.groups[0].tree_indices]
        assert depths == sorted(depths)

    def test_unrolled_style_keeps_depth_groups(self, deep_forest):
        hir = build_hir(deep_forest, Schedule(pad_and_unroll=True, pad_max_slack=99))
        for group in hir.groups:
            ds = {hir.tiled_trees[i].max_leaf_depth for i in group.tree_indices}
            assert len(ds) == 1


class TestSingleShapeSpecialization:
    def test_tile1_source_has_no_lut(self, trained_forest):
        lir = lower(trained_forest, Schedule(tile_size=1))
        source = emit_module_source(lir)
        # Arena emitter: the LUT lookup folds to `1 - bit` written in place.
        assert "_np.subtract(1, cmp[..., 0], out=ci)" in source
        assert "_np.take(lut," not in source

    def test_tile1_alloc_source_has_no_lut(self, trained_forest):
        lir = lower(trained_forest, Schedule(tile_size=1, scratch="alloc"))
        source = emit_module_source(lir)
        assert "ci = 1 - cmp[..., 0]" in source
        assert "_np.take(lut," not in source

    def test_tile1_still_correct(self, trained_forest, test_rows):
        predictor = compile_model(trained_forest, Schedule(tile_size=1))
        want = trained_forest.raw_predict(test_rows)
        assert np.allclose(predictor.raw_predict(test_rows), want, rtol=1e-12)


class TestQuickScorerStrategy:
    def test_selected_via_schedule(self, trained_forest, test_rows):
        predictor = compile_model(trained_forest, Schedule(traversal="quickscorer"))
        assert isinstance(predictor, QuickScorerStrategyPredictor)
        want = trained_forest.raw_predict(test_rows)
        assert np.allclose(predictor.raw_predict(test_rows), want, rtol=1e-12)

    def test_predict_applies_transform(self, binary_forest, test_rows):
        predictor = compile_model(binary_forest, Schedule(traversal="quickscorer"))
        probs = predictor.predict(test_rows)
        assert np.allclose(probs, binary_forest.predict(test_rows), rtol=1e-12)

    def test_validation(self, trained_forest, test_rows):
        predictor = compile_model(trained_forest, Schedule(traversal="quickscorer"))
        bad = test_rows.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ExecutionError):
            predictor.raw_predict(bad)
        with pytest.raises(ExecutionError):
            predictor.raw_predict(test_rows[:, :3])

    def test_introspection_surface(self, trained_forest):
        predictor = compile_model(trained_forest, Schedule(traversal="quickscorer"))
        assert predictor.memory_bytes() > 0
        assert "quickscorer" in predictor.generated_source
        assert "QuickScorerStrategy" in predictor.dump_ir()

    def test_bad_traversal_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule(traversal="gpu")

    def test_autotune_explores_quickscorer(self, trained_forest, test_rows):
        space = TuningSpace(
            tile_sizes=(4,), tilings=("basic",), pad_and_unroll=(True,),
            interleaves=(8,), layouts=("sparse",),
            traversals=("tiled", "quickscorer"),
        )
        assert space.size() == 2
        result = autotune(trained_forest, test_rows[:64], space=space, repeats=1)
        traversals = {s.traversal for s, _ in result.log}
        assert traversals == {"tiled", "quickscorer"}

    def test_oversize_trees_fail_gracefully_in_autotune(self, deep_forest, test_rows):
        """Models past the 64-leaf cap must be skipped, not crash the tuner."""
        space = TuningSpace(
            tile_sizes=(4,), tilings=("basic",), pad_and_unroll=(True,),
            interleaves=(8,), layouts=("sparse",),
            traversals=("tiled", "quickscorer"),
        )
        result = autotune(deep_forest, test_rows[:32], space=space, repeats=1)
        assert result.best_schedule.traversal == "tiled" or all(
            t.num_leaves <= 64 for t in deep_forest.trees
        )


class TestAblationsExperiment:
    def test_rows_cover_design_choices(self):
        rows = ablations.run(ExperimentConfig(batch_size=256, repeats=1, scale=0.02))
        labels = [r["ablation"] for r in rows]
        assert any("compaction" in lbl for lbl in labels)
        assert any("array layout" in lbl for lbl in labels)
        assert any("row blocking" in lbl for lbl in labels)
        base = rows[0]
        assert base["vs base"] == 1.0
