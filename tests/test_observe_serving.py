"""Tests for the serving observability stack added with schema v5.

Covers request span trees (:mod:`repro.observe.spans`), the flight
recorder (:mod:`repro.observe.events`), the OpenMetrics exporter and its
strict parser (:mod:`repro.observe.export`), the HTTP /metrics endpoint,
the end-to-end ``ModelServer`` integration (sampling, stage coverage, the
stage-sum-equals-latency invariant, zero-overhead-when-off) and the
``python -m repro.observe`` subcommands.
"""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.config import Schedule
from repro.errors import ServingError
from repro.observe import parse_openmetrics, registry, render_openmetrics
from repro.observe.events import FlightRecorder, format_event
from repro.observe.events import recorder as flight_recorder
from repro.observe.export import (
    OPENMETRICS_CONTENT_TYPE,
    start_metrics_server,
)
from repro.observe.spans import RING, RequestTrace, RequestTracer, SpanRing
from repro.serve import BatchingPolicy, ModelServer, ServerConfig


@pytest.fixture(autouse=True)
def _clean_rings():
    """Each test sees an empty span ring and flight recorder."""
    RING.clear()
    flight_recorder.clear()
    yield
    RING.clear()
    flight_recorder.clear()


# ----------------------------------------------------------------------
# RequestTrace / SpanRing / RequestTracer
# ----------------------------------------------------------------------
class TestRequestTrace:
    def test_stages_are_contiguous_and_sum_exactly(self):
        trace = RequestTrace(model="m", rows=8, started_s=100.0)
        trace.stage("admission", now=100.5)
        trace.stage("kernel", now=102.0)
        trace.stage("aggregate", now=102.25)
        trace.finish()
        assert trace.duration_s == pytest.approx(2.25)
        assert sum(d for _n, _s, d in trace.stages) == pytest.approx(
            trace.duration_s
        )
        # each stage starts where the previous ended
        assert trace.stages[0][1] == 0.0
        assert trace.stages[1][1] == pytest.approx(0.5)
        assert trace.stages[2][1] == pytest.approx(2.0)

    def test_to_dict_is_json_serializable(self):
        trace = RequestTrace(model="m", rows=4)
        trace.stage("kernel")
        trace.finish(error="boom")
        doc = json.loads(json.dumps(trace.to_dict()))
        assert doc["model"] == "m" and doc["rows"] == 4
        assert doc["error"] == "boom"
        assert doc["stages"][0]["name"] == "kernel"
        assert doc["trace_id"].startswith("req-")

    def test_stage_seconds_merges_repeats(self):
        trace = RequestTrace(started_s=0.0)
        trace.stage("a", now=1.0)
        trace.stage("b", now=2.0)
        trace.stage("a", now=4.0)
        assert trace.stage_seconds() == {"a": 3.0, "b": 1.0}

    def test_finish_without_stages_uses_clock(self):
        trace = RequestTrace()
        time.sleep(0.001)
        trace.finish()
        assert trace.duration_s > 0.0


class TestSpanRing:
    def test_bounded_with_lifetime_count(self):
        ring = SpanRing(capacity=3)
        for i in range(7):
            ring.record(RequestTrace(model=f"m{i}").finish())
        snap = ring.snapshot()
        assert snap["recorded"] == 7
        assert snap["kept"] == 3
        assert [t["model"] for t in snap["recent"]] == ["m4", "m5", "m6"]
        assert len(ring.recent(2)) == 2
        ring.clear()
        assert ring.snapshot() == {"recorded": 0, "kept": 0, "recent": []}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanRing(capacity=0)


class TestRequestTracer:
    def test_sample_one_traces_everything(self):
        tracer = RequestTracer(1.0, ring=SpanRing())
        traces = [tracer.maybe_trace("m") for _ in range(50)]
        assert all(t is not None for t in traces)
        assert tracer.stats()["sampled"] == 50

    def test_stride_sampling_is_even_and_deterministic(self):
        tracer = RequestTracer(0.25, ring=SpanRing())
        picks = [tracer.maybe_trace() is not None for _ in range(400)]
        assert sum(picks) == 100  # exactly a quarter
        # evenly spaced: every window of 4 holds exactly one sample
        for i in range(0, 400, 4):
            assert sum(picks[i : i + 4]) == 1

    def test_invalid_rates_rejected(self):
        for rate in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                RequestTracer(rate)


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_events_bounded_and_counted_by_kind(self):
        rec = FlightRecorder(capacity=4)
        for i in range(6):
            rec.record("compile", model=f"m{i}")
        rec.record("error", model="x", error="boom")
        snap = rec.snapshot()
        assert snap["recorded"] == 7
        assert snap["kept"] == 4
        assert snap["by_kind"] == {"compile": 3, "error": 1}
        assert snap["recent"][-1]["kind"] == "error"
        # seq is strictly increasing across kinds
        seqs = [e["seq"] for e in snap["recent"]]
        assert seqs == sorted(seqs)

    def test_tail_filters_by_kind(self):
        rec = FlightRecorder()
        rec.record("compile", model="a")
        rec.record("hot_swap", model="a")
        rec.record("compile", model="b")
        assert [e["model"] for e in rec.tail(kind="compile")] == ["a", "b"]
        assert len(rec.tail(n=1)) == 1

    def test_jsonl_mirror_and_dump(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = FlightRecorder()
        rec.record("before_attach")
        rec.attach_file(str(path))
        assert rec.file_path == str(path)
        rec.record("compile", model="m")
        rec.record("tune", explored=3)
        rec.detach_file()
        rec.record("after_detach")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["kind"] for e in lines] == ["compile", "tune"]
        dump = tmp_path / "dump.jsonl"
        assert rec.dump_jsonl(str(dump)) == 4
        kinds = [json.loads(l)["kind"] for l in dump.read_text().splitlines()]
        assert kinds == ["before_attach", "compile", "tune", "after_detach"]

    def test_format_event_is_one_line(self):
        line = format_event(
            {"seq": 3, "ts": 0.0, "kind": "hot_swap", "model": "m", "x": 1}
        )
        assert "\n" not in line
        assert "hot_swap" in line and "model=m" in line and "x=1" in line


# ----------------------------------------------------------------------
# OpenMetrics exporter + parser
# ----------------------------------------------------------------------
class TestOpenMetrics:
    def test_empty_registry_renders_valid_document(self):
        text = render_openmetrics(
            {"schema_version": 5, "serving": {}, "gauges": {}}
        )
        families = parse_openmetrics(text)
        assert families["repro_observe_schema_version"]["type"] == "gauge"
        assert text.endswith("# EOF\n")

    def test_live_snapshot_renders_and_parses(self, trained_forest, test_rows):
        with ModelServer(ServerConfig(trace_sample=1.0)) as server:
            server.register("m", trained_forest, Schedule(tile_size=4))
            for _ in range(3):
                server.predict("m", test_rows)
            families = parse_openmetrics(render_openmetrics())
        name = "repro_serving_requests"
        assert families[name]["type"] == "counter"
        [(suffix, labels, value)] = families[name]["samples"]
        assert suffix == "_total"
        assert value == 3.0 and "server" in labels
        # histograms made it out with the full bucket convention
        hist = families["repro_serving_latency_seconds"]
        assert hist["type"] == "histogram"
        suffixes = {suffix for suffix, _labels, _value in hist["samples"]}
        assert suffixes == {"_bucket", "_sum", "_count"}
        # span/event ring counters are present
        [(_sfx, _lbl, spans_total)] = families["repro_request_spans"]["samples"]
        assert spans_total == 3.0

    def test_error_string_providers_are_skipped(self):
        snap = {
            "schema_version": 5,
            "kernel_pool": "<error: down>",
            "serving": {"s": "<error: down>"},
            "gauges": {"g": "<error: down>", "ok": 2},
        }
        families = parse_openmetrics(render_openmetrics(snap))
        gauge_samples = families["repro_gauge"]["samples"]
        assert [
            (labels["name"], value) for _suffix, labels, value in gauge_samples
        ] == [("ok", 2.0)]

    def test_parser_rejects_malformed_documents(self):
        good = render_openmetrics({"schema_version": 5})
        parse_openmetrics(good)
        with pytest.raises(ValueError):
            parse_openmetrics(good.replace("# EOF\n", ""))  # no terminator
        with pytest.raises(ValueError):
            parse_openmetrics("repro_x{bad-label=\"1\"} 1\n# EOF\n")
        with pytest.raises(ValueError):
            parse_openmetrics("# TYPE repro_x bogus\n# EOF\n")
        with pytest.raises(ValueError):  # counter sample without _total
            parse_openmetrics(
                "# TYPE repro_x counter\nrepro_x 1\n# EOF\n"
            )
        with pytest.raises(ValueError):  # non-cumulative histogram buckets
            parse_openmetrics(
                "# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1.0"} 5\n'
                'repro_h_bucket{le="+Inf"} 3\n'
                "repro_h_count 3\n"
                "# EOF\n"
            )

    def test_http_endpoint_serves_exposition(self, trained_forest, test_rows):
        with ModelServer(ServerConfig(trace_sample=1.0)) as server:
            server.register("m", trained_forest)
            server.predict("m", test_rows)
            httpd = start_metrics_server(port=0)
            try:
                host, port = httpd.server_address[:2]
                with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics"
                ) as resp:
                    assert resp.status == 200
                    assert resp.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
                    families = parse_openmetrics(resp.read().decode())
                assert "repro_serving_requests" in families
                with urllib.request.urlopen(
                    f"http://{host}:{port}/snapshot"
                ) as resp:
                    doc = json.loads(resp.read().decode())
                assert doc["schema_version"] == 5
                with pytest.raises(urllib.error.HTTPError):
                    urllib.request.urlopen(f"http://{host}:{port}/nope")
            finally:
                httpd.shutdown()


# ----------------------------------------------------------------------
# End-to-end serving integration
# ----------------------------------------------------------------------
class TestServerTracing:
    def test_every_request_traced_at_sample_one(self, trained_forest, test_rows):
        with ModelServer(ServerConfig(trace_sample=1.0)) as server:
            server.register("m", trained_forest, Schedule(tile_size=4))
            for _ in range(5):
                server.predict("m", test_rows)
        snap = RING.snapshot()
        assert snap["recorded"] == 5
        for trace in snap["recent"]:
            assert trace["model"] == "m"
            assert trace["rows"] == test_rows.shape[0]
            assert [s["name"] for s in trace["stages"]] == [
                "admission",
                "kernel",
                "aggregate",
            ]

    def test_batched_requests_get_queue_stages(self, trained_forest, test_rows):
        cfg = ServerConfig(
            trace_sample=1.0, batching=BatchingPolicy(max_delay_s=0.001)
        )
        with ModelServer(cfg) as server:
            server.register("m", trained_forest)
            server.predict("m", test_rows)
        [trace] = RING.snapshot()["recent"]
        assert [s["name"] for s in trace["stages"]] == [
            "admission",
            "queue_wait",
            "assemble",
            "kernel",
            "aggregate",
        ]

    def test_stage_durations_sum_to_request_latency(
        self, trained_forest, test_rows
    ):
        with ModelServer(ServerConfig(trace_sample=1.0)) as server:
            server.register("m", trained_forest)
            for _ in range(3):
                server.predict("m", test_rows)
            latencies = server.metrics.snapshot()["latency"]
        for trace in RING.snapshot()["recent"]:
            stage_sum = sum(s["duration_ms"] for s in trace["stages"])
            # acceptance bound is 5%; the mark design makes it exact
            assert stage_sum == pytest.approx(trace["duration_ms"], rel=0.05)
        # the root span measures the same thing the latency window does
        assert latencies["count"] == 3

    def test_sampling_rate_is_honored(self, trained_forest, test_rows):
        with ModelServer(ServerConfig(trace_sample=0.5)) as server:
            server.register("m", trained_forest)
            for _ in range(10):
                server.predict("m", test_rows)
        assert RING.snapshot()["recorded"] == 5

    def test_tracing_off_wires_no_tracer(self, trained_forest, test_rows):
        with ModelServer() as server:
            assert server.tracer is None
            server.register("m", trained_forest)
            session = server.session("m")
            assert session._tracer is None
            server.predict("m", test_rows)
        assert RING.snapshot()["recorded"] == 0

    def test_invalid_trace_sample_rejected(self):
        with pytest.raises(ServingError):
            ModelServer(ServerConfig(trace_sample=1.5))
        with pytest.raises(ServingError):
            ModelServer(ServerConfig(trace_sample=-0.1))

    def test_kernels_identical_with_and_without_tracing(
        self, trained_forest, test_rows
    ):
        with ModelServer(ServerConfig(trace_sample=1.0)) as traced:
            traced_session = traced.register("m", trained_forest, Schedule(tile_size=4))
            traced_out = traced.predict("m", test_rows)
        with ModelServer() as plain:
            plain_session = plain.register("m", trained_forest, Schedule(tile_size=4))
            plain_out = plain.predict("m", test_rows)
        # tracing never touches the compiler: same generated source,
        # same fingerprint, bit-identical outputs
        assert (
            traced_session.predictor.generated_source
            == plain_session.predictor.generated_source
        )
        assert traced_session.fingerprint == plain_session.fingerprint
        assert np.array_equal(traced_out, plain_out)

    def test_compile_and_slow_request_events_recorded(
        self, trained_forest, test_rows
    ):
        cfg = ServerConfig(slow_request_s=0.0)  # every request is "slow"
        with ModelServer(cfg) as server:
            server.register("m", trained_forest)
            server.predict("m", test_rows)
        kinds = flight_recorder.counts()
        assert kinds.get("compile", 0) >= 1
        assert kinds.get("slow_request", 0) == 1
        [slow] = flight_recorder.tail(kind="slow_request")
        assert slow["model"] == "m"
        assert slow["rows"] == test_rows.shape[0]

    def test_error_event_recorded_on_bad_input(self, trained_forest):
        with ModelServer() as server:
            server.register("m", trained_forest)
            bad = np.full((4, trained_forest.num_features), np.nan)
            with pytest.raises(Exception):
                server.predict("m", bad)
        assert flight_recorder.counts().get("error", 0) == 1

    def test_flight_log_attaches_and_detaches(self, tmp_path, trained_forest):
        path = tmp_path / "flight.jsonl"
        with ModelServer(ServerConfig(flight_log=str(path))) as server:
            server.register("m", trained_forest)
            assert flight_recorder.file_path == str(path)
        assert flight_recorder.file_path is None
        kinds = [
            json.loads(l)["kind"] for l in path.read_text().splitlines()
        ]
        assert "compile" in kinds

    def test_registry_snapshot_carries_spans_and_events(
        self, trained_forest, test_rows
    ):
        with ModelServer(ServerConfig(trace_sample=1.0)) as server:
            server.register("m", trained_forest)
            server.predict("m", test_rows)
            snap = registry.snapshot()
        assert snap["spans"]["recorded"] == 1
        assert snap["events"]["by_kind"].get("compile", 0) >= 1


# ----------------------------------------------------------------------
# Kernel pool task timing
# ----------------------------------------------------------------------
class TestPoolTaskTiming:
    def test_pool_stats_carry_timing_keys(self):
        from repro.backend.parallel import pool_stats

        stats = pool_stats()
        assert "tasks_time_total_s" in stats
        assert "tasks_time_max_s" in stats
        assert "task_timing" in stats

    def test_timing_accumulates_when_enabled(self):
        from repro.backend.parallel import (
            parallel_predict,
            pool_stats,
            set_task_timing,
        )

        def kernel(rows, out):
            out[:] = rows[:, 0]

        rows = np.random.default_rng(0).normal(size=(64, 2))
        out = np.empty(64)
        set_task_timing(True)
        try:
            before = pool_stats()["tasks_time_total_s"]
            parallel_predict(kernel, rows, out, num_threads=4)
            after = pool_stats()
            assert after["tasks_time_total_s"] > before
            assert after["tasks_time_max_s"] > 0.0
        finally:
            set_task_timing(False)
        np.testing.assert_array_equal(out, rows[:, 0])

    def test_traced_server_enables_timing(self, trained_forest):
        from repro.backend.parallel import pool_stats, set_task_timing

        set_task_timing(False)
        try:
            with ModelServer(ServerConfig(trace_sample=1.0)) as server:
                server.register("m", trained_forest)
                assert pool_stats()["task_timing"] is True
        finally:
            set_task_timing(False)


# ----------------------------------------------------------------------
# CLI subcommands
# ----------------------------------------------------------------------
class TestObserveCli:
    def test_metrics_subcommand_prints_valid_exposition(self, capsys):
        from repro.observe.__main__ import main

        rc = main(["metrics", "--rows", "16", "--requests", "2"])
        assert rc == 0
        families = parse_openmetrics(capsys.readouterr().out)
        assert "repro_serving_requests" in families
        assert "repro_request_spans" in families

    def test_dump_subcommand_matches_legacy_flags(self, tmp_path, capsys):
        from repro.observe import SNAPSHOT_KEYS
        from repro.observe.__main__ import main

        out = tmp_path / "snap.json"
        rc = main(["dump", "--rows", "16", "--requests", "1", "--output", str(out)])
        assert rc == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert tuple(doc.keys()) == SNAPSHOT_KEYS
        assert doc["spans"]["recorded"] >= 1

    def test_tail_subcommand_reads_jsonl(self, tmp_path, capsys):
        from repro.observe.__main__ import main

        path = tmp_path / "flight.jsonl"
        rec = FlightRecorder()
        rec.attach_file(str(path))
        rec.record("compile", model="m")
        rec.record("hot_swap", model="m")
        rec.detach_file()
        rc = main(["tail", "--file", str(path)])
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 2
        assert "compile" in out[0] and "hot_swap" in out[1]
        rc = main(["tail", "--file", str(path), "--kind", "hot_swap"])
        assert rc == 0
        assert len(capsys.readouterr().out.splitlines()) == 1

    def test_tail_without_file_errors_cleanly(self, capsys, monkeypatch):
        from repro.observe.__main__ import main
        from repro.observe.events import FLIGHT_LOG_ENV

        monkeypatch.delenv(FLIGHT_LOG_ENV, raising=False)
        assert main(["tail"]) == 2
        assert "flight log" in capsys.readouterr().err
