"""Unit tests for leaf statistics and leaf-bias detection."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.forest.builder import TreeBuilder
from repro.forest.ensemble import Forest
from repro.forest.statistics import (
    count_leaf_biased,
    coverage_profile,
    is_leaf_biased,
    leaf_bias_fractions,
    leaf_fraction_for_coverage,
    leaf_probabilities,
    populate_node_probabilities,
    uniform_node_probabilities,
)


def stump(threshold=0.0):
    b = TreeBuilder()
    root = b.internal(feature=0, threshold=threshold)
    b.leaf(1.0, parent=root, side="left")
    b.leaf(2.0, parent=root, side="right")
    return b.build()


class TestLeafProbabilities:
    def test_probabilities_sum_to_one_on_leaves(self, trained_forest, regression_data):
        X, _ = regression_data
        tree = trained_forest.trees[0]
        prob = leaf_probabilities(tree, X)
        assert prob[tree.leaves()].sum() == pytest.approx(1.0)

    def test_root_probability_is_one(self, trained_forest, regression_data):
        X, _ = regression_data
        prob = leaf_probabilities(trained_forest.trees[0], X)
        assert prob[0] == pytest.approx(1.0)

    def test_internal_equals_children_sum(self, trained_forest, regression_data):
        X, _ = regression_data
        tree = trained_forest.trees[0]
        prob = leaf_probabilities(tree, X)
        for node in tree.internal_nodes():
            left, right = tree.children(int(node))
            assert prob[node] == pytest.approx(prob[left] + prob[right])

    def test_known_split(self):
        tree = stump(0.0)
        rows = np.array([[-1.0], [-2.0], [1.0], [3.0]])
        prob = leaf_probabilities(tree, rows)
        left, right = tree.children(0)
        assert prob[left] == pytest.approx(0.5)
        assert prob[right] == pytest.approx(0.5)

    def test_weights_shift_probabilities(self):
        tree = stump(0.0)
        rows = np.array([[-1.0], [1.0]])
        prob = leaf_probabilities(tree, rows, weights=np.array([3.0, 1.0]))
        left, _ = tree.children(0)
        assert prob[left] == pytest.approx(0.75)

    def test_empty_rows_rejected(self):
        with pytest.raises(ModelError):
            leaf_probabilities(stump(), np.zeros((0, 1)))

    def test_populate_sets_all_trees(self, rng):
        from conftest import random_forest_model

        forest = random_forest_model(rng, num_trees=4)
        populate_node_probabilities(forest, rng.normal(size=(50, 8)))
        assert all(t.node_probability is not None for t in forest.trees)

    def test_uniform_probabilities(self):
        tree = stump()
        prob = uniform_node_probabilities(tree)
        assert prob[0] == 1.0
        left, right = tree.children(0)
        assert prob[left] == prob[right] == 0.5


class TestLeafBias:
    def _biased_tree(self):
        """A stump where 99% of mass goes left."""
        tree = stump(0.0)
        rows = np.concatenate([np.full((99, 1), -1.0), np.full((1, 1), 1.0)])
        tree.node_probability = leaf_probabilities(tree, rows)
        return tree

    def test_fraction_for_coverage(self):
        tree = self._biased_tree()
        assert leaf_fraction_for_coverage(tree, 0.9) == pytest.approx(0.5)

    def test_biased_detection(self):
        tree = self._biased_tree()
        assert is_leaf_biased(tree, alpha=0.5, beta=0.9)
        assert not is_leaf_biased(tree, alpha=0.3, beta=0.9)

    def test_unpopulated_tree_raises(self):
        with pytest.raises(ModelError, match="probabilities"):
            leaf_fraction_for_coverage(stump(), 0.9)

    def test_count_leaf_biased(self, trained_forest):
        count = count_leaf_biased(trained_forest, alpha=1.0, beta=0.9)
        assert count == trained_forest.num_trees

    def test_fractions_vector(self, trained_forest):
        fractions = leaf_bias_fractions(trained_forest, beta=0.9)
        assert fractions.shape == (trained_forest.num_trees,)
        assert ((0 < fractions) & (fractions <= 1)).all()


class TestCoverageProfile:
    def test_profile_monotone(self, trained_forest):
        profile = coverage_profile(trained_forest, coverage=0.9)
        assert (np.diff(profile.tree_fractions) >= 0).all()

    def test_profile_reaches_one(self, trained_forest):
        profile = coverage_profile(trained_forest, coverage=0.9)
        assert profile.tree_fractions[-1] == pytest.approx(1.0)

    def test_higher_coverage_needs_more_leaves(self, trained_forest):
        lo = coverage_profile(trained_forest, coverage=0.8)
        hi = coverage_profile(trained_forest, coverage=0.95)
        # At every x, fewer trees manage the higher coverage target.
        assert (hi.tree_fractions <= lo.tree_fractions + 1e-12).all()

    def test_custom_grid(self, trained_forest):
        grid = np.array([0.5, 1.0])
        profile = coverage_profile(trained_forest, 0.9, grid=grid)
        assert profile.leaf_fractions.shape == (2,)
