"""Tests for the experiment harness and reporting (fast, tiny scales)."""

import numpy as np
import pytest

from repro.experiments import fig3, fig7, fig11, fig13, memory_footprint, microarch, table1, table2
from repro.experiments.harness import ExperimentConfig, default_scale
from repro.datasets.registry import get_benchmark
from repro.reporting import format_table, geomean, to_csv

TINY = ExperimentConfig(batch_size=128, repeats=1, scale=0.02)


class TestReporting:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geomean_ignores_nonpositive(self):
        assert geomean([4.0, 0.0]) == pytest.approx(4.0)

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.25}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_empty(self):
        assert "no rows" in format_table([])

    def test_to_csv(self):
        csv = to_csv([{"x": 1, "y": "a"}])
        assert csv.splitlines() == ["x,y", "1,a"]


class TestHarness:
    def test_default_scale_by_size(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_scale(get_benchmark("abalone")) == 0.1
        assert default_scale(get_benchmark("higgs")) == 0.3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale(get_benchmark("abalone")) == 0.5


class TestTableExperiments:
    def test_table1_rows(self):
        rows = table1.run(TINY, names=["airline", "year"])
        assert [r["dataset"] for r in rows] == ["airline", "year"]
        assert all(r["#trees"] > 0 for r in rows)
        # year must stay unbiased even at tiny scale.
        year = rows[1]
        assert year["#leaf-biased"] == 0

    def test_table2_covers_all_axes(self):
        rows = table2.run()
        names = [r["optimization"] for r in rows]
        assert "Tile size" in names
        assert "Tree walk interleaving" in names

    def test_fig3_profile_shape(self):
        rows = fig3.run(TINY, names=("year",))
        assert len(rows) == 3  # three coverage targets
        for row in rows:
            # Monotone in x: more leaves allowed -> more trees qualify.
            xs = [v for k, v in row.items() if k.startswith("x=")]
            assert xs == sorted(xs)
            assert xs[-1] == 1.0  # every tree covers with all leaves


class TestPerformanceExperiments:
    def test_fig7_speedup_positive(self):
        rows = fig7.run(
            TINY, names=["year"], multicore=False, machine_models=False, tune=False
        )
        assert rows[0]["speedup (host)"] > 1.0
        assert rows[-1]["dataset"] == "GEOMEAN"

    def test_fig7_multicore_beats_single(self):
        # Parallel chunks must be big enough that per-call overhead does not
        # swamp the simulated cores; use a realistic batch and best-of-3
        # timing (the multicore model measures wall-clock chunks).
        config = ExperimentConfig(batch_size=2048, repeats=3, scale=0.05)
        rows = fig7.run(
            config, names=["year"], multicore=True, machine_models=False, tune=False
        )
        assert rows[0]["speedup (16-core sim)"] > rows[0]["speedup (host)"]

    def test_fig11_shape(self):
        rows = fig11.run(TINY, names=["year"])
        # Unbiased benchmark: probability tiling must not change results much.
        year = rows[0]
        assert 0.5 < year["prob. gain"] < 2.0
        assert year["tiling + interleave/unroll"] > 0

    def test_fig13_scaling_monotone(self):
        # repeats=3: the multicore model times wall-clock chunks, so a busy
        # host needs best-of-N to see the true scaling.
        config = ExperimentConfig(batch_size=2048, repeats=3, scale=0.05)
        rows = fig13.run(config, names=("year",), core_counts=(1, 4, 16), tune=False)
        year = rows[0]
        assert year["16 core"] > year["1 core"]

    def test_memory_footprint_rows(self):
        rows = memory_footprint.run(TINY, names=["airline"])
        airline = rows[0]
        assert airline["array/scalar"] > 1.0
        assert airline["array/sparse"] > 1.0

    def test_microarch_rows(self):
        rows = microarch.run(TINY, names=("higgs",))
        variants = {r["variant"] for r in rows}
        assert variants == {"OneRow", "OneTree", "Vector", "Interleaved", "Treelite"}
        for row in rows:
            total = (
                row["retiring%"] + row["frontend%"]
                + row["backend-mem%"] + row["backend-core%"]
            )
            assert total == pytest.approx(100.0, abs=0.5)
