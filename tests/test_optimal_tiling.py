"""Tests for the dynamic-programming optimal tiler (extension)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import compile_model
from repro.config import Schedule
from repro.errors import TilingError
from repro.forest.statistics import leaf_probabilities
from repro.hir.tiling import (
    TiledTree,
    basic_tiling,
    check_valid_tiling,
    optimal_tiling,
    probability_tiling,
    tiling_objective,
)
from repro.hir.tiling.optimal import _candidate_tiles

from conftest import random_tree
from test_property import trees
from test_tiling import chain_tree, complete_tree


class TestCandidateEnumeration:
    def test_single_node_tree(self):
        tree = complete_tree(1)
        assert _candidate_tiles(tree, 0, 4) == [(0,)]

    def test_complete_tree_counts(self):
        """Candidates rooted at the root of a complete depth-3 tree with
        tile size 3 are exactly the connected 3-node subtrees containing
        the root (maximality excludes smaller ones)."""
        tree = complete_tree(3)
        candidates = _candidate_tiles(tree, 0, 3)
        assert all(len(c) == 3 for c in candidates)
        assert all(0 in c for c in candidates)
        # Root + both children, or root + child + one grandchild (x4).
        assert len(candidates) == 5

    def test_undersized_only_when_bordered_by_leaves(self):
        tree = complete_tree(2)  # 3 internal nodes
        candidates = _candidate_tiles(tree, 0, 8)
        assert candidates == [(0, 1, 2)] or candidates == [tuple(sorted(
            int(n) for n in tree.internal_nodes()
        ))]


class TestOptimality:
    @settings(max_examples=40, deadline=None)
    @given(tree=trees(max_depth=6), nt=st.sampled_from([2, 3, 4, 8]),
           seed=st.integers(0, 10**6))
    def test_never_worse_than_greedy(self, tree, nt, seed):
        rows = np.random.default_rng(seed).normal(size=(100, 6))
        tree.node_probability = leaf_probabilities(tree, rows)
        opt = optimal_tiling(tree, nt)
        check_valid_tiling(tree, opt, nt)
        o_opt = tiling_objective(tree, opt, nt)
        for alg in (probability_tiling, basic_tiling):
            o_alg = tiling_objective(tree, alg(tree, nt), nt)
            assert o_opt <= o_alg + 1e-9

    def test_strictly_better_on_adversarial_tree(self):
        """A hot deep-left path with a decoy: greedy probability tiling can
        be beaten; the DP solver must find the better tiling on trees where
        they disagree (chain trees at tile size 2 are such a family)."""
        tree = chain_tree(9)
        rows = np.full((100, 1), -100.0)
        tree.node_probability = leaf_probabilities(tree, rows)
        nt = 2
        o_opt = tiling_objective(tree, optimal_tiling(tree, nt), nt)
        o_basic = tiling_objective(tree, basic_tiling(tree, nt), nt)
        assert o_opt <= o_basic

    def test_uniform_fallback(self, rng):
        tree = random_tree(rng, max_depth=5)
        tree.node_probability = None
        tiling = optimal_tiling(tree, 4)
        check_valid_tiling(tree, tiling, 4)

    def test_single_leaf_tree(self):
        from repro.forest.builder import TreeBuilder

        b = TreeBuilder()
        b.leaf(1.0)
        assert optimal_tiling(b.build(), 4) == []

    def test_shape_mismatch_rejected(self):
        tree = complete_tree(2)
        with pytest.raises(TilingError):
            optimal_tiling(tree, 4, probabilities=np.ones(2))

    def test_walk_semantics_preserved(self, rng):
        for _ in range(5):
            tree = random_tree(rng, max_depth=6)
            rows = rng.normal(size=(60, 8))
            tree.node_probability = leaf_probabilities(tree, rows)
            tiled = TiledTree.from_tiling(tree, optimal_tiling(tree, 4), 4)
            assert np.array_equal(tiled.walk_rows(rows), tree.predict(rows))


class TestScheduleIntegration:
    def test_compile_with_optimal_tiling(self, trained_forest, test_rows):
        predictor = compile_model(trained_forest, Schedule(tiling="optimal", tile_size=4))
        want = trained_forest.raw_predict(test_rows[:48])
        assert np.allclose(predictor.raw_predict(test_rows[:48]), want, rtol=1e-12)

    def test_optimal_shortens_expected_walks(self, trained_forest):
        from repro.hir.ir import build_hir

        base = Schedule(tile_size=4, pad_and_unroll=False, peel_walk=False)
        greedy = build_hir(trained_forest, base.with_(tiling="probability"))
        optimal = build_hir(trained_forest, base.with_(tiling="optimal"))
        g = sum(t.expected_walk_length() for t in greedy.tiled_trees)
        o = sum(t.expected_walk_length() for t in optimal.tiled_trees)
        assert o <= g + 1e-9
