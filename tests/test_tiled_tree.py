"""Unit tests for TiledTree, padding, and tree reordering."""

import numpy as np
import pytest

from repro.errors import TilingError
from repro.forest.builder import TreeBuilder
from repro.forest.statistics import leaf_probabilities
from repro.hir.padding import pad_to_uniform_depth, padding_cost
from repro.hir.reorder import reorder_trees
from repro.hir.tiling import TiledTree, basic_tiling

from conftest import random_tree
from test_tiling import chain_tree, complete_tree


def tiled(tree, nt=4):
    return TiledTree.from_tiling(tree, basic_tiling(tree, nt), nt)


class TestConstruction:
    def test_root_tile_is_zero(self, rng):
        t = tiled(random_tree(rng, max_depth=5))
        assert t.root.tile_id == 0
        assert t.root.parent == -1

    def test_children_count_invariant(self, rng):
        """Internal tiles with k nodes have exactly k+1 children."""
        for _ in range(5):
            t = tiled(random_tree(rng, max_depth=6))
            for tile in t.internal_tiles():
                if not tile.is_dummy:
                    assert len(tile.children) == tile.num_nodes + 1

    def test_every_original_leaf_becomes_leaf_tile(self, rng):
        tree = random_tree(rng, max_depth=5)
        t = tiled(tree)
        leaf_nodes = {tile.nodes[0] for tile in t.leaf_tiles()}
        assert leaf_nodes == set(int(n) for n in tree.leaves())

    def test_depths_consistent(self, rng):
        t = tiled(random_tree(rng, max_depth=6))
        for tile in t.tiles:
            if tile.parent >= 0:
                assert tile.depth == t.tiles[tile.parent].depth + 1

    def test_single_leaf_tree(self):
        b = TreeBuilder()
        b.leaf(9.0)
        t = TiledTree.from_tiling(b.build(), [], 4)
        assert t.num_tiles == 1
        assert t.root.is_leaf
        assert t.walk_row(np.zeros(1)) == 9.0

    def test_probabilities_carried(self):
        tree = chain_tree(4)
        rows = np.full((10, 1), -100.0)
        tree.node_probability = leaf_probabilities(tree, rows)
        t = tiled(tree, 2)
        assert t.root.probability == pytest.approx(1.0)

    def test_invalid_tiling_rejected(self):
        tree = complete_tree(3)
        with pytest.raises(TilingError):
            TiledTree.from_tiling(tree, [[0]], 2)  # not a partition

    def test_validation_can_be_skipped(self):
        tree = complete_tree(2)
        tiling = basic_tiling(tree, 2)
        t = TiledTree.from_tiling(tree, tiling, 2, validate=False)
        assert t.num_tiles > 0


class TestWalk:
    @pytest.mark.parametrize("nt", [1, 2, 3, 4, 8])
    def test_walk_matches_binary_traversal(self, rng, nt):
        for _ in range(5):
            tree = random_tree(rng, max_depth=6)
            t = tiled(tree, nt)
            rows = rng.normal(size=(40, 8))
            assert np.array_equal(t.walk_rows(rows), tree.predict(rows))

    def test_walk_after_padding(self, rng):
        for _ in range(5):
            tree = random_tree(rng, max_depth=6)
            t = tiled(tree, 3)
            pad_to_uniform_depth(t)
            rows = rng.normal(size=(40, 8))
            assert np.array_equal(t.walk_rows(rows), tree.predict(rows))

    def test_expected_walk_length_bounds(self, rng):
        tree = random_tree(rng, max_depth=5)
        tree.node_probability = leaf_probabilities(tree, rng.normal(size=(100, 8)))
        t = tiled(tree, 2)
        ewl = t.expected_walk_length()
        assert t.min_leaf_depth - 1e-9 <= ewl <= t.max_leaf_depth + 1e-9


class TestPadding:
    def test_uniform_after_padding(self, rng):
        for _ in range(5):
            t = tiled(random_tree(rng, max_depth=7), 2)
            assert pad_to_uniform_depth(t)
            assert t.is_uniform_depth

    def test_dummy_tiles_inserted(self):
        t = tiled(chain_tree(8), 4)
        before = t.num_tiles
        pad_to_uniform_depth(t)
        dummies = [tile for tile in t.tiles if tile.is_dummy]
        assert t.num_tiles > before
        assert dummies, "chain tree padding must add dummy tiles"
        for dummy in dummies:
            assert len(dummy.children) == 1

    def test_max_slack_gate(self):
        t = tiled(chain_tree(10), 2)
        slack = t.max_leaf_depth - t.min_leaf_depth
        assert slack > 1
        assert not pad_to_uniform_depth(t, max_slack=1)
        assert not t.is_uniform_depth

    def test_already_uniform_is_noop(self):
        t = tiled(complete_tree(4), 3)
        before = t.num_tiles
        assert pad_to_uniform_depth(t)
        assert t.num_tiles == before

    def test_padding_cost_zero_for_uniform(self):
        t = tiled(complete_tree(4), 3)
        assert padding_cost(t) == 0.0

    def test_single_leaf_tree_trivially_uniform(self):
        b = TreeBuilder()
        b.leaf(1.0)
        t = TiledTree.from_tiling(b.build(), [], 4)
        assert pad_to_uniform_depth(t)

    def test_cannot_pad_above_root(self):
        b = TreeBuilder()
        b.leaf(1.0)
        t = TiledTree.from_tiling(b.build(), [], 4)
        with pytest.raises(TilingError):
            t.insert_dummy_chain(0, 1)


class TestSignatures:
    def test_isomorphic_trees_share_signature(self):
        a = tiled(complete_tree(3), 2)
        b = tiled(complete_tree(3), 2)
        assert a.structure_signature() == b.structure_signature()

    def test_different_structures_differ(self):
        a = tiled(complete_tree(3), 2)
        b = tiled(chain_tree(5), 2)
        assert a.structure_signature() != b.structure_signature()


class TestReorder:
    def test_groups_partition_trees(self, rng):
        trees = [tiled(random_tree(rng, max_depth=6), 2) for _ in range(10)]
        groups = reorder_trees(trees)
        seen = sorted(i for g in groups for i in g.tree_indices)
        assert seen == list(range(10))

    def test_groups_sorted_by_depth(self, rng):
        trees = [tiled(random_tree(rng, max_depth=6), 2) for _ in range(10)]
        groups = reorder_trees(trees)
        depths = [g.depth for g in groups]
        assert depths == sorted(depths)

    def test_same_depth_shares_group(self):
        # Complete trees at tile size 1 are uniform-depth by construction.
        trees = [tiled(complete_tree(3), 1), tiled(complete_tree(3), 1)]
        groups = reorder_trees(trees)
        assert len(groups) == 1
        assert groups[0].num_trees == 2
        assert groups[0].uniform

    def test_disabled_reorder_keeps_order(self, rng):
        trees = [tiled(random_tree(rng, max_depth=5), 2) for _ in range(4)]
        groups = reorder_trees(trees, enabled=False)
        assert [g.tree_indices for g in groups] == [[0], [1], [2], [3]]

    def test_uniform_flag_requires_padding(self):
        chain = tiled(chain_tree(7), 2)
        assert not chain.is_uniform_depth
        groups = reorder_trees([chain])
        assert not groups[0].uniform
        pad_to_uniform_depth(chain)
        groups = reorder_trees([chain])
        assert groups[0].uniform
