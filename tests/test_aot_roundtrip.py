"""AOT artifact round-trips (PR6 tentpole).

The contract under test: ``export_artifact`` → ``load_artifact`` in a
**fresh process** (no shared module state, no warm code cache) produces an
executor whose predictions are *bitwise equal* to the in-process JIT,
across the Table-II schedule grid; and a damaged artifact — truncated
buffer, edited kernel, version bump, missing file — is rejected whole with
:class:`~repro.errors.ArtifactError` before any kernel runs.

The subprocess check batches every grid point through one interpreter
launch: the child knows only the artifact paths, loads each one, predicts,
and writes an ``.npz`` the parent compares against in-process results.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import compile_model
from repro.backend.aot import (
    ARTIFACT_FORMAT_VERSION,
    artifact_fingerprint,
    export_artifact,
    load_artifact,
)
from repro.config import Schedule
from repro.errors import ArtifactError
from repro.verify.fuzz import random_fuzz_forest

#: reduced Table-II grid: every axis that changes the generated kernel
#: (tile size, tiling, layout, precision, loop order, interleave/pad/peel,
#: scratch policy) is exercised by at least one point
GRID = [
    Schedule(),
    Schedule.scalar_baseline(),
    Schedule(tile_size=2, tiling="basic", layout="array"),
    Schedule(tile_size=4, layout="array", precision="float32"),
    Schedule(tile_size=8, tiling="hybrid", alpha=0.075, interleave=8),
    Schedule(loop_order="one-row", tile_size=2, interleave=2),
    Schedule(scratch="alloc", pad_and_unroll=False),
    Schedule(profile=True),
    Schedule(precision="int16"),
    Schedule(precision="int8", tile_size=4, layout="array"),
    Schedule(precision="int8", loop_order="one-row", scratch="alloc"),
]


@pytest.fixture(scope="module")
def forest():
    return random_fuzz_forest(np.random.default_rng(7), num_trees=9, max_depth=5)


@pytest.fixture(scope="module")
def rows(forest):
    return np.random.default_rng(8).normal(size=(65, forest.num_features))


@pytest.fixture
def artifact(tmp_path, forest):
    return export_artifact(forest, tmp_path / "artifact", Schedule())


# ----------------------------------------------------------------------
# In-process round-trip
# ----------------------------------------------------------------------

def test_roundtrip_in_process(tmp_path, forest, rows):
    predictor = compile_model(forest, Schedule())
    out = export_artifact(predictor, tmp_path / "a")
    loaded = load_artifact(out)
    np.testing.assert_array_equal(
        loaded.raw_predict(rows), predictor.raw_predict(rows)
    )
    np.testing.assert_array_equal(loaded.predict(rows), predictor.predict(rows))
    assert loaded.fingerprint == predictor.fingerprint
    assert loaded.is_artifact
    assert loaded.backend_name == "aot_export"
    assert loaded.memory_bytes() > 0
    assert artifact_fingerprint(out) == predictor.fingerprint


def test_export_refuses_nonempty_dir(tmp_path, forest):
    export_artifact(forest, tmp_path / "a", Schedule())
    with pytest.raises(ArtifactError, match="not empty"):
        export_artifact(forest, tmp_path / "a", Schedule())
    # overwrite=True replaces in place
    export_artifact(forest, tmp_path / "a", Schedule(), overwrite=True)
    load_artifact(tmp_path / "a")


def test_profile_schedule_roundtrips_with_recorder(tmp_path, forest, rows):
    out = export_artifact(forest, tmp_path / "p", Schedule(profile=True))
    loaded = load_artifact(out)
    loaded.raw_predict(rows)
    counters = loaded.profile_counters()
    assert counters and counters.get("rows", 0) >= rows.shape[0]


# ----------------------------------------------------------------------
# Fresh-process round-trip across the grid (one subprocess for all points)
# ----------------------------------------------------------------------

_CHILD = """
import json, sys
import numpy as np
from repro.backend.aot import load_artifact

spec = json.load(open(sys.argv[1]))
rows = np.load(spec["rows"])
out = {}
for name, path in spec["artifacts"].items():
    p = load_artifact(path)
    out[name] = p.raw_predict(rows)
np.savez(spec["out"], **out)
"""


def test_roundtrip_bitwise_equal_in_subprocess(tmp_path, forest, rows):
    expected = {}
    artifacts = {}
    for i, schedule in enumerate(GRID):
        name = f"s{i}"
        expected[name] = compile_model(forest, schedule).raw_predict(rows)
        artifacts[name] = str(export_artifact(forest, tmp_path / name, schedule))

    rows_path = tmp_path / "rows.npy"
    np.save(rows_path, rows)
    spec = {
        "rows": str(rows_path),
        "artifacts": artifacts,
        "out": str(tmp_path / "preds.npz"),
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))

    src = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(spec_path)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    got = np.load(tmp_path / "preds.npz")
    assert set(got.files) == set(expected)
    for name in expected:
        np.testing.assert_array_equal(got[name], expected[name], err_msg=name)


# ----------------------------------------------------------------------
# Rejection: corruption, truncation, version skew
# ----------------------------------------------------------------------

def test_missing_directory_rejected(tmp_path):
    with pytest.raises(ArtifactError, match="does not exist"):
        load_artifact(tmp_path / "nope")


def test_directory_without_manifest_rejected(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(ArtifactError, match="MANIFEST"):
        load_artifact(tmp_path / "empty")


def test_corrupted_manifest_rejected(artifact):
    (artifact / "MANIFEST.json").write_text("{not json")
    with pytest.raises(ArtifactError, match="corrupted"):
        load_artifact(artifact)


def test_version_mismatch_rejected(artifact):
    manifest = json.loads((artifact / "MANIFEST.json").read_text())
    manifest["format_version"] = ARTIFACT_FORMAT_VERSION + 1
    (artifact / "MANIFEST.json").write_text(json.dumps(manifest))
    with pytest.raises(ArtifactError, match="format version"):
        load_artifact(artifact)
    with pytest.raises(ArtifactError, match="format version"):
        artifact_fingerprint(artifact)


def test_tampered_kernel_rejected(artifact):
    kernel = artifact / "kernel.py"
    kernel.write_text(kernel.read_text() + "\n# tampered\n")
    with pytest.raises(ArtifactError, match="corrupted"):
        load_artifact(artifact)


def test_truncated_buffer_rejected(artifact):
    buffers = sorted((artifact / "buffers").glob("*.npy"))
    assert buffers
    data = buffers[0].read_bytes()
    buffers[0].write_bytes(data[: len(data) // 2])
    with pytest.raises(ArtifactError, match="corrupted"):
        load_artifact(artifact)


def test_missing_buffer_rejected(artifact):
    buffers = sorted((artifact / "buffers").glob("*.npy"))
    buffers[0].unlink()
    with pytest.raises(ArtifactError, match="missing"):
        load_artifact(artifact)


# ----------------------------------------------------------------------
# Serving integration: ModelServer.register(artifact=...)
# ----------------------------------------------------------------------

def test_server_serves_artifact_without_compiling(tmp_path, forest, rows):
    from repro.serve import ModelServer

    out = export_artifact(forest, tmp_path / "a", Schedule())
    expected = compile_model(forest, Schedule()).predict(rows)
    with ModelServer() as server:
        session = server.register("m", artifact=str(out))
        assert session.forest is None
        assert getattr(session.predictor, "is_artifact", False)
        np.testing.assert_array_equal(server.predict("m", rows), expected)
        # Fingerprint-identical re-registration is served from the cache.
        again = server.register("m2", artifact=str(out))
        assert again.cache_hit
        assert again.predictor is session.predictor


def test_server_artifact_coalesces_with_compiled_registration(tmp_path, forest, rows):
    from repro.serve import ModelServer

    out = export_artifact(forest, tmp_path / "a", Schedule())
    with ModelServer() as server:
        compiled = server.register("jit", forest, Schedule())
        loaded = server.register("aot", artifact=str(out))
        # Same fingerprint, different backend: two distinct cache slots.
        assert compiled.fingerprint == loaded.fingerprint
        assert compiled.cache_key != loaded.cache_key
        np.testing.assert_array_equal(
            server.predict("jit", rows), server.predict("aot", rows)
        )


def test_server_register_argument_validation(tmp_path, forest):
    from repro.errors import ServingError
    from repro.serve import ModelServer

    out = export_artifact(forest, tmp_path / "a", Schedule())
    with ModelServer() as server:
        with pytest.raises(ServingError, match="not both"):
            server.register("m", forest, artifact=str(out))
        with pytest.raises(ServingError, match="tune"):
            server.register("m", artifact=str(out), tune=True)
        with pytest.raises(ServingError, match="forest or an artifact"):
            server.register("m")


def test_server_rejects_corrupted_artifact(tmp_path, forest):
    from repro.serve import ModelServer

    out = export_artifact(forest, tmp_path / "a", Schedule())
    (out / "kernel.py").write_text("tampered = True\n")
    with ModelServer() as server:
        with pytest.raises(ArtifactError, match="corrupted"):
            server.register("m", artifact=str(out))
        assert "m" not in server


# ----------------------------------------------------------------------
# The cross-backend differential checker
# ----------------------------------------------------------------------

def test_compare_backend_case_roundtrips_export_backend(forest, rows):
    from repro.verify.backends import compare_backend_case

    schedule = Schedule(backend="aot_export", verify=True)
    assert compare_backend_case(forest, schedule, rows) is None


def test_manifest_missing_key_rejected(artifact):
    manifest = json.loads((artifact / "MANIFEST.json").read_text())
    del manifest["fingerprint"]
    (artifact / "MANIFEST.json").write_text(json.dumps(manifest))
    with pytest.raises(ArtifactError, match="fingerprint"):
        load_artifact(artifact)
