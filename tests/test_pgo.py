"""Profile-guided hot/cold tree splitting (``Schedule(pgo=...)``).

Covers the ``repro.pgo`` decision helpers (legality clipping, measured and
static cutoffs), bitwise output identity of split kernels across the
layout/schedule grid, cache-key qualification, verifier rejection of
inconsistent hot annotations, the autotuner's pgo axis, and the serving
integration (``register(pgo=True)`` + ``force_pgo_recompile`` swapping in
a split kernel and recording a ``pgo_swap`` flight event).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import random_forest_model
from repro import Schedule, compile_model
from repro.backend.jit import predictor_cache_key
from repro.errors import ScheduleError, ServingError, VerificationError
from repro.pgo import (
    HOT_CHUNK_CAP,
    hot_chunk_width,
    legal_hot_depth,
    measured_hot_depth,
    prefix_bytes,
    resolve_hot_depths,
    walking_trees,
)


@pytest.fixture(scope="module")
def pgo_forest():
    rng = np.random.default_rng(42)
    return random_forest_model(rng, num_trees=24, max_depth=8, num_features=12)


@pytest.fixture(scope="module")
def pgo_rows():
    rng = np.random.default_rng(43)
    return rng.normal(size=(96, 12))


# ----------------------------------------------------------------------
# Schedule knob
# ----------------------------------------------------------------------
class TestScheduleKnob:
    def test_rejects_bad_values(self):
        for bad in (0, -1, True, "measured", 1.5):
            with pytest.raises(ScheduleError):
                Schedule(pgo=bad)

    def test_accepts_auto_and_positive_ints(self):
        assert Schedule(pgo="auto").pgo == "auto"
        assert Schedule(pgo=3).pgo == 3

    def test_default_repr_is_unchanged(self):
        # repr-suppressed: pgo never appears, so pinned schedule reprs
        # (and the fingerprints derived from them) are stable.
        assert "pgo" not in repr(Schedule(pgo=2))
        assert "pgo" not in repr(Schedule())

    def test_cache_key_qualified_only_when_set(self, pgo_forest):
        base = predictor_cache_key(pgo_forest, Schedule())
        split = predictor_cache_key(pgo_forest, Schedule(pgo=2))
        assert split == f"{base}:pgo=2"
        assert predictor_cache_key(pgo_forest, Schedule(pgo="auto")) == (
            f"{base}:pgo=auto"
        )


# ----------------------------------------------------------------------
# Decision helpers
# ----------------------------------------------------------------------
class TestDecisionHelpers:
    def test_legal_hot_depth_clips_to_internal_levels(self):
        assert legal_hot_depth(8, 5, 3) == 3
        assert legal_hot_depth(8, 5, 99) == 4  # min_leaf_depth - 1
        assert legal_hot_depth(8, 1, 3) == 0  # a leaf at depth 1: no prefix
        assert legal_hot_depth(0, 5, 3) == 0
        assert legal_hot_depth(8, 5, 0) == 0

    def test_hot_chunk_width_bounds(self):
        assert hot_chunk_width(1, 1000) == 8
        assert hot_chunk_width(4, 1000) == 32
        assert hot_chunk_width(64, 1000) == HOT_CHUNK_CAP
        assert hot_chunk_width(8, 5) == 5  # never wider than the group

    def test_measured_hot_depth(self):
        counters = {"rows": 100, "walk_steps": 100 * 5 * 24}
        cutoff, mean = measured_hot_depth(counters, 24)
        assert cutoff == 4 and mean == pytest.approx(5.0)
        assert measured_hot_depth({"rows": 0, "walk_steps": 0}, 24) == (
            None,
            None,
        )

    def test_resolve_sources(self, pgo_forest):
        from repro.hir.ir import build_hir

        hir = build_hir(pgo_forest, Schedule(pgo=2))
        explicit = resolve_hot_depths(
            Schedule(pgo=2), hir.groups, hir.tiled_trees
        )
        assert explicit.source == "explicit"
        assert any(v > 0 for v in explicit.per_group.values())
        static = resolve_hot_depths(
            Schedule(pgo="auto"), hir.groups, hir.tiled_trees
        )
        assert static.source == "static"
        disabled = resolve_hot_depths(Schedule(), hir.groups, hir.tiled_trees)
        assert disabled.source == "disabled"
        assert all(v == 0 for v in disabled.per_group.values())


# ----------------------------------------------------------------------
# Output identity
# ----------------------------------------------------------------------
class TestOutputIdentity:
    @pytest.mark.parametrize("layout", ["sparse", "array"])
    @pytest.mark.parametrize("pgo", ["auto", 1, 3])
    def test_split_is_bitwise_identical(self, pgo_forest, pgo_rows, layout, pgo):
        base = Schedule(layout=layout, interleave=4, verify=True)
        ref = compile_model(pgo_forest, base).raw_predict(pgo_rows)
        got = compile_model(pgo_forest, base.with_(pgo=pgo)).raw_predict(
            pgo_rows
        )
        assert np.array_equal(got, ref)

    def test_profiled_split_identical_with_live_counters(
        self, pgo_forest, pgo_rows
    ):
        base = Schedule(verify=True)
        ref = compile_model(pgo_forest, base).raw_predict(pgo_rows)
        predictor = compile_model(
            pgo_forest, base.with_(pgo=2, profile=True)
        )
        assert np.array_equal(predictor.raw_predict(pgo_rows), ref)
        counters = predictor.profile_counters()
        assert counters["walk_steps"] > 0
        assert counters["rows"] == pgo_rows.shape[0]

    def test_hot_split_is_actually_active(self, pgo_forest):
        predictor = compile_model(pgo_forest, Schedule(pgo=3))
        splits = [g.hot for g in predictor.lir.groups if g.hot is not None]
        assert splits, "pgo=3 produced no hot split on a depth-8 forest"
        assert all(s.depth >= 1 and s.tiles >= 1 for s in splits)
        accounting = prefix_bytes(predictor.lir)
        assert accounting["hot_depth"] >= 1
        assert 0 < accounting["hot_bytes"] < accounting["full_bytes"]
        assert accounting["shrink"] > 0
        assert walking_trees(predictor.lir) > 0

    def test_pgo_none_changes_nothing(self, pgo_forest):
        # The default pipeline must be byte-identical to pre-PGO builds.
        plain = compile_model(pgo_forest, Schedule())
        assert all(g.hot is None for g in plain.lir.groups)
        assert "hstate" not in plain.source


# ----------------------------------------------------------------------
# Verifier
# ----------------------------------------------------------------------
class TestVerifier:
    def test_verify_accepts_split_modules(self, pgo_forest, pgo_rows):
        predictor = compile_model(pgo_forest, Schedule(pgo=2, verify=True))
        predictor.raw_predict(pgo_rows)

    def test_mir_verifier_rejects_inconsistent_hot_depth(self, pgo_forest):
        from repro.hir.ir import build_hir
        from repro.mir.lowering import lower_hir_to_mir
        from repro.mir.passes import run_mir_pipeline
        from repro.verify.mir import verify_mir_module

        hir = build_hir(pgo_forest, Schedule(pgo=2))
        mir = run_mir_pipeline(lower_hir_to_mir(hir), hir)
        split = [l for l in mir.tree_loops if l.walk.hot_depth]
        assert split, "expected at least one hot-split walk"
        split[0].walk.hot_depth += 1
        with pytest.raises(VerificationError):
            verify_mir_module(mir, hir)


# ----------------------------------------------------------------------
# Autotuner axis
# ----------------------------------------------------------------------
class TestAutotuneAxis:
    def test_grid_multiplies_and_yields_pgo_points(self):
        from repro.autotune.space import TuningSpace, schedule_grid

        space = TuningSpace(
            tile_sizes=(1, 4),
            tilings=("basic",),
            interleaves=(4,),
            pad_and_unroll=(True,),
            pgo=(None, "auto", 2),
        )
        grid = list(schedule_grid(space))
        assert len(grid) == space.size()
        assert {s.pgo for s in grid} == {None, "auto", 2}

    def test_cost_model_discounts_hot_steps(self, pgo_forest):
        from repro.autotune.cost import predict_cost

        base = Schedule(interleave=4)
        plain = predict_cost(pgo_forest, base, 64)
        split = predict_cost(pgo_forest, base.with_(pgo=3), 64)
        assert np.isfinite(plain) and np.isfinite(split)
        # Hot steps amortize dispatch over a wider jam: never costlier.
        assert split <= plain


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------
class TestServingPGO:
    def test_force_recompile_swaps_and_records_event(self, tmp_path):
        from repro.observe import events as flight
        from repro.serve.server import ModelServer, ServerConfig

        rng = np.random.default_rng(7)
        forest = random_forest_model(
            rng, num_trees=48, max_depth=8, num_features=16
        )
        rows = rng.normal(size=(512, 16))
        before = len(flight.recorder.tail(1000, kind="pgo_swap"))
        with ModelServer(
            ServerConfig(
                pgo_interval_s=3600.0,
                pgo_min_rows=256,
                tune_cache_path=None,
            )
        ) as server:
            session = server.register("m", forest, pgo=True)
            assert session.schedule.profile is True
            ref = server.raw_predict("m", rows)
            for _ in range(3):
                server.raw_predict("m", rows)
            info = server.force_pgo_recompile("m")
            assert info["swapped"], info
            assert info["cutoff"] >= 1
            assert np.array_equal(server.raw_predict("m", rows), ref)
            swapped = server.session("m")
            assert swapped.schedule.pgo == info["cutoff"]
            assert swapped.schedule.profile is True  # keeps adapting
            gauge = server.metrics_snapshot()["runtime"]["pgo"]["m"]
            assert gauge["pgo"] == info["cutoff"]
            assert 0 < gauge["hot_bytes"] < gauge["full_bytes"]
        events = flight.recorder.tail(1000, kind="pgo_swap")
        assert len(events) == before + 1
        assert events[-1]["model"] == "m"
        assert events[-1]["hot_bytes"] < events[-1]["full_bytes"]

    def test_cold_profile_defers_recompile(self):
        from repro.serve.server import ModelServer, ServerConfig

        rng = np.random.default_rng(9)
        forest = random_forest_model(
            rng, num_trees=8, max_depth=6, num_features=8
        )
        with ModelServer(
            ServerConfig(
                pgo_interval_s=3600.0,
                pgo_min_rows=10_000,
                tune_cache_path=None,
            )
        ) as server:
            session = server.register("cold", forest, pgo=True)
            server.raw_predict("cold", rng.normal(size=(32, 8)))
            info = server._pgo_job("cold", session)
            assert info["swapped"] is False
            assert info["reason"] == "cold_profile"

    def test_artifact_registration_rejects_pgo(self, tmp_path):
        from repro.serve.server import ModelServer, ServerConfig

        with ModelServer(ServerConfig(tune_cache_path=None)) as server:
            with pytest.raises(ServingError):
                server.register("a", artifact=str(tmp_path), pgo=True)

    def test_unregister_cancels_pgo_timer(self):
        from repro.serve.server import ModelServer, ServerConfig

        rng = np.random.default_rng(11)
        forest = random_forest_model(
            rng, num_trees=4, max_depth=4, num_features=6
        )
        with ModelServer(
            ServerConfig(pgo_interval_s=3600.0, tune_cache_path=None)
        ) as server:
            server.register("t", forest, pgo=True)
            assert "t" in server._pgo_timers
            server.unregister("t")
            assert "t" not in server._pgo_timers
