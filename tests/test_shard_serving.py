"""Tests for the sharded multi-process serving tier.

Covers shard planning, the combiner registry, shared-memory export/attach,
the worker pool (including respawn), the differential contract against the
monolithic kernel across Table-II schedule corners, server integration,
and the SLO-aware async admission front end.

The determinism contract under test (see :mod:`repro.serve.workers`):

* any multi-worker execution is **bitwise** identical to the same shard
  plan run sequentially in-process (``local_raw_predict``);
* ``num_shards=1`` with the ``sum`` combiner compiles the *same* kernel
  as the unsharded predictor and matches it **bitwise**, including a
  nonzero base score;
* ``num_shards>1`` reassociates the float tree-sum across shard
  boundaries, so agreement with the monolithic kernel is to the repo's
  accumulation-order tolerance (rtol=1e-10, atol=1e-12).
"""

import asyncio
import itertools
import os
import signal
import time

import numpy as np
import pytest

from conftest import random_forest_model
from repro.api import compile_model
from repro.autotune import recommend_shard_count
from repro.backend.shm import attach_shared, export_shared
from repro.config import Schedule
from repro.errors import BackendError, ScheduleError, ServingError
from repro.serve import (
    AsyncModelFrontend,
    Combiner,
    ModelServer,
    SLOPolicy,
    ShardedPredictor,
    WorkerPool,
    build_sharded_predictor,
    get_combiner,
    list_combiners,
    plan_shards,
    register_combiner,
    shard_forest,
)

NUM_FEATURES = 6
TOL = dict(rtol=1e-10, atol=1e-12)


@pytest.fixture(scope="module")
def forest():
    f = random_forest_model(
        np.random.default_rng(11), num_trees=9, max_depth=5, num_features=NUM_FEATURES
    )
    f.base_score = 0.37  # nonzero base makes the bitwise claims non-trivial
    return f


@pytest.fixture(scope="module")
def multiclass_forest():
    return random_forest_model(
        np.random.default_rng(13),
        num_trees=6,
        max_depth=4,
        num_features=NUM_FEATURES,
        num_classes=3,
    )


@pytest.fixture(scope="module")
def rows():
    return np.random.default_rng(12).normal(size=(40, NUM_FEATURES))


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_boundaries_cover_all_trees(self, forest):
        for num_shards in (1, 2, 3, forest.num_trees):
            plan = plan_shards(forest, num_shards)
            assert plan.num_shards == num_shards
            assert plan.boundaries[0] == 0
            assert plan.boundaries[-1] == forest.num_trees
            assert list(plan.boundaries) == sorted(set(plan.boundaries))
            assert all(end > start for start, end in plan.ranges())

    def test_node_count_balance(self, forest):
        plan = plan_shards(forest, 3)
        weights = [tree.num_nodes for tree in forest.trees]
        shard_nodes = [sum(weights[s:e]) for s, e in plan.ranges()]
        # Contiguous boundaries cannot balance perfectly, but no shard
        # should carry more than one tree's worth beyond the ideal share.
        ideal = sum(weights) / 3
        assert max(shard_nodes) <= ideal + max(weights)

    def test_invalid_counts_rejected(self, forest):
        with pytest.raises(ServingError, match=">= 1"):
            plan_shards(forest, 0)
        with pytest.raises(ServingError, match="cannot split"):
            plan_shards(forest, forest.num_trees + 1)

    def test_shard_forest_preserves_parent(self, forest):
        ids_before = [tree.tree_id for tree in forest.trees]
        plan = plan_shards(forest, 3)
        shards = shard_forest(forest, plan)
        # The Forest constructor renumbers tree_id on the objects it is
        # given; sharding must not corrupt the parent's numbering.
        assert [tree.tree_id for tree in forest.trees] == ids_before
        assert sum(s.num_trees for s in shards) == forest.num_trees
        assert all(s.base_score == 0.0 for s in shards)
        assert all(s.num_features == forest.num_features for s in shards)

    def test_embed_base_puts_base_on_shard_zero_only(self, forest):
        shards = shard_forest(forest, plan_shards(forest, 3), embed_base=True)
        assert shards[0].base_score == forest.base_score
        assert all(s.base_score == 0.0 for s in shards[1:])


class TestRecommendShardCount:
    def test_small_forest_collapses_to_one_shard(self, forest):
        # 9 small trees are far under the node/byte floors.
        assert recommend_shard_count(forest, 8) == 1

    def test_unfloored_count_caps_at_workers_and_trees(self, forest):
        kwargs = dict(min_nodes_per_shard=1, min_bytes_per_shard=1)
        assert recommend_shard_count(forest, 4, **kwargs) == 4
        assert recommend_shard_count(forest, 100, **kwargs) == forest.num_trees

    def test_invalid_workers_rejected(self, forest):
        with pytest.raises(ScheduleError):
            recommend_shard_count(forest, 0)


# ----------------------------------------------------------------------
# Combiners
# ----------------------------------------------------------------------
class TestCombiners:
    def _partials(self, shape=(5,), k=3, seed=0):
        rng = np.random.default_rng(seed)
        return [rng.normal(size=shape) for _ in range(k)]

    def test_sum_matches_ordered_fold(self):
        partials = self._partials()
        want = np.full_like(partials[0], 0.25)
        for p in partials:
            want = want + p
        got = get_combiner("sum").fn(partials, 0.25)
        assert np.array_equal(got, want)

    def test_mean_and_max_margin(self):
        partials = self._partials(shape=(4, 3))
        mean = get_combiner("mean").fn(partials, 0.5)
        np.testing.assert_allclose(mean, 0.5 + sum(partials) / 3, **TOL)
        mx = get_combiner("max_margin").fn(partials, 0.5)
        np.testing.assert_allclose(
            mx, 0.5 + np.maximum.reduce(partials), **TOL
        )
        assert not get_combiner("max_margin").objective_transform

    def test_top_k_selects_per_row(self):
        partials = self._partials(shape=(4, 5))
        out = get_combiner("top2").fn(partials, 0.0)
        dense = sum(partials)
        for row, ref in zip(out, dense):
            kept = np.isfinite(row)
            assert kept.sum() == 2
            assert set(np.flatnonzero(kept)) == set(np.argsort(ref)[-2:])

    def test_top_k_wider_than_classes_is_dense(self):
        partials = self._partials(shape=(4, 3))
        out = get_combiner("top5").fn(partials, 0.0)
        assert np.isfinite(out).all()

    def test_top_k_requires_multiclass(self):
        with pytest.raises(ServingError, match="multiclass"):
            get_combiner("top2").fn(self._partials(shape=(5,)), 0.0)

    def test_registry(self):
        assert {"sum", "mean", "max_margin"} <= set(list_combiners())
        assert get_combiner("top3").name == "top3"
        with pytest.raises(ServingError, match="unknown combiner"):
            get_combiner("median")
        with pytest.raises(ServingError, match="already registered"):
            register_combiner(Combiner("sum", lambda p, b: p[0]))

    def test_combiner_instance_passthrough(self):
        custom = Combiner("first", lambda p, b: p[0] + b)
        assert get_combiner(custom) is custom


# ----------------------------------------------------------------------
# Shared-memory export / attach
# ----------------------------------------------------------------------
class TestSharedMemory:
    def test_roundtrip_is_bitwise(self, forest, rows):
        predictor = compile_model(forest, Schedule(tile_size=4))
        handle = export_shared(predictor)
        try:
            attached = attach_shared(handle.manifest)
            try:
                assert np.array_equal(
                    attached.raw_predict(rows), predictor.raw_predict(rows)
                )
                assert attached.fingerprint == predictor.fingerprint
            finally:
                attached.close()
        finally:
            handle.unlink()
        handle.unlink()  # idempotent

    def test_attached_buffers_are_read_only(self, forest, rows):
        predictor = compile_model(forest)
        handle = export_shared(predictor)
        try:
            attached = attach_shared(handle.manifest)
            try:
                # compile_source execs the kernel in the attach namespace,
                # so the kernel's globals are the shared buffer views.
                arrays = [
                    v for v in attached.kernel.__globals__.values()
                    if isinstance(v, np.ndarray)
                ]
                assert arrays
                with pytest.raises(ValueError):
                    arrays[0][...] = 0
            finally:
                attached.close()
        finally:
            handle.unlink()

    def test_attach_after_unlink_raises(self, forest):
        handle = export_shared(compile_model(forest))
        manifest = handle.manifest
        handle.unlink()
        with pytest.raises(BackendError, match="segment"):
            attach_shared(manifest)

    def test_export_requires_compiled_predictor(self):
        with pytest.raises(BackendError):
            export_shared(object())


# ----------------------------------------------------------------------
# Differential contract vs. the monolithic kernel
# ----------------------------------------------------------------------
GRID_CORNERS = [
    pytest.param(Schedule(tile_size=ts, tiling=tiling, layout=layout, **loops),
                 id=f"t{ts}-{tiling}-{layout}-{'opt' if loops['interleave'] > 1 else 'plain'}")
    for ts, tiling, layout, loops in itertools.product(
        (1, 4),
        ("basic", "probability", "hybrid"),
        ("array", "sparse"),
        (
            {"interleave": 1, "peel_walk": False, "pad_and_unroll": False},
            {"interleave": 4, "peel_walk": True, "pad_and_unroll": True},
        ),
    )
]

# Pool spawns are not free; the full corner sweep runs in-process and a
# representative subset exercises real worker processes.
POOL_CORNERS = [
    pytest.param(Schedule(), id="default"),
    pytest.param(Schedule(tile_size=4, tiling="probability", layout="sparse"),
                 id="t4-prob-sparse"),
    pytest.param(
        Schedule(tile_size=4, tiling="hybrid", layout="array",
                 interleave=4, peel_walk=True, pad_and_unroll=True),
        id="t4-hybrid-opt",
    ),
]


class TestShardedDifferential:
    @pytest.mark.parametrize("schedule", GRID_CORNERS)
    def test_in_process_sharding_matches_reference(self, forest, rows, schedule):
        from repro.forest.statistics import populate_node_probabilities

        populate_node_probabilities(forest, rows)
        with build_sharded_predictor(
            forest, schedule, num_workers=0, num_shards=3
        ) as sharded:
            got = sharded.raw_predict(rows)
            np.testing.assert_allclose(got, forest.raw_predict(rows), **TOL)
            # Deterministic: the fold order is fixed, so repeat calls are
            # bitwise identical.
            assert np.array_equal(got, sharded.raw_predict(rows))

    @pytest.mark.parametrize("schedule", POOL_CORNERS)
    def test_workers_bitwise_match_local_plan(self, forest, rows, schedule):
        """Acceptance: multi-worker output is bitwise identical to the same
        shard plan run in-process, and within accumulation tolerance of the
        monolithic kernel."""
        from repro.forest.statistics import populate_node_probabilities

        populate_node_probabilities(forest, rows)
        mono = compile_model(forest, schedule)
        with build_sharded_predictor(
            forest, schedule, num_workers=2, num_shards=3
        ) as sharded:
            remote = sharded.raw_predict(rows)
            assert np.array_equal(remote, sharded.local_raw_predict(rows))
            np.testing.assert_allclose(remote, mono.raw_predict(rows), **TOL)

    def test_single_shard_is_bitwise_monolithic(self, forest, rows):
        """The degenerate num_shards=1 case compiles the identical kernel
        (base score embedded in the one shard), so even with a nonzero
        base the match is bitwise, not just allclose."""
        assert forest.base_score != 0.0
        mono = compile_model(forest, Schedule(tile_size=4))
        with build_sharded_predictor(
            forest, Schedule(tile_size=4), num_workers=1, num_shards=1
        ) as sharded:
            assert np.array_equal(sharded.raw_predict(rows), mono.raw_predict(rows))

    def test_multiclass_sharded_predict(self, multiclass_forest, rows):
        with build_sharded_predictor(
            multiclass_forest, num_workers=2, num_shards=2
        ) as sharded:
            np.testing.assert_allclose(
                sharded.predict(rows), multiclass_forest.predict(rows), **TOL
            )

    def test_selection_combiner_skips_objective(self, multiclass_forest, rows):
        with build_sharded_predictor(
            multiclass_forest, num_workers=0, num_shards=2, combiner="max_margin"
        ) as sharded:
            out = sharded.predict(rows)
            # max_margin keeps raw margins: no softmax row-normalization.
            assert not np.allclose(out.sum(axis=1), 1.0)

    def test_fingerprint_keys_plan_and_combiner(self, forest):
        with build_sharded_predictor(forest, num_workers=0, num_shards=2) as a, \
             build_sharded_predictor(forest, num_workers=0, num_shards=3) as b, \
             build_sharded_predictor(
                 forest, num_workers=0, num_shards=2, combiner="mean"
             ) as c:
            assert len({a.fingerprint, b.fingerprint, c.fingerprint}) == 3


# ----------------------------------------------------------------------
# Worker pool lifecycle
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_dead_worker_is_respawned(self, forest, rows):
        from repro.observe import events as flight_events

        with build_sharded_predictor(
            forest, num_workers=2, num_shards=2, name="respawn-test"
        ) as sharded:
            before = sharded.raw_predict(rows)
            stats = sharded.worker_stats()
            victim_pid = stats["workers"]["0"]["pid"]
            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not sharded.worker_stats()["workers"]["0"]["alive"]:
                    break
                time.sleep(0.05)
            after = sharded.raw_predict(rows)  # triggers respawn at dispatch
            assert np.array_equal(after, before)
            stats = sharded.worker_stats()
            assert stats["workers"]["0"]["respawns"] >= 1
            assert stats["workers"]["0"]["pid"] != victim_pid
        deaths = flight_events.recorder.tail(n=100, kind="worker_dead")
        assert any(e.get("pool") == "respawn-test" for e in deaths)

    def test_respawn_disabled_raises(self, forest, rows):
        predictor = compile_model(forest)
        handle = export_shared(predictor)
        pool = None
        try:
            pool = WorkerPool([handle.manifest], 1, respawn=False, name="no-respawn")
            pool.execute(rows)
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            pool._procs[0].join(10.0)
            with pytest.raises(ServingError, match="respawn is disabled"):
                pool.execute(rows)
        finally:
            if pool is not None:
                pool.close()
            handle.unlink()

    def test_closed_pool_rejects(self, forest, rows):
        with build_sharded_predictor(forest, num_workers=1, num_shards=2) as sharded:
            pass
        with pytest.raises(ServingError, match="closed"):
            sharded.raw_predict(rows)

    def test_pool_validation(self, forest):
        handle = export_shared(compile_model(forest))
        try:
            with pytest.raises(ServingError, match="num_workers"):
                WorkerPool([handle.manifest], 0)
            with pytest.raises(ServingError, match="at least one shard"):
                WorkerPool([], 1)
            with pytest.raises(ServingError, match="request_timeout_s"):
                WorkerPool([handle.manifest], 1, request_timeout_s=0.0)
        finally:
            handle.unlink()


# ----------------------------------------------------------------------
# Server integration
# ----------------------------------------------------------------------
class TestServerSharded:
    def test_register_predict_unregister(self, forest, rows):
        with ModelServer() as server:
            server.register("big", forest, workers=2, shards=3)
            predictor = server.session("big").predictor
            assert isinstance(predictor, ShardedPredictor)
            np.testing.assert_allclose(
                server.predict("big", rows), forest.predict(rows), **TOL
            )
            gauge = server.metrics_snapshot()["runtime"]["workers"]
            assert gauge["big"]["num_workers"] == 2
            assert all(w["alive"] for w in gauge["big"]["workers"].values())
            server.unregister("big")
            assert predictor._closed
            assert server.metrics_snapshot()["runtime"]["workers"] == {}

    def test_reregister_closes_old_pool(self, forest, rows):
        with ModelServer() as server:
            server.register("m", forest, workers=1, shards=2)
            old = server.session("m").predictor
            server.register("m", forest)  # back to single-process
            assert old._closed
            np.testing.assert_allclose(
                server.raw_predict("m", rows), forest.raw_predict(rows), **TOL
            )

    def test_sharded_registration_guards(self, forest):
        with ModelServer() as server:
            with pytest.raises(ServingError, match="needs a forest"):
                server.register("m", workers=1)
            with pytest.raises(ServingError, match="requires workers"):
                server.register("m", forest, shards=2)
            with pytest.raises(ServingError, match="tune"):
                server.register("m", forest, workers=1, tune=True)

    def test_slo_recorded_on_register(self, forest):
        with ModelServer() as server:
            slo = SLOPolicy(target_p99_s=0.1, max_inflight=4)
            server.register("m", forest, workers=1, slo=slo)
            assert server.slo_policy("m") is slo
            server.unregister("m")
            assert server.slo_policy("m") is None


# ----------------------------------------------------------------------
# SLO-aware async admission
# ----------------------------------------------------------------------
class TestAsyncFrontend:
    def test_slo_policy_validation(self):
        with pytest.raises(ServingError, match="target_p99_s"):
            SLOPolicy(target_p99_s=0.0)
        with pytest.raises(ServingError, match="max_inflight"):
            SLOPolicy(max_inflight=0)
        with pytest.raises(ServingError, match="min_samples"):
            SLOPolicy(min_samples=0)

    def test_async_predict_roundtrip(self, forest, rows):
        with ModelServer() as server:
            server.register("m", forest)
            with AsyncModelFrontend(server) as frontend:
                got = asyncio.run(frontend.predict("m", rows))
                np.testing.assert_allclose(got, forest.predict(rows), **TOL)

    def test_max_inflight_sheds_load(self, forest, rows):
        with ModelServer() as server:
            server.register("m", forest)
            with AsyncModelFrontend(server) as frontend:
                frontend.set_slo("m", SLOPolicy(max_inflight=1))
                entry = frontend._admit("m")  # hold the one slot
                assert entry is not None
                with pytest.raises(ServingError, match="max_inflight"):
                    asyncio.run(frontend.predict("m", rows))
                frontend._finish(entry, 0.01)
                got = asyncio.run(frontend.predict("m", rows))
                np.testing.assert_allclose(got, forest.predict(rows), **TOL)
            snap = server.metrics_snapshot()
            assert snap["admission_rejects"] == 1

    def test_p99_over_target_sheds_under_load(self, forest, rows):
        with ModelServer() as server:
            server.register("m", forest)
            with AsyncModelFrontend(server) as frontend:
                frontend.set_slo(
                    "m", SLOPolicy(target_p99_s=0.001, min_samples=4)
                )
                for _ in range(4):  # prime the latency window over target
                    entry = frontend._admit("m")
                    frontend._finish(entry, 1.0)
                holder = frontend._admit("m")  # a lone request always admits
                assert holder is not None
                with pytest.raises(ServingError, match="p99_over_target"):
                    frontend._admit("m")
                frontend._finish(holder, 1.0)

    def test_frontend_inherits_server_slo(self, forest):
        with ModelServer() as server:
            server.register(
                "m", forest, slo=SLOPolicy(max_inflight=2)
            )
            with AsyncModelFrontend(server) as frontend:
                assert frontend._admit("m") is not None  # lazily adopted
                assert frontend.slo_policy("m").max_inflight == 2

    def test_no_policy_admits_everything(self, forest, rows):
        with ModelServer() as server:
            server.register("m", forest)
            with AsyncModelFrontend(server) as frontend:
                assert frontend._admit("m") is None
                got = asyncio.run(frontend.raw_predict("m", rows))
                np.testing.assert_allclose(got, forest.raw_predict(rows), **TOL)

    def test_reject_recorded_in_flight_recorder(self, forest, rows):
        from repro.observe import events as flight_events

        with ModelServer() as server:
            server.register("shed-me", forest)
            with AsyncModelFrontend(server) as frontend:
                frontend.set_slo("shed-me", SLOPolicy(max_inflight=1))
                entry = frontend._admit("shed-me")
                with pytest.raises(ServingError):
                    frontend._admit("shed-me")
                frontend._finish(entry, 0.01)
        rejects = flight_events.recorder.tail(n=100, kind="admission_reject")
        assert any(e.get("model") == "shed-me" for e in rejects)
