"""Unit tests for the baseline inference systems."""

import numpy as np
import pytest

from repro.baselines import (
    HummingbirdGEMMPredictor,
    QuickScorerPredictor,
    ScalarReferencePredictor,
    TreelitePredictor,
    XGBoostV09Predictor,
    XGBoostV15Predictor,
)
from repro.errors import ModelError
from repro.training.gbdt import GBDTParams, train_gbdt

ALL_BASELINES = [
    ScalarReferencePredictor,
    XGBoostV15Predictor,
    XGBoostV09Predictor,
    TreelitePredictor,
    HummingbirdGEMMPredictor,
    QuickScorerPredictor,
]


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
class TestCorrectness:
    def test_regression(self, baseline_cls, trained_forest, test_rows):
        baseline = baseline_cls(trained_forest)
        got = baseline.raw_predict(test_rows[:64])
        assert np.allclose(got, trained_forest.raw_predict(test_rows[:64]), rtol=1e-12)

    def test_multiclass(self, baseline_cls, multiclass_forest, test_rows):
        if baseline_cls is ScalarReferencePredictor:
            pytest.skip("scalar reference covered by regression test")
        baseline = baseline_cls(multiclass_forest)
        got = baseline.raw_predict(test_rows[:32])
        assert got.shape == (32, 3)
        assert np.allclose(got, multiclass_forest.raw_predict(test_rows[:32]), rtol=1e-12)

    def test_deep_imbalanced(self, baseline_cls, deep_forest, test_rows):
        if baseline_cls is QuickScorerPredictor and any(
            t.num_leaves > 64 for t in deep_forest.trees
        ):
            pytest.skip("QuickScorer's documented 64-leaf cap")
        baseline = baseline_cls(deep_forest)
        got = baseline.raw_predict(test_rows[:32])
        assert np.allclose(got, deep_forest.raw_predict(test_rows[:32]), rtol=1e-12)


class TestTreelite:
    def test_code_size_grows_with_model(self, regression_data):
        X, y = regression_data
        small = train_gbdt(X, y, GBDTParams(num_rounds=2, max_depth=3))
        large = train_gbdt(X, y, GBDTParams(num_rounds=10, max_depth=5))
        assert (
            TreelitePredictor(large).code_size_chars
            > TreelitePredictor(small).code_size_chars
        )

    def test_one_function_per_tree(self, trained_forest):
        p = TreelitePredictor(trained_forest)
        assert len(p.tree_funcs) == trained_forest.num_trees
        assert p.source.count("def tree_") == trained_forest.num_trees


class TestHummingbird:
    def test_dense_and_sparse_agree(self, trained_forest, test_rows):
        sparse = HummingbirdGEMMPredictor(trained_forest, use_sparse=True)
        dense = HummingbirdGEMMPredictor(trained_forest, use_sparse=False)
        assert np.allclose(
            sparse.raw_predict(test_rows[:32]), dense.raw_predict(test_rows[:32])
        )

    def test_work_independent_of_path(self, trained_forest):
        """The GEMM strategy evaluates every internal node: matrix B has one
        threshold per internal node of the whole ensemble."""
        p = HummingbirdGEMMPredictor(trained_forest)
        total_internal = sum(t.internal_nodes().size for t in trained_forest.trees)
        assert p.B.shape == (total_internal,)


class TestQuickScorer:
    def test_leaf_cap_enforced(self, regression_data):
        X, y = regression_data
        big = train_gbdt(X, y, GBDTParams(num_rounds=1, max_depth=8, reg_lambda=1e-6))
        if max(t.num_leaves for t in big.trees) > 64:
            with pytest.raises(ModelError, match="64"):
                QuickScorerPredictor(big)
        else:
            QuickScorerPredictor(big)  # model stayed small; still valid

    def test_boundary_values(self, trained_forest):
        """Rows exactly at thresholds exercise the false-node search."""
        p = QuickScorerPredictor(trained_forest)
        thresholds = trained_forest.trees[0].threshold[
            trained_forest.trees[0].internal_nodes()
        ]
        row = np.zeros((1, trained_forest.num_features))
        row[0, : len(thresholds[: trained_forest.num_features])] = thresholds[
            : trained_forest.num_features
        ]
        assert np.allclose(
            p.raw_predict(row), trained_forest.raw_predict(row), rtol=1e-12
        )
