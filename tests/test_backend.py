"""Unit tests for codegen, the JIT, the interpreter, and the Predictor."""

import time

import numpy as np
import pytest

from repro.api import compile_model, predict
from repro.backend.codegen import build_namespace, emit_module_source
from repro.backend.interpreter import interpret_lir
from repro.backend.jit import (
    cache_limit,
    cache_size,
    clear_cache,
    compile_lir,
    compile_source,
    model_fingerprint,
    set_cache_limit,
)
from repro.backend.parallel import (
    MulticoreSimulator,
    parallel_predict,
    pool_stats,
    row_blocks,
    shutdown_pool,
)
from repro.config import Schedule
from repro.errors import CodegenError, ExecutionError
from repro.hir.ir import build_hir
from repro.lir.lowering import lower_mir_to_lir
from repro.mir.lowering import lower_hir_to_mir
from repro.mir.passes import run_mir_pipeline


def lower(forest, schedule):
    hir = build_hir(forest, schedule)
    mir = run_mir_pipeline(lower_hir_to_mir(hir), hir)
    return lower_mir_to_lir(mir, hir)


class TestCodegen:
    def test_source_contains_walk_ops(self, trained_forest):
        lir = lower(trained_forest, Schedule())
        source = emit_module_source(lir)
        assert "def predict_block(rows, out, arena=None):" in source
        # The §V-A op sequence: loads, gather, compare, bit pack, LUT lookup
        # — arena emission writes each op into preallocated scratch.
        assert "_th, idx" in source and "_fi, idx" in source
        assert "_np.less(feat, thr, out=cmp)" in source
        assert "0x0102040810204080" in source  # movemask analog at width 8
        assert "_np.take(lut, sid, mode='clip', out=ci)" in source

    def test_alloc_source_contains_walk_ops(self, trained_forest):
        """The legacy fresh-temporary emitter survives as scratch="alloc"."""
        lir = lower(trained_forest, Schedule(scratch="alloc"))
        source = emit_module_source(lir)
        assert "def predict_block(rows, out, arena=None):" in source
        assert "_th, idx" in source and "_fi, idx" in source
        assert "cmp = feat < thr" in source
        assert "0x0102040810204080" in source
        assert "_np.take(lut," in source
        assert "out=" not in source.replace("(rows, out, arena=None)", "")

    def test_unrolled_source_has_no_while(self, trained_forest):
        lir = lower(trained_forest, Schedule(pad_and_unroll=True, pad_max_slack=99))
        source = emit_module_source(lir)
        assert "while" not in source

    def test_loop_source_has_guard(self, trained_forest):
        lir = lower(
            trained_forest, Schedule(pad_and_unroll=False, peel_walk=False)
        )
        source = emit_module_source(lir)
        assert "while act_r.size:" in source

    def test_one_row_order_loops_rows(self, trained_forest):
        lir = lower(trained_forest, Schedule(loop_order="one-row"))
        assert "for i in range(B):" in emit_module_source(lir)

    def test_namespace_has_buffers(self, trained_forest):
        lir = lower(trained_forest, Schedule())
        ns = build_namespace(lir)
        group_ids = [g.group_id for g in lir.groups if not g.trivial]
        assert all(f"g{gid}_th" in ns for gid in group_ids)
        assert "lut" in ns

    def test_array_layout_emits_arity_arithmetic(self, trained_forest):
        lir = lower(trained_forest, Schedule(layout="array", tile_size=2))
        assert "* 3 + ci + 1" in emit_module_source(lir)


class TestJIT:
    def test_compile_and_run(self, trained_forest, test_rows):
        lir = lower(trained_forest, Schedule())
        kernel, source = compile_lir(lir)
        out = np.full((len(test_rows), 1), lir.base_score)
        kernel(test_rows, out)
        assert np.allclose(out[:, 0], trained_forest.raw_predict(test_rows))

    def test_source_cache_reused(self, trained_forest):
        before = cache_size()
        lir = lower(trained_forest, Schedule())
        compile_lir(lir)
        mid = cache_size()
        compile_lir(lir)  # same source -> no new cache entry
        assert cache_size() == mid
        assert mid >= before

    def test_bad_source_raises_codegen_error(self):
        with pytest.raises(CodegenError):
            compile_source("def predict_block(:\n", {})

    def test_missing_function_rejected(self):
        with pytest.raises(CodegenError):
            compile_source("x = 1\n", {})

    def test_cache_is_bounded_lru(self):
        previous = set_cache_limit(4)
        try:
            assert cache_limit() == 4
            for i in range(10):
                compile_source(
                    f"def predict_block(rows, out):\n    return out  # v{i}\n", {}
                )
                assert cache_size() <= 4
            assert cache_size() == 4
        finally:
            set_cache_limit(previous)

    def test_cache_limit_trims_immediately(self):
        previous = set_cache_limit(8)
        try:
            for i in range(8):
                compile_source(
                    f"def predict_block(rows, out):\n    return out  # trim{i}\n", {}
                )
            set_cache_limit(2)
            assert cache_size() <= 2
        finally:
            set_cache_limit(previous)

    def test_cache_limit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_cache_limit(0)

    def test_compile_source_reports_real_hit_flag(self):
        clear_cache()
        _, hit = compile_source("def predict_block(rows, out):\n    return out\n", {})
        assert hit is False
        _, hit = compile_source("def predict_block(rows, out):\n    return out\n", {})
        assert hit is True

    def test_full_cache_miss_not_reported_as_hit(self):
        """Regression: at capacity, a miss that inserts+evicts leaves
        ``cache_size()`` unchanged and used to be reported as a hit."""
        previous = set_cache_limit(4)
        try:
            clear_cache()
            for i in range(cache_limit()):
                _, hit = compile_source(
                    f"def predict_block(rows, out):\n    return out  # fill{i}\n",
                    {},
                )
                assert hit is False
            assert cache_size() == cache_limit()
            fresh = "def predict_block(rows, out):\n    return out  # fresh\n"
            _, hit = compile_source(fresh, {})
            assert hit is False  # size stayed at capacity, but this compiled
            assert cache_size() == cache_limit()
            _, hit = compile_source(fresh, {})
            assert hit is True  # and a repeat is a genuine hit
        finally:
            set_cache_limit(previous)
            clear_cache()

    def test_compile_lir_trace_hit_flag_under_full_cache(self, trained_forest):
        from repro.observe.trace import CompilationTrace

        lir = lower(trained_forest, Schedule(tile_size=2, interleave=2))
        previous = set_cache_limit(2)
        try:
            clear_cache()
            for i in range(cache_limit()):
                compile_source(
                    f"def predict_block(rows, out):\n    return out  # pad{i}\n",
                    {},
                )
            trace = CompilationTrace()
            compile_lir(lir, trace=trace)
            assert trace.find("jit-compile").stats["code_cache_hit"] is False
            trace2 = CompilationTrace()
            compile_lir(lir, trace=trace2)
            assert trace2.find("jit-compile").stats["code_cache_hit"] is True
        finally:
            set_cache_limit(previous)
            clear_cache()

    def test_model_fingerprint_stable_and_schedule_sensitive(self, trained_forest):
        a = model_fingerprint(trained_forest, Schedule())
        b = model_fingerprint(trained_forest, Schedule())
        c = model_fingerprint(trained_forest, Schedule(tile_size=2))
        assert a == b
        assert a != c
        assert a != model_fingerprint(trained_forest)


class TestInterpreter:
    @pytest.mark.parametrize("layout", ["array", "sparse"])
    @pytest.mark.parametrize("tile_size", [1, 4])
    def test_matches_reference(self, trained_forest, test_rows, layout, tile_size):
        lir = lower(trained_forest, Schedule(layout=layout, tile_size=tile_size))
        got = interpret_lir(lir, test_rows[:32])[:, 0]
        assert np.allclose(got, trained_forest.raw_predict(test_rows[:32]), rtol=1e-12)

    def test_matches_compiled(self, deep_forest, test_rows):
        predictor = compile_model(deep_forest, Schedule(pad_and_unroll=False))
        got = interpret_lir(predictor.lir, test_rows[:16])[:, 0]
        assert np.allclose(got, predictor.raw_predict(test_rows[:16]), rtol=1e-12)

    def test_multiclass(self, multiclass_forest, test_rows):
        lir = lower(multiclass_forest, Schedule())
        got = interpret_lir(lir, test_rows[:16])
        assert np.allclose(got, multiclass_forest.raw_predict(test_rows[:16]), rtol=1e-12)


class TestPredictor:
    def test_matches_reference(self, trained_forest, test_rows):
        p = compile_model(trained_forest)
        assert np.allclose(
            p.raw_predict(test_rows), trained_forest.raw_predict(test_rows), rtol=1e-12
        )

    def test_objective_transform_applied(self, binary_forest, test_rows):
        p = compile_model(binary_forest)
        probs = p.predict(test_rows)
        assert ((probs >= 0) & (probs <= 1)).all()
        assert np.allclose(probs, binary_forest.predict(test_rows), rtol=1e-12)

    def test_nan_rejected(self, trained_forest, test_rows):
        p = compile_model(trained_forest)
        bad = test_rows.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ExecutionError, match="NaN"):
            p.raw_predict(bad)

    def test_nan_check_can_be_disabled(self, trained_forest, test_rows):
        p = compile_model(trained_forest, validate_inputs=False)
        bad = test_rows.copy()
        bad[0, 0] = np.nan
        p.raw_predict(bad)  # undefined result, but must not raise

    def test_wrong_width_rejected(self, trained_forest):
        p = compile_model(trained_forest)
        with pytest.raises(ExecutionError, match="rows"):
            p.raw_predict(np.zeros((4, 3)))

    def test_row_block_equivalent(self, trained_forest, test_rows):
        whole = compile_model(trained_forest).raw_predict(test_rows)
        blocked = compile_model(trained_forest, Schedule(row_block=17)).raw_predict(test_rows)
        assert np.allclose(whole, blocked, rtol=1e-12)

    def test_parallel_equivalent(self, trained_forest, test_rows):
        serial = compile_model(trained_forest).raw_predict(test_rows)
        parallel = compile_model(trained_forest, Schedule(parallel=4)).raw_predict(test_rows)
        assert np.allclose(serial, parallel, rtol=1e-12)

    def test_simulated_parallel(self, trained_forest, test_rows):
        p = compile_model(trained_forest)
        raw, seconds = p.predict_simulated_parallel(test_rows, cores=4)
        assert seconds > 0
        assert np.allclose(raw, trained_forest.raw_predict(test_rows), rtol=1e-12)

    def test_introspection(self, trained_forest):
        p = compile_model(trained_forest)
        assert "predict_block" in p.generated_source
        assert p.memory_bytes() > 0
        assert "group" in p.dump_ir()

    def test_convenience_predict(self, trained_forest, test_rows):
        got = predict(trained_forest, test_rows)
        assert np.allclose(got, trained_forest.predict(test_rows), rtol=1e-12)

    def test_empty_batch(self, trained_forest):
        p = compile_model(trained_forest)
        out = p.raw_predict(np.zeros((0, trained_forest.num_features)))
        assert out.shape == (0,)


class TestParallelRuntime:
    def test_row_blocks_cover(self):
        blocks = row_blocks(100, 7)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 100
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c

    def test_row_blocks_more_threads_than_rows(self):
        blocks = row_blocks(2, 8)
        assert len(blocks) == 2

    def test_parallel_predict_writes_disjoint(self):
        def kernel(rows, out):
            out[:] = rows.sum(axis=1, keepdims=True)

        rows = np.arange(20, dtype=np.float64).reshape(10, 2)
        out = np.zeros((10, 1))
        parallel_predict(kernel, rows, out, num_threads=3)
        assert np.allclose(out[:, 0], rows.sum(axis=1))

    def test_simulator_deterministic_result(self):
        def kernel(rows, out):
            out[:] = 1.0

        sim = MulticoreSimulator()
        rows = np.zeros((64, 2))
        out = np.zeros((64, 1))
        _, seconds = sim.run(kernel, rows, out, cores=4)
        assert (out == 1.0).all()
        assert seconds > 0

    def test_simulator_utilization_caps_cores(self):
        sim = MulticoreSimulator(utilization=0.25)
        calls = []

        def kernel(rows, out):
            calls.append(rows.shape[0])

        sim.run(kernel, np.zeros((64, 1)), np.zeros((64, 1)), cores=16)
        assert len(calls) == 4  # 16 * 0.25

    def test_row_blocks_zero_rows(self):
        assert row_blocks(0, 4) == []
        assert row_blocks(0, 1) == []

    def test_parallel_predict_zero_rows_skips_kernel(self):
        calls = []

        def kernel(rows, out):
            calls.append(rows.shape[0])

        out = np.zeros((0, 1))
        result = parallel_predict(kernel, np.zeros((0, 2)), out, num_threads=4)
        assert result is out
        assert calls == []

    def test_pool_is_persistent_across_calls(self):
        """Regression: parallel_predict must not spawn a pool per call."""

        def kernel(rows, out):
            out[:] = 1.0

        shutdown_pool()
        rows = np.zeros((32, 2))
        baseline = pool_stats()["pools_created"]
        for _ in range(5):
            parallel_predict(kernel, rows, np.zeros((32, 1)), num_threads=4)
        stats = pool_stats()
        assert stats["active"]
        assert stats["pools_created"] == baseline + 1  # one lazy creation, ever
        assert stats["workers"] >= 2

    def test_pool_reuses_worker_threads(self):
        """The same named worker threads service repeated calls."""
        import threading as _threading

        def kernel(rows, out):
            out[:] = rows.sum(axis=1, keepdims=True)

        shutdown_pool()
        rows = np.arange(64, dtype=np.float64).reshape(32, 2)
        parallel_predict(kernel, rows, np.zeros((32, 1)), num_threads=4)
        workers = {
            t.ident for t in _threading.enumerate()
            if t.name.startswith("repro-kernel")
        }
        assert workers
        for _ in range(4):
            parallel_predict(kernel, rows, np.zeros((32, 1)), num_threads=4)
        after = {
            t.ident for t in _threading.enumerate()
            if t.name.startswith("repro-kernel")
        }
        # Original workers survive every call (nothing is torn down per
        # call) and the population stays bounded by the pool's size.
        assert workers <= after
        assert len(after) <= pool_stats()["workers"]

    def test_pool_counts_submitted_tasks(self):
        def kernel(rows, out):
            out[:] = 0.0

        before = pool_stats()["tasks_submitted"]
        parallel_predict(kernel, np.zeros((30, 2)), np.zeros((30, 1)), num_threads=3)
        assert pool_stats()["tasks_submitted"] == before + 3

    def test_failure_waits_for_in_flight_siblings(self):
        """Regression: the first block's exception used to be re-raised while
        sibling tasks were still writing into ``out``. The exception must
        only surface after every sibling has settled."""
        import threading as _threading

        slow_started = _threading.Event()
        slow_finished = _threading.Event()

        def kernel(rows, out):
            if rows[0, 0] == 0:  # first block: fail, but only after the
                assert slow_started.wait(5.0)  # slow sibling is in flight
                raise ExecutionError("block zero exploded")
            slow_started.set()
            time.sleep(0.2)
            out[:] = 7.0
            slow_finished.set()

        rows = np.arange(12, dtype=np.float64).reshape(6, 2)
        out = np.zeros((6, 1))
        before = pool_stats()
        with pytest.raises(ExecutionError, match="block zero"):
            parallel_predict(kernel, rows, out, num_threads=2)
        # The slow sibling ran to completion *before* the raise reached us.
        assert slow_finished.is_set()
        assert (out[3:] == 7.0).all()
        after = pool_stats()
        delta_submitted = after["tasks_submitted"] - before["tasks_submitted"]
        settled = (
            (after["tasks_completed"] - before["tasks_completed"])
            + (after["tasks_failed"] - before["tasks_failed"])
            + (after["tasks_cancelled"] - before["tasks_cancelled"])
        )
        assert delta_submitted == 2
        assert settled == 2  # every submitted task is accounted for
        assert after["tasks_failed"] - before["tasks_failed"] == 1

    def test_failure_cancels_queued_siblings(self):
        """Blocks still sitting in the pool queue when an earlier block
        fails are cancelled, and the accounting invariant
        ``submitted == completed + failed + cancelled`` holds."""

        def kernel(rows, out):
            raise ExecutionError("every block fails")

        rows = np.arange(64, dtype=np.float64).reshape(32, 2)
        before = pool_stats()
        with pytest.raises(ExecutionError, match="every block"):
            parallel_predict(kernel, rows, np.zeros((32, 1)), num_threads=8)
        after = pool_stats()
        delta_submitted = after["tasks_submitted"] - before["tasks_submitted"]
        settled = (
            (after["tasks_completed"] - before["tasks_completed"])
            + (after["tasks_failed"] - before["tasks_failed"])
            + (after["tasks_cancelled"] - before["tasks_cancelled"])
        )
        assert delta_submitted == 8
        assert settled == 8
        assert after["tasks_failed"] - before["tasks_failed"] >= 1

    def test_shutdown_pool_allows_recreation(self):
        def kernel(rows, out):
            out[:] = 2.0

        shutdown_pool()
        assert not pool_stats()["active"]
        out = np.zeros((8, 1))
        parallel_predict(kernel, np.zeros((8, 2)), out, num_threads=2)
        assert (out == 2.0).all()
        assert pool_stats()["active"]

    def test_simulator_zero_rows(self):
        def kernel(rows, out):
            raise AssertionError("kernel must not run on empty input")

        sim = MulticoreSimulator()
        out, seconds = sim.run(kernel, np.zeros((0, 2)), np.zeros((0, 1)), cores=4)
        assert out.shape == (0, 1)
        assert seconds == 0.0
