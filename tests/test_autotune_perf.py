"""Unit tests for the autotuner, timer, and machine profiles."""

import numpy as np
import pytest

from repro.autotune import autotune, default_space, schedule_grid
from repro.autotune.space import TuningSpace
from repro.config import Schedule
from repro.perf.machine import AMD_RYZEN_LIKE, INTEL_ROCKET_LAKE_LIKE, PROFILES
from repro.perf.timer import measure, per_row_us


class TestSpace:
    def test_table2_grid_axes(self):
        space = default_space()
        assert space.tile_sizes == (1, 2, 4, 8)
        assert space.interleaves == (2, 4, 8)
        assert space.alphas == (0.05, 0.075, 0.1)

    def test_grid_size_matches_enumeration(self):
        space = default_space()
        assert sum(1 for _ in schedule_grid(space)) == space.size()

    def test_extended_space_is_larger(self):
        assert len(default_space(extended=True).interleaves) > 3

    def test_grid_respects_base(self):
        base = Schedule(parallel=4)
        for schedule in schedule_grid(TuningSpace(tile_sizes=(2,)), base):
            assert schedule.parallel == 4

    def test_alphas_only_for_hybrid(self):
        space = TuningSpace(tilings=("basic",), tile_sizes=(2,), interleaves=(2,),
                            pad_and_unroll=(True,), layouts=("sparse",))
        schedules = list(schedule_grid(space))
        assert len(schedules) == 1


class TestAutotune:
    def test_finds_working_config(self, trained_forest, test_rows):
        space = TuningSpace(
            tile_sizes=(1, 4), tilings=("basic",), pad_and_unroll=(True,),
            interleaves=(8,), layouts=("sparse",),
        )
        result = autotune(trained_forest, test_rows[:64], space=space, repeats=1)
        assert result.best_per_row_us > 0
        assert len(result.log) == 2
        got = result.best_predictor.raw_predict(test_rows[:32])
        assert np.allclose(got, trained_forest.raw_predict(test_rows[:32]), rtol=1e-12)

    def test_top_k_sorted(self, trained_forest, test_rows):
        space = TuningSpace(
            tile_sizes=(1, 2, 4), tilings=("basic",), pad_and_unroll=(True,),
            interleaves=(4,), layouts=("sparse",),
        )
        result = autotune(trained_forest, test_rows[:32], space=space, repeats=1)
        top = result.top(3)
        costs = [c for _, c in top]
        assert costs == sorted(costs)

    def test_max_configs_limits_exploration(self, trained_forest, test_rows):
        result = autotune(trained_forest, test_rows[:32], repeats=1, max_configs=3)
        assert len(result.log) == 3


class TestTimer:
    def test_measure_returns_positive(self):
        m = measure(lambda: sum(range(1000)), rows=10, repeats=2)
        assert m.seconds > 0
        assert m.per_row_us == pytest.approx(m.seconds / 10 * 1e6)

    def test_min_of_repeats(self):
        m = measure(lambda: None, rows=1, repeats=5)
        assert m.seconds == min(m.all_seconds)

    def test_per_row_us_helper(self):
        assert per_row_us(lambda: None, rows=100, repeats=2) >= 0.0


class TestMachineProfiles:
    def test_two_profiles_registered(self):
        assert set(PROFILES) == {"intel-rocket-lake-like", "amd-ryzen-like"}

    def test_intel_has_cheaper_gather(self):
        """The paper attributes Intel's edge to its gather implementation."""
        assert (
            INTEL_ROCKET_LAKE_LIKE.gather_cost_per_lane
            < AMD_RYZEN_LIKE.gather_cost_per_lane
        )

    def test_intel_wider_vectors(self):
        assert INTEL_ROCKET_LAKE_LIKE.vector_lanes_f64 > AMD_RYZEN_LIKE.vector_lanes_f64

    def test_lane_computation(self):
        assert INTEL_ROCKET_LAKE_LIKE.vector_lanes_f64 == 8
        assert AMD_RYZEN_LIKE.vector_lanes_f64 == 4
