"""Unit tests for the autotuner, cost model, persistence, timer, and
machine profiles."""

import gc
import weakref

import numpy as np
import pytest

import repro.autotune.search as search_mod
from repro.autotune import (
    CacheEntry,
    ForestProfile,
    ScheduleCache,
    autotune,
    default_space,
    predict_cost,
    rank_correlation,
    rank_schedules,
    schedule_grid,
)
from repro.autotune.persist import CACHE_FORMAT_VERSION, machine_id
from repro.autotune.space import TuningSpace
from repro.config import Schedule
from repro.errors import CompilerError, ModelError
from repro.perf.machine import AMD_RYZEN_LIKE, INTEL_ROCKET_LAKE_LIKE, PROFILES
from repro.perf.timer import measure, per_row_us

#: a tiny space for fast searches (4 candidates)
SMALL_SPACE = TuningSpace(
    tile_sizes=(1, 8), tilings=("basic",), pad_and_unroll=(True,),
    interleaves=(2, 8), layouts=("sparse",),
)


class TestSpace:
    def test_table2_grid_axes(self):
        space = default_space()
        assert space.tile_sizes == (1, 2, 4, 8)
        assert space.interleaves == (2, 4, 8)
        assert space.alphas == (0.05, 0.075, 0.1)

    def test_grid_size_matches_enumeration(self):
        space = default_space()
        assert sum(1 for _ in schedule_grid(space)) == space.size()

    def test_extended_space_is_larger(self):
        assert len(default_space(extended=True).interleaves) > 3

    def test_grid_respects_base(self):
        base = Schedule(parallel=4)
        for schedule in schedule_grid(TuningSpace(tile_sizes=(2,)), base):
            assert schedule.parallel == 4

    def test_alphas_only_for_hybrid(self):
        space = TuningSpace(tilings=("basic",), tile_sizes=(2,), interleaves=(2,),
                            pad_and_unroll=(True,), layouts=("sparse",))
        schedules = list(schedule_grid(space))
        assert len(schedules) == 1


class TestAutotune:
    def test_finds_working_config(self, trained_forest, test_rows):
        space = TuningSpace(
            tile_sizes=(1, 4), tilings=("basic",), pad_and_unroll=(True,),
            interleaves=(8,), layouts=("sparse",),
        )
        result = autotune(trained_forest, test_rows[:64], space=space, repeats=1)
        assert result.best_per_row_us > 0
        assert len(result.log) == 2
        got = result.best_predictor.raw_predict(test_rows[:32])
        assert np.allclose(got, trained_forest.raw_predict(test_rows[:32]), rtol=1e-12)

    def test_top_k_sorted(self, trained_forest, test_rows):
        space = TuningSpace(
            tile_sizes=(1, 2, 4), tilings=("basic",), pad_and_unroll=(True,),
            interleaves=(4,), layouts=("sparse",),
        )
        result = autotune(trained_forest, test_rows[:32], space=space, repeats=1)
        top = result.top(3)
        costs = [c for _, c in top]
        assert costs == sorted(costs)

    def test_max_configs_limits_exploration(self, trained_forest, test_rows):
        result = autotune(trained_forest, test_rows[:32], repeats=1, max_configs=3)
        assert len(result.log) == 3


class TestCostModel:
    def test_predict_cost_positive_over_grid(self, trained_forest):
        for schedule in schedule_grid(default_space()):
            assert predict_cost(trained_forest, schedule, 64) > 0

    def test_profile_from_forest(self, trained_forest):
        profile = ForestProfile.from_forest(trained_forest)
        assert profile.num_trees == trained_forest.num_trees
        assert profile.total_nodes == trained_forest.total_nodes
        assert 0.0 < profile.mean_depth <= profile.max_depth
        assert 0.0 <= profile.balanced_fraction <= 1.0
        # expected depth is a reweighting of leaf depths, so it stays in range
        assert 0.0 < profile.expected_depth <= profile.max_depth

    def test_profile_accepted_directly(self, trained_forest):
        profile = ForestProfile.from_forest(trained_forest)
        s = Schedule()
        assert predict_cost(profile, s, 32) == predict_cost(trained_forest, s, 32)

    def test_rank_schedules_sorted(self, trained_forest):
        grid = list(schedule_grid(default_space()))
        ranked = rank_schedules(trained_forest, grid, 64)
        costs = [c for c, _ in ranked]
        assert costs == sorted(costs)
        assert len(ranked) == len(grid)

    def test_interleave_amortizes_dispatch(self, trained_forest):
        wide = predict_cost(trained_forest, Schedule(interleave=8), 64)
        narrow = predict_cost(trained_forest, Schedule(interleave=1), 64)
        assert wide < narrow

    def test_one_row_order_penalized(self, trained_forest):
        one_row = predict_cost(trained_forest, Schedule(loop_order="one-row"), 64)
        one_tree = predict_cost(trained_forest, Schedule(loop_order="one-tree"), 64)
        assert one_row > one_tree

    def test_machine_profiles_disagree_on_gathers(self, trained_forest):
        s = Schedule(tile_size=8)
        intel = predict_cost(trained_forest, s, 64, INTEL_ROCKET_LAKE_LIKE)
        amd = predict_cost(trained_forest, s, 64, AMD_RYZEN_LIKE)
        assert intel != amd

    def test_rank_correlation_perfect(self):
        assert rank_correlation([1.0, 2.0, 3.0, 4.0], [10.0, 20.0, 30.0, 40.0]) == pytest.approx(1.0)

    def test_rank_correlation_reversed(self):
        assert rank_correlation([1.0, 2.0, 3.0], [9.0, 5.0, 1.0]) == pytest.approx(-1.0)

    def test_rank_correlation_too_few_pairs(self):
        assert rank_correlation([1.0, 2.0], [1.0, 2.0]) is None

    def test_rank_correlation_excludes_failed_compiles(self):
        # Two of four measurements are inf (failed candidates): only two
        # finite pairs remain, which is below the meaningful threshold.
        inf = float("inf")
        assert rank_correlation([1.0, 2.0, 3.0, 4.0], [1.0, inf, 3.0, inf]) is None

    def test_rank_correlation_zero_variance(self):
        assert rank_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0


class TestPersist:
    def test_round_trip_across_instances(self, tmp_path):
        path = str(tmp_path / "schedules.json")
        entry = CacheEntry(
            schedule=Schedule(tile_size=4, interleave=2),
            per_row_us=12.5,
            explored=7,
            rank_correlation=0.9,
        )
        ScheduleCache(path).store("fp", "m", 64, entry)
        reloaded = ScheduleCache(path).lookup("fp", "m", 64)
        assert reloaded is not None
        assert reloaded.schedule == entry.schedule
        assert reloaded.per_row_us == 12.5
        assert reloaded.explored == 7
        assert reloaded.rank_correlation == 0.9

    def test_lookup_misses_are_none(self, tmp_path):
        cache = ScheduleCache(str(tmp_path / "s.json"))
        assert cache.lookup("fp", "m", 64) is None
        cache.store("fp", "m", 64, CacheEntry(Schedule(), 1.0))
        assert cache.lookup("fp", "m", 128) is None
        assert cache.lookup("fp", "other", 64) is None

    def test_corrupt_file_starts_empty(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text("{not json")
        cache = ScheduleCache(str(path))
        assert len(cache) == 0
        # next save repairs the file
        cache.store("fp", "m", 8, CacheEntry(Schedule(), 1.0))
        assert len(ScheduleCache(str(path))) == 1

    def test_version_mismatch_discards_file(self, tmp_path):
        import json

        path = tmp_path / "s.json"
        good = CacheEntry(Schedule(), 1.0)
        doc = {
            "version": CACHE_FORMAT_VERSION + 1,
            "entries": {"fp|m|8": good.to_dict()},
        }
        path.write_text(json.dumps(doc))
        assert len(ScheduleCache(str(path))) == 0

    def test_unknown_schedule_field_discards_entry_only(self, tmp_path):
        import json

        path = tmp_path / "s.json"
        good = CacheEntry(Schedule(), 1.0).to_dict()
        bad = CacheEntry(Schedule(), 2.0).to_dict()
        bad["schedule"]["warp_drive"] = True  # knob from a future version
        doc = {
            "version": CACHE_FORMAT_VERSION,
            "entries": {"a|m|8": good, "b|m|8": bad},
        }
        path.write_text(json.dumps(doc))
        cache = ScheduleCache(str(path))
        assert cache.lookup("a", "m", 8) is not None
        assert cache.lookup("b", "m", 8) is None

    def test_invalidate_by_model_and_machine(self, tmp_path):
        cache = ScheduleCache(str(tmp_path / "s.json"))
        cache.store("fp", "m1", 8, CacheEntry(Schedule(), 1.0))
        cache.store("fp", "m2", 8, CacheEntry(Schedule(), 1.0))
        cache.store("other", "m1", 8, CacheEntry(Schedule(), 1.0))
        assert cache.invalidate("fp", "m1") == 1
        assert cache.lookup("fp", "m2", 8) is not None
        assert cache.invalidate("fp") == 1
        assert cache.lookup("other", "m1", 8) is not None

    def test_in_memory_cache_without_path(self):
        cache = ScheduleCache(None)
        cache.store("fp", "m", 8, CacheEntry(Schedule(), 1.0))
        assert cache.lookup("fp", "m", 8) is not None

    def test_machine_id_partitions_by_profile(self):
        assert machine_id("intel") != machine_id("amd")
        assert machine_id("intel").endswith("-intel")


class _FakeMeasurement:
    def __init__(self, per_row_us):
        self.per_row_us = per_row_us


class TestBudget:
    def test_min_time_s_plumbed_to_measure(self, trained_forest, test_rows, monkeypatch):
        seen = []

        def spy(fn, rows, repeats=5, warmup=1, min_time_s=0.0):
            seen.append(min_time_s)
            return measure(fn, rows, repeats=1, min_time_s=min_time_s)

        monkeypatch.setattr(search_mod, "measure", spy)
        autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.007,
        )
        assert seen and all(value == 0.007 for value in seen)

    def test_time_budget_stops_after_first_candidate(self, trained_forest, test_rows):
        result = autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0, time_budget_s=0.0,
        )
        assert result.explored == 1
        assert result.stopped_by == "time"

    def test_patience_stops_nonimproving_run(self, trained_forest, test_rows, monkeypatch):
        per_row = iter([1.0, 2.0, 3.0, 4.0])

        def spy(fn, rows, repeats=5, warmup=1, min_time_s=0.0):
            fn()  # still exercise the compiled kernel once
            return _FakeMeasurement(next(per_row))

        monkeypatch.setattr(search_mod, "measure", spy)
        result = autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, patience=2,
        )
        assert result.explored == 3  # winner + two stale candidates
        assert result.stopped_by == "patience"
        assert result.best_per_row_us == 1.0

    def test_max_configs_reports_stop_reason(self, trained_forest, test_rows):
        result = autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0, max_configs=2,
        )
        assert result.explored == 2
        assert result.stopped_by == "max_configs"
        assert result.grid_size == 4

    def test_exhaustive_run_has_no_stop_reason(self, trained_forest, test_rows):
        result = autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0,
        )
        assert result.stopped_by is None
        assert result.explored == result.grid_size == 4

    def test_warm_start_compiles_only_the_winner(
        self, trained_forest, test_rows, tmp_path, monkeypatch
    ):
        cache = ScheduleCache(str(tmp_path / "s.json"))
        first = autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0, cache=cache,
        )
        assert not first.from_cache and first.explored == 4

        calls = []
        real = search_mod.compile_model

        def spy(forest, schedule, **kwargs):
            calls.append(schedule)
            return real(forest, schedule, **kwargs)

        monkeypatch.setattr(search_mod, "compile_model", spy)
        second = autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0, cache=cache,
        )
        assert second.from_cache
        assert second.explored == 0
        assert calls == [first.best_schedule]
        got = second.best_predictor.raw_predict(test_rows[:16])
        assert np.allclose(got, trained_forest.raw_predict(test_rows[:16]), rtol=1e-12)

    def test_stale_cache_entry_invalidated_and_researched(
        self, trained_forest, test_rows, tmp_path, monkeypatch
    ):
        from repro.autotune.persist import machine_id as mid
        from repro.backend.jit import model_fingerprint

        cache = ScheduleCache(str(tmp_path / "s.json"))
        poisoned = Schedule(alpha=0.31)  # marker value, not in the grid
        fp = model_fingerprint(trained_forest)
        machine = mid(INTEL_ROCKET_LAKE_LIKE.name)
        cache.store(fp, machine, 16, CacheEntry(poisoned, 1.0))

        real = search_mod.compile_model

        def spy(forest, schedule, **kwargs):
            if schedule.alpha == 0.31:
                raise CompilerError("poisoned entry no longer compiles")
            return real(forest, schedule, **kwargs)

        monkeypatch.setattr(search_mod, "compile_model", spy)
        result = autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0, cache=cache,
        )
        assert not result.from_cache
        assert result.explored == 4
        stored = cache.lookup(fp, machine, 16)
        assert stored is not None and stored.schedule == result.best_schedule


class TestEdgePaths:
    def test_all_candidates_failing_raises(self, trained_forest, test_rows, monkeypatch):
        def boom(forest, schedule, **kwargs):
            raise CompilerError("nothing compiles today")

        monkeypatch.setattr(search_mod, "compile_model", boom)
        with pytest.raises(CompilerError, match="no schedule in the grid"):
            autotune(
                trained_forest, test_rows[:16], space=SMALL_SPACE,
                repeats=1, min_time_s=0.0,
            )

    def test_max_configs_zero_without_cache_raises(self, trained_forest, test_rows):
        with pytest.raises(CompilerError, match="max_configs=0"):
            autotune(trained_forest, test_rows[:16], repeats=1, max_configs=0)

    def test_max_configs_zero_with_persisted_winner(
        self, trained_forest, test_rows, tmp_path
    ):
        cache = ScheduleCache(str(tmp_path / "s.json"))
        autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0, cache=cache,
        )
        result = autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0, max_configs=0, cache=cache,
        )
        assert result.from_cache

    def test_empty_sample_batch_raises(self, trained_forest):
        with pytest.raises(ModelError, match="non-empty"):
            autotune(trained_forest, np.empty((0, trained_forest.num_features)))

    def test_one_dimensional_rows_raise(self, trained_forest):
        with pytest.raises(ModelError, match="2-D"):
            autotune(trained_forest, np.zeros(trained_forest.num_features))

    def test_single_row_batch_works(self, trained_forest, test_rows):
        result = autotune(
            trained_forest, test_rows[:1], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0,
        )
        got = result.best_predictor.raw_predict(test_rows[:1])
        assert np.allclose(got, trained_forest.raw_predict(test_rows[:1]), rtol=1e-12)


class TestEagerDrop:
    def test_peak_live_predictors_bounded(self, trained_forest, test_rows, monkeypatch):
        """Losers are dropped before the next candidate compiles: at most the
        incumbent winner is alive when a new compile starts."""
        refs = []
        peak = []
        real = search_mod.compile_model

        def spy(forest, schedule, **kwargs):
            gc.collect()
            peak.append(sum(1 for r in refs if r() is not None))
            predictor = real(forest, schedule, **kwargs)
            refs.append(weakref.ref(predictor))
            return predictor

        monkeypatch.setattr(search_mod, "compile_model", spy)
        result = autotune(
            trained_forest, test_rows[:16], space=SMALL_SPACE,
            repeats=1, min_time_s=0.0,
        )
        assert len(peak) == 4
        assert max(peak) <= 1  # only the incumbent survives between compiles
        # and the log keeps scalars, not predictors
        for schedule, cost in result.log:
            assert isinstance(schedule, Schedule)
            assert isinstance(cost, float)
        del result


class TestTimer:
    def test_measure_returns_positive(self):
        m = measure(lambda: sum(range(1000)), rows=10, repeats=2)
        assert m.seconds > 0
        assert m.per_row_us == pytest.approx(m.seconds / 10 * 1e6)

    def test_min_of_repeats(self):
        m = measure(lambda: None, rows=1, repeats=5)
        assert m.seconds == min(m.all_seconds)

    def test_per_row_us_helper(self):
        assert per_row_us(lambda: None, rows=100, repeats=2) >= 0.0


class TestMachineProfiles:
    def test_two_profiles_registered(self):
        assert set(PROFILES) == {"intel-rocket-lake-like", "amd-ryzen-like"}

    def test_intel_has_cheaper_gather(self):
        """The paper attributes Intel's edge to its gather implementation."""
        assert (
            INTEL_ROCKET_LAKE_LIKE.gather_cost_per_lane
            < AMD_RYZEN_LIKE.gather_cost_per_lane
        )

    def test_intel_wider_vectors(self):
        assert INTEL_ROCKET_LAKE_LIKE.vector_lanes_f64 > AMD_RYZEN_LIKE.vector_lanes_f64

    def test_lane_computation(self):
        assert INTEL_ROCKET_LAKE_LIKE.vector_lanes_f64 == 8
        assert AMD_RYZEN_LIKE.vector_lanes_f64 == 4
