"""Unit tests for synthetic datasets and the Table-I benchmark registry."""

import numpy as np
import pytest

from repro.datasets import (
    BENCHMARKS,
    fresh_rows,
    generate_dataset,
    get_benchmark,
    load_benchmark_model,
    train_benchmark,
)
from repro.errors import ModelError
from repro.forest.statistics import count_leaf_biased


class TestGenerator:
    def test_shapes(self):
        X, y = generate_dataset(100, 5)
        assert X.shape == (100, 5)
        assert y.shape == (100,)

    @pytest.mark.parametrize("kind", ["normal", "uniform", "onehot", "skewed", "mixed"])
    def test_feature_kinds(self, kind):
        X, _ = generate_dataset(50, 6, feature_kind=kind, seed=1)
        assert np.isfinite(X).all()

    def test_onehot_is_binary(self):
        X, _ = generate_dataset(200, 10, feature_kind="onehot")
        assert set(np.unique(X)) <= {0.0, 1.0}

    def test_binary_labels(self):
        _, y = generate_dataset(100, 5, objective="binary:logistic")
        assert set(np.unique(y)) <= {0.0, 1.0}

    def test_multiclass_labels(self):
        _, y = generate_dataset(300, 5, objective="multiclass", num_classes=4)
        assert set(np.unique(y)) == {0.0, 1.0, 2.0, 3.0}

    def test_deterministic_by_seed(self):
        a = generate_dataset(50, 4, seed=7)[0]
        b = generate_dataset(50, 4, seed=7)[0]
        assert np.array_equal(a, b)

    def test_prototypes_create_duplicates(self):
        X, _ = generate_dataset(
            400, 6, prototype_fraction=0.9, prototype_count=4, seed=0
        )
        _, counts = np.unique(X, axis=0, return_counts=True)
        assert counts.max() > 10  # heavy hitters exist

    def test_weighted_mode_returns_weights(self):
        X, y, w = generate_dataset(
            100, 6, prototype_fraction=0.9, prototype_count=4, weighted=True, seed=0
        )
        assert X.shape[0] == y.shape[0] == w.shape[0]
        assert X.shape[0] > 100  # diffuse rows + prototype clusters
        # Prototype mass dominates: total weight ~ rows / (1 - q).
        assert w.sum() == pytest.approx(100 / 0.1, rel=0.01)

    def test_weighted_mode_without_prototypes(self):
        X, y, w = generate_dataset(50, 4, weighted=True)
        assert (w == 1.0).all()

    def test_bad_args_rejected(self):
        with pytest.raises(ModelError):
            generate_dataset(0, 5)
        with pytest.raises(ModelError):
            generate_dataset(10, 5, feature_kind="categorical")
        with pytest.raises(ModelError):
            generate_dataset(10, 5, prototype_fraction=1.5)
        with pytest.raises(ModelError):
            generate_dataset(10, 5, objective="multiclass", num_classes=1)


class TestRegistry:
    def test_all_table1_benchmarks_present(self):
        assert set(BENCHMARKS) == {
            "abalone", "airline", "airline-ohe", "covtype",
            "epsilon", "letter", "higgs", "year",
        }

    def test_table1_parameters(self):
        spec = get_benchmark("abalone")
        assert (spec.num_features, spec.num_trees, spec.max_depth) == (8, 1000, 7)
        spec = get_benchmark("epsilon")
        assert (spec.num_features, spec.num_trees, spec.max_depth) == (2000, 100, 9)

    def test_unknown_rejected(self):
        with pytest.raises(ModelError):
            get_benchmark("mnist")

    def test_train_scaled_model(self):
        forest, X = train_benchmark("airline", scale=0.05, seed=0)
        assert forest.num_trees == 5
        assert forest.max_depth <= 9
        assert forest.trees[0].node_probability is not None

    def test_multiclass_benchmark_rounds(self):
        forest, _ = train_benchmark("letter", scale=0.02, seed=0)
        assert forest.num_classes == 26
        assert forest.num_trees == 2 * 26

    def test_leaf_bias_character(self):
        """Unbiased benchmarks must stay unbiased even at small scale."""
        forest, _ = train_benchmark("year", scale=0.05, seed=0)
        assert count_leaf_biased(forest, 0.075, 0.9) == 0

    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        f1, _ = load_benchmark_model("airline", scale=0.03, seed=1)
        f2, _ = load_benchmark_model("airline", scale=0.03, seed=1)
        rows = fresh_rows("airline", 16)
        assert np.allclose(f1.raw_predict(rows), f2.raw_predict(rows))

    def test_fresh_rows_shape(self):
        rows = fresh_rows("higgs", 32)
        assert rows.shape == (32, 28)
