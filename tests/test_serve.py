"""Tests for the serving layer: cache, micro-batching, fallback, metrics."""

import math
import threading
import time

import numpy as np
import pytest

from conftest import random_forest_model
from repro.api import serve_model
from repro.config import Schedule
from repro.errors import CodegenError, ExecutionError, ServingError
from repro.forest.ensemble import Forest
from repro.serve import (
    BatchingPolicy,
    InferenceSession,
    MicroBatcher,
    ModelServer,
    PredictorCache,
    ServerConfig,
    ServingMetrics,
)


@pytest.fixture(scope="module")
def small_forest():
    return random_forest_model(
        np.random.default_rng(42), num_trees=5, max_depth=4, num_features=6
    )


@pytest.fixture(scope="module")
def small_rows():
    return np.random.default_rng(43).normal(size=(48, 6))


def distinct_forest(seed: int) -> Forest:
    return random_forest_model(
        np.random.default_rng(seed), num_trees=3, max_depth=3, num_features=6
    )


# ----------------------------------------------------------------------
# Predictor cache
# ----------------------------------------------------------------------
class TestPredictorCache:
    def test_second_registration_is_cache_hit(self, small_forest, small_rows):
        """Acceptance: a fingerprint-identical model must not recompile."""
        metrics = ServingMetrics()
        cache = PredictorCache(metrics=metrics)
        first = InferenceSession(small_forest, cache=cache, metrics=metrics)
        assert not first.cache_hit
        # A structurally identical model (serialize/deserialize round trip).
        clone = Forest.from_dict(small_forest.to_dict())
        second = InferenceSession(clone, cache=cache, metrics=metrics)
        assert second.cache_hit
        assert second.predictor is first.predictor
        snap = metrics.snapshot()
        assert snap["compiles"] == 1
        assert snap["cache_hits"] == 1
        assert snap["cache_misses"] == 1
        got = second.raw_predict(small_rows)
        assert np.allclose(got, small_forest.raw_predict(small_rows), rtol=1e-12)

    def test_different_schedule_is_cache_miss(self, small_forest):
        metrics = ServingMetrics()
        cache = PredictorCache(metrics=metrics)
        InferenceSession(small_forest, Schedule(tile_size=4), cache=cache, metrics=metrics)
        InferenceSession(small_forest, Schedule(tile_size=2), cache=cache, metrics=metrics)
        assert metrics.snapshot()["compiles"] == 2

    def test_lru_eviction_bounds_cache(self):
        metrics = ServingMetrics()
        cache = PredictorCache(capacity=2, metrics=metrics)
        for seed in range(5):
            InferenceSession(distinct_forest(seed), cache=cache, metrics=metrics)
        assert len(cache) <= 2
        assert metrics.snapshot()["cache_evictions"] == 3

    def test_lru_keeps_recently_used(self):
        cache = PredictorCache(capacity=2)
        a, _ = cache.get_or_compile("a", lambda: "A")
        cache.get_or_compile("b", lambda: "B")
        cache.get_or_compile("a", lambda: "A2")  # refresh a
        cache.get_or_compile("c", lambda: "C")  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_compile_error_not_cached(self):
        cache = PredictorCache()
        calls = []

        def failing():
            calls.append(1)
            raise CodegenError("boom")

        with pytest.raises(CodegenError):
            cache.get_or_compile("k", failing)
        # The failure must not poison the key: the next attempt retries.
        value, hit = cache.get_or_compile("k", lambda: "ok")
        assert value == "ok" and not hit and len(calls) == 1

    def test_followers_wake_before_leader_metrics(self):
        """Regression: the leader used to record metrics *before* setting the
        in-flight event, so a slow metrics sink stretched how long followers
        blocked. Followers must observe the result while the leader is still
        stuck inside ``record_cache(hit=False)``."""
        leader_in_metrics = threading.Event()
        follower_done = threading.Event()

        class BlockingMetrics(ServingMetrics):
            def record_cache(self, hit: bool) -> None:
                super().record_cache(hit)
                if not hit:
                    leader_in_metrics.set()
                    assert follower_done.wait(5.0), (
                        "follower never completed while leader sat in metrics"
                    )

        cache = PredictorCache(metrics=BlockingMetrics())
        follower_may_start = threading.Event()

        def compile_fn():
            follower_may_start.set()
            time.sleep(0.05)  # let the follower reach event.wait()
            return "predictor"

        results = {}

        def leader():
            results["leader"] = cache.get_or_compile("k", compile_fn)

        def follower():
            assert follower_may_start.wait(5.0)
            results["follower"] = cache.get_or_compile(
                "k", lambda: pytest.fail("follower must not compile")
            )
            follower_done.set()

        threads = [threading.Thread(target=leader), threading.Thread(target=follower)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)
        assert leader_in_metrics.is_set()
        assert results["leader"] == ("predictor", False)
        assert results["follower"] == ("predictor", True)

    def test_invalidate_and_clear(self):
        cache = PredictorCache()
        cache.get_or_compile("k", lambda: "v")
        assert cache.invalidate("k")
        assert not cache.invalidate("k")
        cache.get_or_compile("k", lambda: "v")
        cache.clear()
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Micro-batching
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_concurrent_requests_coalesce(self, small_forest, small_rows):
        """Acceptance: queued requests execute as one coalesced batch."""
        session = InferenceSession(
            small_forest,
            batching=BatchingPolicy(max_delay_s=0.05, max_batch_rows=100_000),
        )
        inner = session._batcher.run_batch
        first_entered = threading.Event()
        release = threading.Event()
        batch_sizes = []

        def gated(rows):
            # Block the worker inside batch #1 so later submissions pile up
            # in the queue and must coalesce into batch #2.
            if not first_entered.is_set():
                first_entered.set()
                assert release.wait(5.0)
            batch_sizes.append(rows.shape[0])
            return inner(rows)

        session._batcher.run_batch = gated
        chunks = [small_rows[i * 8 : (i + 1) * 8] for i in range(6)]
        futures = [session.submit(chunks[0])]
        assert first_entered.wait(5.0)
        futures += [session.submit(chunk) for chunk in chunks[1:]]
        release.set()
        results = [f.result(timeout=5.0) for f in futures]
        session.close()
        for chunk, got in zip(chunks, results):
            assert np.allclose(got, small_forest.raw_predict(chunk), rtol=1e-12)
        assert batch_sizes[0] == 8
        assert batch_sizes[1] == 40  # five 8-row requests in one kernel batch
        hist = session.metrics.snapshot()["batch_requests_hist"]
        assert hist.get(5) == 1

    def test_max_batch_rows_respected(self):
        executed = []

        def run(rows):
            executed.append(rows.shape[0])
            return rows.sum(axis=1)

        with MicroBatcher(run, BatchingPolicy(max_batch_rows=4, max_delay_s=0.2)) as b:
            gate = threading.Event()
            b.run_batch = lambda rows: (gate.wait(5.0), run(rows))[1]
            futures = [b.submit(np.ones((2, 3))) for _ in range(4)]
            gate.set()
            for f in futures:
                f.result(timeout=5.0)
        # First batch absorbed the first request; subsequent batches stop
        # coalescing at >= 4 rows.
        assert all(n <= 4 for n in executed)
        assert sum(executed) == 8

    def test_error_propagates_to_all_requests(self):
        def run(rows):
            raise ExecutionError("kernel exploded")

        with MicroBatcher(run, BatchingPolicy(max_delay_s=0.01)) as b:
            futures = [b.submit(np.ones((1, 2))) for _ in range(3)]
            for f in futures:
                with pytest.raises(ExecutionError, match="exploded"):
                    f.result(timeout=5.0)

    def test_queue_backpressure(self):
        release = threading.Event()

        def run(rows):
            release.wait(5.0)
            return rows.sum(axis=1)

        b = MicroBatcher(
            run,
            BatchingPolicy(queue_depth=1, max_delay_s=0.0, submit_timeout_s=0.05),
        )
        try:
            b.submit(np.ones((1, 2)))  # worker picks this up and blocks
            time.sleep(0.05)
            b.submit(np.ones((1, 2)))  # sits in the queue (depth 1)
            with pytest.raises(ServingError, match="full"):
                b.submit(np.ones((1, 2)))
        finally:
            release.set()
            b.close()

    def test_closed_batcher_rejects(self):
        b = MicroBatcher(lambda rows: rows.sum(axis=1))
        b.close()
        with pytest.raises(ServingError, match="closed"):
            b.submit(np.ones((1, 2)))

    def test_zero_row_submit(self):
        with MicroBatcher(lambda rows: rows.sum(axis=1)) as b:
            out = b.submit(np.zeros((0, 3))).result(timeout=5.0)
            assert out.shape == (0,)

    def test_empty_batch_runs_on_worker_thread(self):
        """Regression: the empty-batch fast path used to call ``run_batch``
        inline on the submitting thread, violating the worker-thread-only
        contract (run_batch may touch thread-local scratch arenas)."""
        seen_threads = []

        def run(rows):
            seen_threads.append(threading.current_thread().name)
            return rows.sum(axis=1)

        with MicroBatcher(run, name="assert-worker") as b:
            out = b.submit(np.zeros((0, 3))).result(timeout=5.0)
            assert out.shape == (0,)
            out = b.submit(np.ones((2, 3))).result(timeout=5.0)
            assert out.shape == (2,)
        assert seen_threads  # empty submit still reached run_batch
        assert all(name == "assert-worker" for name in seen_threads)
        assert threading.current_thread().name not in seen_threads


# ----------------------------------------------------------------------
# Fallback
# ----------------------------------------------------------------------
class TestFallback:
    def test_codegen_failure_falls_back_to_interpreter(
        self, small_forest, small_rows, monkeypatch
    ):
        """Acceptance: injected CodegenError -> interpreter serves correct
        predictions and the fallback metric increments."""
        import repro.serve.session as session_mod

        def exploding_compile(*args, **kwargs):
            raise CodegenError("injected codegen failure")

        monkeypatch.setattr(session_mod, "compile_model", exploding_compile)
        session = InferenceSession(small_forest)
        assert session.used_fallback
        assert type(session.predictor).__name__ == "InterpreterPredictor"
        assert "injected" in str(session.fallback_error)
        got = session.raw_predict(small_rows)
        assert np.allclose(got, small_forest.raw_predict(small_rows), rtol=1e-12)
        assert session.metrics.snapshot()["fallbacks"] == 1

    def test_lowering_failure_falls_back_to_reference(
        self, small_forest, small_rows, monkeypatch
    ):
        import repro.serve.session as session_mod

        def exploding(*args, **kwargs):
            raise CodegenError("injected")

        monkeypatch.setattr(session_mod, "compile_model", exploding)
        monkeypatch.setattr(session_mod, "_lower_only", exploding)
        session = InferenceSession(small_forest)
        assert type(session.predictor).__name__ == "ReferencePredictor"
        got = session.raw_predict(small_rows)
        assert np.allclose(got, small_forest.raw_predict(small_rows), rtol=1e-12)

    def test_fallback_can_be_disabled(self, small_forest, monkeypatch):
        import repro.serve.session as session_mod

        def exploding(*args, **kwargs):
            raise CodegenError("injected")

        monkeypatch.setattr(session_mod, "compile_model", exploding)
        with pytest.raises(CodegenError):
            InferenceSession(small_forest, allow_fallback=False)

    def test_fallback_respects_nan_validation(self, small_forest, monkeypatch):
        import repro.serve.session as session_mod

        monkeypatch.setattr(
            session_mod,
            "compile_model",
            lambda *a, **k: (_ for _ in ()).throw(CodegenError("injected")),
        )
        session = InferenceSession(small_forest)
        bad = np.zeros((2, small_forest.num_features))
        bad[0, 0] = np.nan
        with pytest.raises(ExecutionError, match="NaN"):
            session.raw_predict(bad)

    def test_fallback_through_batcher(self, small_forest, small_rows, monkeypatch):
        import repro.serve.session as session_mod

        monkeypatch.setattr(
            session_mod,
            "compile_model",
            lambda *a, **k: (_ for _ in ()).throw(CodegenError("injected")),
        )
        with InferenceSession(small_forest, batching=BatchingPolicy()) as session:
            got = session.raw_predict(small_rows[:8])
            assert np.allclose(got, small_forest.raw_predict(small_rows[:8]), rtol=1e-12)


# ----------------------------------------------------------------------
# Sessions and server
# ----------------------------------------------------------------------
class TestInferenceSession:
    def test_predict_applies_objective(self, binary_forest, test_rows):
        session = InferenceSession(binary_forest)
        probs = session.predict(test_rows)
        assert np.allclose(probs, binary_forest.predict(test_rows), rtol=1e-12)

    def test_zero_rows(self, small_forest):
        session = InferenceSession(small_forest)
        out = session.raw_predict(np.zeros((0, small_forest.num_features)))
        assert out.shape == (0,)

    def test_threads_override_matches_serial(self, small_forest, small_rows):
        serial = InferenceSession(small_forest).raw_predict(small_rows)
        threaded = InferenceSession(small_forest, threads=4).raw_predict(small_rows)
        assert np.array_equal(serial, threaded)

    def test_request_metrics_recorded(self, small_forest, small_rows):
        session = InferenceSession(small_forest)
        session.raw_predict(small_rows)
        session.raw_predict(small_rows[:7])
        snap = session.metrics.snapshot()
        assert snap["requests"] == 2
        assert snap["rows"] == small_rows.shape[0] + 7
        assert snap["latency"]["count"] == 2
        assert snap["latency"]["p50"] is not None
        assert snap["latency"]["p99"] >= snap["latency"]["p50"]

    def test_error_metric_recorded(self, small_forest):
        session = InferenceSession(small_forest)
        with pytest.raises(ExecutionError):
            session.raw_predict(np.zeros((3, 99)))
        assert session.metrics.snapshot()["errors"] == 1

    def test_submit_requires_batching(self, small_forest):
        session = InferenceSession(small_forest)
        with pytest.raises(ServingError, match="batching"):
            session.submit(np.zeros((1, small_forest.num_features)))

    def test_serve_model_convenience(self, small_forest, small_rows):
        session = serve_model(small_forest, Schedule(tile_size=4))
        got = session.raw_predict(small_rows)
        assert np.allclose(got, small_forest.raw_predict(small_rows), rtol=1e-12)


class TestModelServer:
    def test_register_predict_unregister(self, small_forest, small_rows):
        with ModelServer() as server:
            server.register("m", small_forest)
            assert "m" in server
            got = server.raw_predict("m", small_rows)
            assert np.allclose(got, small_forest.raw_predict(small_rows), rtol=1e-12)
            server.unregister("m")
            assert "m" not in server
            with pytest.raises(ServingError, match="no model"):
                server.predict("m", small_rows)

    def test_isomorphic_models_share_predictor(self, small_forest):
        with ModelServer() as server:
            s1 = server.register("a", small_forest)
            s2 = server.register("b", Forest.from_dict(small_forest.to_dict()))
            assert s2.cache_hit and s1.predictor is s2.predictor
            snap = server.metrics_snapshot()
            assert snap["compiles"] == 1
            assert snap["models_registered"] == 2
            assert snap["predictors_resident"] == 1

    def test_reregister_name_replaces_session(self, small_forest):
        with ModelServer() as server:
            server.register("m", small_forest, Schedule(tile_size=2))
            replaced = server.register("m", small_forest, Schedule(tile_size=4))
            assert server.session("m") is replaced

    def test_cache_capacity_respected(self):
        with ModelServer(ServerConfig(cache_capacity=2)) as server:
            for seed in range(4):
                server.register(f"m{seed}", distinct_forest(seed))
            assert server.metrics_snapshot()["predictors_resident"] <= 2

    def test_server_batching_config(self, small_forest, small_rows):
        config = ServerConfig(batching=BatchingPolicy(max_delay_s=0.001))
        with ModelServer(config) as server:
            server.register("m", small_forest)
            got = server.raw_predict("m", small_rows)
            assert np.allclose(got, small_forest.raw_predict(small_rows), rtol=1e-12)
            assert server.metrics_snapshot()["batches"] >= 1

    def test_closed_server_rejects_registration(self, small_forest):
        server = ModelServer()
        server.close()
        with pytest.raises(ServingError, match="closed"):
            server.register("m", small_forest)

    def test_multiclass_served(self, multiclass_forest, test_rows):
        with ModelServer() as server:
            server.register("mc", multiclass_forest)
            got = server.predict("mc", test_rows)
            assert np.allclose(got, multiclass_forest.predict(test_rows), rtol=1e-12)


class TestMetricsPrimitives:
    def test_latency_window_bounded(self):
        from repro.serve.metrics import LatencyWindow

        w = LatencyWindow(capacity=8)
        for i in range(100):
            w.record(float(i))
        assert len(w) == 8
        assert w.percentile(0) >= 92.0  # only the most recent survive

    def test_percentiles_ordering(self):
        from repro.serve.metrics import LatencyWindow

        w = LatencyWindow()
        for i in range(1, 101):
            w.record(i / 100.0)
        assert w.percentile(50) <= w.percentile(90) <= w.percentile(99)
        assert w.percentile(100) == 1.0

    def test_empty_snapshot(self):
        snap = ServingMetrics().snapshot()
        assert snap["latency"]["p50"] is None
        assert snap["latency"]["window_max"] is None
        assert snap["latency"]["all_time_max"] is None
        assert snap["requests"] == 0

    def test_percentile_edges_after_wraparound(self):
        from repro.serve.metrics import LatencyWindow

        w = LatencyWindow(capacity=4)
        for v in (9.0, 8.0, 1.0, 2.0, 3.0, 4.0):  # 9.0, 8.0 rotated out
            w.record(v)
        assert len(w) == 4
        assert w.percentile(0) == 1.0
        assert w.percentile(100) == 4.0
        assert w.max() == 4.0
        w.clear()
        assert len(w) == 0 and w.percentile(50) is None and w.max() is None

    def test_sorted_cache_matches_naive_sort(self):
        from repro.serve.metrics import LatencyWindow

        rng = np.random.default_rng(3)
        w = LatencyWindow(capacity=16)
        ring: list[float] = []
        for i, v in enumerate(rng.uniform(size=200)):
            w.record(float(v))
            if len(ring) < 16:
                ring.append(float(v))
            else:
                ring[(i - 16) % 16] = float(v)
            if i % 7 == 0:  # interleave queries with records
                ordered = sorted(ring)
                for p in (0, 37, 50, 90, 99.9, 100):
                    # nearest-rank definition (see LatencyWindow.percentile)
                    rank = min(
                        len(ordered) - 1,
                        max(0, math.ceil(p / 100.0 * len(ordered)) - 1),
                    )
                    assert w.percentile(p) == ordered[rank]
                assert w.max() == ordered[-1]

    def test_p999_saturates_to_max_on_small_windows(self):
        from repro.serve.metrics import LatencyWindow

        w = LatencyWindow(capacity=64)
        for v in range(1, 33):  # 32 samples << 1000
            w.record(float(v))
        # nearest-rank: ceil(0.999 * 32) - 1 = 31 -> the max sample
        assert w.percentile(99.9) == 32.0
        assert w.percentile(99.9) == w.percentile(100)

    def test_latency_dict_includes_p999(self):
        metrics = ServingMetrics()
        for v in range(1, 2001):
            metrics.record_request(1, v / 1000.0)
        lat = metrics.snapshot()["latency"]
        assert lat["p999"] is not None
        assert lat["p99"] <= lat["p999"] <= lat["window_max"]

    def test_window_max_vs_all_time_max(self):
        metrics = ServingMetrics(latency_window=2)
        metrics.record_request(1, 5.0)  # the spike
        metrics.record_request(1, 0.1)
        metrics.record_request(1, 0.2)  # spike rotated out of the window
        lat = metrics.snapshot()["latency"]
        assert lat["window_max"] == 0.2
        assert lat["all_time_max"] == 5.0
        assert lat["max"] == 5.0  # legacy alias stays all-time

    def test_reset_zeroes_counters_keeps_gauges(self):
        metrics = ServingMetrics()
        metrics.register_gauge("g", lambda: 7)
        metrics.record_request(4, 0.5)
        metrics.record_batch(4, 2)
        metrics.record_cache(hit=True)
        metrics.record_error()
        metrics.reset()
        snap = metrics.snapshot()
        assert snap["requests"] == 0 and snap["rows"] == 0
        assert snap["errors"] == 0 and snap["batches"] == 0
        assert snap["cache_hits"] == 0
        assert snap["batch_rows_hist"] == {}
        assert snap["latency"]["count"] == 0
        assert snap["latency"]["all_time_max"] is None
        assert snap["runtime"]["g"] == 7  # gauges survive the reset

    def test_gauge_error_isolated(self):
        metrics = ServingMetrics()
        metrics.register_gauge("ok", lambda: 1)
        metrics.register_gauge("boom", lambda: 1 // 0)
        snap = metrics.snapshot()
        assert snap["runtime"]["ok"] == 1
        assert str(snap["runtime"]["boom"]).startswith("<gauge error:")

    def test_concurrent_snapshot_vs_record(self):
        metrics = ServingMetrics(latency_window=32)
        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            i = 0
            try:
                while not stop.is_set():
                    metrics.record_request(1, (i % 10) / 100.0)
                    metrics.record_batch(1, 1)
                    i += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    snap = metrics.snapshot()
                    lat = snap["latency"]
                    if lat["count"]:
                        assert lat["p50"] <= lat["window_max"]
                        assert lat["window_max"] <= lat["all_time_max"]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(3)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        snap = metrics.snapshot()
        assert snap["requests"] == snap["rows"] == snap["batches"]


# ----------------------------------------------------------------------
# Worker-death regressions (the stranded-future failure modes)
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_raising_metrics_hook_fails_batch_not_worker(self):
        """Regression: a metrics hook raising inside the batch loop used to
        escape ``_execute``'s try block and kill the worker thread silently,
        stranding every queued future. Now the batch fails and the worker
        survives."""

        class RaisingMetrics(ServingMetrics):
            def record_queue_wait(self, seconds):
                raise RuntimeError("metrics sink exploded")

        b = MicroBatcher(
            lambda rows: rows.sum(axis=1),
            BatchingPolicy(max_delay_s=0.0),
            metrics=RaisingMetrics(),
        )
        try:
            for _ in range(2):  # repeatable: the worker outlives each failure
                with pytest.raises(RuntimeError, match="exploded"):
                    b.submit(np.ones((1, 2))).result(timeout=5.0)
                assert b._worker.is_alive()
        finally:
            b.close()

    def test_worker_death_fails_inflight_queued_and_future_submits(self):
        """If the worker thread itself dies, the in-flight batch, every
        queued request, and every later ``submit`` must fail with
        ``ServingError`` instead of hanging."""
        from repro.observe import events as flight_events

        entered = threading.Event()
        release = threading.Event()
        b = MicroBatcher(
            lambda rows: rows.sum(axis=1),
            BatchingPolicy(max_delay_s=0.0, queue_depth=8, submit_timeout_s=0.2),
            name="death-test",
        )

        def dying(batch, num_rows):
            entered.set()
            assert release.wait(5.0)
            raise RuntimeError("escaped the guard")

        b._execute = dying
        first = b.submit(np.ones((1, 2)))
        assert entered.wait(5.0)
        queued = [b.submit(np.ones((1, 2))) for _ in range(3)]
        release.set()
        for f in [first, *queued]:
            with pytest.raises(ServingError, match="died"):
                f.result(timeout=5.0)
        b._worker.join(5.0)
        assert not b._worker.is_alive()
        with pytest.raises(ServingError, match="died"):
            b.submit(np.ones((1, 2)))
        deaths = flight_events.recorder.tail(n=50, kind="worker_dead")
        assert any(e.get("name") == "death-test" for e in deaths)
        b.close()  # still a clean no-op after death

    def test_dead_worker_fails_within_submit_timeout(self):
        """Acceptance: a dead worker fails pending requests within
        ``submit_timeout_s`` rather than waiting for a future that will
        never resolve."""
        b = MicroBatcher(
            lambda rows: rows.sum(axis=1),
            BatchingPolicy(max_delay_s=0.0, submit_timeout_s=0.5),
            name="timeout-test",
        )
        b._execute = lambda batch, num_rows: (_ for _ in ()).throw(
            RuntimeError("instant death")
        )
        start = time.perf_counter()
        future = b.submit(np.ones((1, 2)))
        with pytest.raises(ServingError):
            future.result(timeout=5.0)
        assert time.perf_counter() - start < b.policy.submit_timeout_s + 1.0
        b.close()


class TestCloseBackpressure:
    def test_close_returns_promptly_with_wedged_worker_and_full_queue(self):
        """Regression: ``close()`` used a blocking put of the stop sentinel
        onto the bounded queue — with the worker wedged inside ``run_batch``
        and the queue full, shutdown hung forever."""
        entered = threading.Event()
        release = threading.Event()

        def wedged(rows):
            entered.set()
            release.wait(30.0)
            return rows.sum(axis=1)

        b = MicroBatcher(
            wedged,
            BatchingPolicy(queue_depth=2, max_delay_s=0.0, submit_timeout_s=0.05),
        )
        try:
            first = b.submit(np.ones((1, 2)))
            assert entered.wait(5.0)
            queued = [b.submit(np.ones((1, 2))) for _ in range(2)]  # fills the queue
            closer = threading.Thread(target=b.close, kwargs={"timeout": 0.5})
            start = time.perf_counter()
            closer.start()
            closer.join(5.0)
            assert not closer.is_alive()  # pre-fix: blocked forever on queue.put
            assert time.perf_counter() - start < 4.0
            for f in queued:
                with pytest.raises(ServingError, match="closed"):
                    f.result(timeout=5.0)
        finally:
            release.set()
        # The wedged batch still completes (its result was already owed),
        # and the unwedged worker finds a stop sentinel instead of blocking.
        assert np.allclose(first.result(timeout=5.0), 2.0)
        b._worker.join(5.0)
        assert not b._worker.is_alive()


class TestPolicyValidation:
    def test_negative_submit_timeout_rejected(self):
        with pytest.raises(ServingError, match="submit_timeout_s"):
            BatchingPolicy(submit_timeout_s=-0.5)

    def test_nan_submit_timeout_rejected(self):
        # NaN would otherwise surface as an opaque ValueError from
        # queue.put on every submit.
        with pytest.raises(ServingError, match="submit_timeout_s"):
            BatchingPolicy(submit_timeout_s=float("nan"))

    def test_zero_submit_timeout_allowed(self):
        policy = BatchingPolicy(submit_timeout_s=0.0)
        assert policy.submit_timeout_s == 0.0

    def test_adaptive_knob_validation(self):
        with pytest.raises(ServingError, match="min_delay_s"):
            BatchingPolicy(adaptive=True, max_delay_s=0.001, min_delay_s=0.01)
        with pytest.raises(ServingError, match="delay_fraction"):
            BatchingPolicy(adaptive=True, delay_fraction=0.0)
        with pytest.raises(ServingError, match="delay_fraction"):
            BatchingPolicy(adaptive=True, delay_fraction=1.5)


class TestAdaptiveBatching:
    def test_cold_window_falls_back_to_max(self):
        metrics = ServingMetrics()
        b = MicroBatcher(
            lambda rows: rows.sum(axis=1),
            BatchingPolicy(adaptive=True, max_delay_s=0.01, min_delay_s=0.001),
            metrics=metrics,
        )
        try:
            assert b.coalescing_window_s() == 0.01
        finally:
            b.close()

    def test_window_tracks_p50_and_clamps(self):
        metrics = ServingMetrics()
        policy = BatchingPolicy(
            adaptive=True, max_delay_s=0.01, min_delay_s=0.001, delay_fraction=0.5
        )
        b = MicroBatcher(lambda rows: rows.sum(axis=1), policy, metrics=metrics)
        try:
            for _ in range(10):
                metrics.record_request(1, 0.004)
            assert b.coalescing_window_s() == pytest.approx(0.002)  # 0.5 x p50
            metrics.reset()
            for _ in range(10):
                metrics.record_request(1, 1.0)  # slow model: clamp to max
            assert b.coalescing_window_s() == 0.01
            metrics.reset()
            for _ in range(10):
                metrics.record_request(1, 1e-6)  # fast model: clamp to min
            assert b.coalescing_window_s() == 0.001
        finally:
            b.close()

    def test_fixed_policy_ignores_latency(self):
        metrics = ServingMetrics()
        b = MicroBatcher(
            lambda rows: rows.sum(axis=1),
            BatchingPolicy(max_delay_s=0.005),
            metrics=metrics,
        )
        try:
            for _ in range(10):
                metrics.record_request(1, 2.0)
            assert b.coalescing_window_s() == 0.005
        finally:
            b.close()

    def test_adaptive_batcher_serves_correctly(self, small_rows):
        with MicroBatcher(
            lambda rows: rows.sum(axis=1),
            BatchingPolicy(adaptive=True, max_delay_s=0.002),
        ) as b:
            got = b.predict(small_rows)
            assert np.allclose(got, small_rows.sum(axis=1))


# ----------------------------------------------------------------------
# Swap/unregister atomicity
# ----------------------------------------------------------------------
class TestSwapUnregisterRace:
    def test_swap_and_unregister_are_atomic(self, small_forest, monkeypatch):
        """Regression: ``_maybe_swap`` checked session currency under the
        lock but swapped after releasing it, so a concurrent ``unregister``
        could close the session between check and swap. The swap must now
        complete before the unregister's close runs (or not happen at all)."""
        from types import SimpleNamespace

        import repro.serve.server as server_mod

        latencies = iter([100.0, 1.0])  # baseline slow, tuned fast -> swap
        monkeypatch.setattr(
            server_mod,
            "measure",
            lambda *a, **k: SimpleNamespace(per_row_us=next(latencies)),
        )
        server = ModelServer()
        session = server.register("m", small_forest)
        events: list[str] = []
        in_swap = threading.Event()
        orig_swap = session.swap_predictor

        def slow_swap(predictor, schedule=None):
            events.append("swap_start")
            in_swap.set()
            time.sleep(0.1)  # widen the race window
            out = orig_swap(predictor, schedule)
            events.append("swap_end")
            return out

        session.swap_predictor = slow_swap
        orig_close = session.close

        def recording_close():
            events.append("close")
            return orig_close()

        session.close = recording_close
        result = SimpleNamespace(
            best_predictor=session.predictor,
            best_schedule=session.schedule,
            explored=1,
            grid_size=1,
            from_cache=False,
            rank_correlation=None,
            stopped_by=None,
        )
        rows = np.random.default_rng(7).normal(size=(8, small_forest.num_features))
        swapper = threading.Thread(
            target=server._maybe_swap, args=("m", session, rows, result)
        )
        swapper.start()
        assert in_swap.wait(5.0)
        server.unregister("m")  # pre-fix: interleaves with the in-flight swap
        swapper.join(5.0)
        assert not swapper.is_alive()
        assert events.index("swap_end") < events.index("close")
        server.close()

    def test_swap_skipped_after_unregister(self, small_forest, monkeypatch):
        """Once the session is no longer current, the (locked) currency
        check must refuse the swap entirely."""
        from types import SimpleNamespace

        import repro.serve.server as server_mod

        latencies = iter([100.0, 1.0])
        monkeypatch.setattr(
            server_mod,
            "measure",
            lambda *a, **k: SimpleNamespace(per_row_us=next(latencies)),
        )
        server = ModelServer()
        session = server.register("m", small_forest)
        swapped = []
        session.swap_predictor = lambda *a, **k: swapped.append(True)
        result = SimpleNamespace(
            best_predictor=session.predictor,
            best_schedule=session.schedule,
            explored=1,
            grid_size=1,
            from_cache=False,
            rank_correlation=None,
            stopped_by=None,
        )
        rows = np.random.default_rng(8).normal(size=(8, small_forest.num_features))
        server.unregister("m")
        info = server._maybe_swap("m", session, rows, result)
        assert info["swapped"] is False
        assert not swapped
        server.close()
