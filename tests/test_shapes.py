"""Unit tests for tile shapes, canonicalization, and the LUT."""

import numpy as np
import pytest

from repro.errors import TilingError
from repro.forest.builder import TreeBuilder
from repro.hir.tiling.shapes import (
    ShapeRegistry,
    all_shapes_of_size,
    left_chain_shape,
    out_edge_order,
    shape_child_for_bits,
    shape_key_of_tile,
    validate_shape,
)


def catalan(n: int) -> int:
    from math import comb

    return comb(2 * n, n) // (n + 1)


class TestEnumeration:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 6])
    def test_counts_are_catalan(self, size):
        assert len(all_shapes_of_size(size)) == catalan(size)

    def test_shapes_are_unique(self):
        shapes = all_shapes_of_size(4)
        assert len(set(shapes)) == len(shapes)

    def test_all_enumerated_shapes_validate(self):
        for shape in all_shapes_of_size(5):
            validate_shape(shape)

    def test_figure4_shapes_present(self):
        """Figure 4 of the paper: the 5 shapes of tile size 3."""
        shapes = set(all_shapes_of_size(3))
        chain_left = ((1, -1), (2, -1), (-1, -1))
        balanced = ((1, 2), (-1, -1), (-1, -1))
        assert chain_left in shapes
        assert balanced in shapes


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(TilingError):
            validate_shape(())

    def test_child_before_parent_rejected(self):
        with pytest.raises(TilingError):
            validate_shape(((1, -1), (0, -1)))

    def test_two_parents_rejected(self):
        with pytest.raises(TilingError):
            validate_shape(((1, 1),))

    def test_out_of_range_rejected(self):
        with pytest.raises(TilingError):
            validate_shape(((5, -1),))


class TestOutEdges:
    def test_edge_count_is_size_plus_one(self):
        for size in (1, 2, 3, 4):
            for shape in all_shapes_of_size(size):
                assert len(out_edge_order(shape)) == size + 1

    def test_single_node_order(self):
        assert out_edge_order(((-1, -1),)) == [(0, "L"), (0, "R")]

    def test_left_chain_first_edge_is_deepest_left(self):
        shape = left_chain_shape(3)
        edges = out_edge_order(shape)
        assert edges[0] == (2, "L")
        assert edges[-1] == (0, "R")


class TestChildSelection:
    def test_single_node(self):
        shape = ((-1, -1),)
        assert shape_child_for_bits(shape, 0b1) == 0  # true -> left child
        assert shape_child_for_bits(shape, 0b0) == 1

    def test_balanced_three(self):
        """Figure 5, first tile shape: root 0 with children 1 (left), 2 (right)."""
        shape = ((1, 2), (-1, -1), (-1, -1))
        # All true: 0 -> left(1) -> left out = child 0 ("a" in the paper).
        assert shape_child_for_bits(shape, 0b111) == 0
        # node0 true, node1 false -> exit right of node 1 = child 1.
        assert shape_child_for_bits(shape, 0b101) == 1
        # node0 false, node2 true -> left of node 2 = child 2.
        assert shape_child_for_bits(shape, 0b100) == 2
        # node0 false, node2 false -> right of node 2 = child 3.
        assert shape_child_for_bits(shape, 0b000) == 3

    def test_dummy_chain_routes_to_child_zero_on_all_true(self):
        for size in (1, 2, 4, 8):
            shape = left_chain_shape(size)
            assert shape_child_for_bits(shape, (1 << size) - 1) == 0

    def test_exhaustive_agreement_with_simulation(self):
        """Every (shape, bits) answer must match a naive in-tile walk."""
        for shape in all_shapes_of_size(4):
            edges = out_edge_order(shape)
            for bits in range(16):
                node = 0
                while True:
                    nxt = shape[node][0] if (bits >> node) & 1 else shape[node][1]
                    if nxt == -1:
                        side = "L" if (bits >> node) & 1 else "R"
                        expected = edges.index((node, side))
                        break
                    node = nxt
                assert shape_child_for_bits(shape, bits) == expected


class TestShapeOfTile:
    def _tree(self):
        return TreeBuilder.from_nested(
            {
                "feature": 0, "threshold": 0.0,
                "left": {
                    "feature": 1, "threshold": 0.0,
                    "left": {"value": 1.0}, "right": {"value": 2.0},
                },
                "right": {"value": 3.0},
            }
        )

    def test_canonicalization(self):
        tree = self._tree()
        internal = [int(n) for n in tree.internal_nodes()]
        shape, ordered = shape_key_of_tile(tree, internal)
        assert len(ordered) == 2
        assert ordered[0] == 0  # tile root first
        assert shape == ((1, -1), (-1, -1))

    def test_disconnected_tile_rejected(self):
        tree = self._tree()
        # Node 0 plus a grandchild leaf (whose parent is outside the set).
        grandchild = int(tree.left[int(tree.left[0])])
        with pytest.raises(TilingError):
            shape_key_of_tile(tree, [0, grandchild])


class TestRegistry:
    def test_ids_stable(self):
        reg = ShapeRegistry(4)
        a = reg.register(((-1, -1),))
        b = reg.register(((1, -1), (-1, -1)))
        assert reg.register(((-1, -1),)) == a
        assert a != b
        assert reg.num_shapes == 2

    def test_oversize_shape_rejected(self):
        reg = ShapeRegistry(2)
        with pytest.raises(TilingError):
            reg.register(left_chain_shape(3))

    def test_bad_tile_size_rejected(self):
        with pytest.raises(TilingError):
            ShapeRegistry(0)

    def test_lut_dimensions(self):
        reg = ShapeRegistry(3)
        for shape in all_shapes_of_size(3):
            reg.register(shape)
        lut = reg.build_lut()
        assert lut.shape == (5, 8)

    def test_lut_values_match_direct_computation(self):
        reg = ShapeRegistry(3)
        shapes = list(all_shapes_of_size(3)) + list(all_shapes_of_size(2))
        for shape in shapes:
            reg.register(shape)
        lut = reg.build_lut()
        for shape in shapes:
            sid = reg.register(shape)
            k = len(shape)
            for bits in range(1 << 3):
                assert lut[sid, bits] == shape_child_for_bits(shape, bits & ((1 << k) - 1))

    def test_lut_child_range(self):
        reg = ShapeRegistry(4)
        for shape in all_shapes_of_size(4):
            reg.register(shape)
        lut = reg.build_lut()
        assert lut.min() >= 0
        assert lut.max() <= 4  # at most size+1 children, index <= size


class TestLeftChain:
    def test_sizes(self):
        assert left_chain_shape(1) == ((-1, -1),)
        assert left_chain_shape(3) == ((1, -1), (2, -1), (-1, -1))

    def test_invalid_size(self):
        with pytest.raises(TilingError):
            left_chain_shape(0)
