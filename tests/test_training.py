"""Unit tests for the training substrate (losses, histograms, GBDT, RF)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.forest.statistics import populate_node_probabilities
from repro.training.gbdt import GBDTParams, train_gbdt
from repro.training.histogram import (
    BinnedMatrix,
    NO_SPLIT,
    bin_dataset,
    build_histograms,
    find_best_split,
)
from repro.training.losses import LogisticLoss, SoftmaxLoss, SquaredLoss, get_loss
from repro.training.metrics import accuracy, logloss, rmse
from repro.training.random_forest import RandomForestParams, train_random_forest


class TestLosses:
    def test_squared_gradients(self):
        loss = SquaredLoss()
        grad, hess = loss.gradients(np.array([1.0, 2.0]), np.array([0.0, 2.0]))
        assert np.array_equal(grad, [1.0, 0.0])
        assert np.array_equal(hess, [1.0, 1.0])

    def test_squared_initial_score_is_mean(self):
        assert SquaredLoss().initial_score(np.array([1.0, 3.0])) == 2.0

    def test_logistic_gradient_at_zero(self):
        loss = LogisticLoss()
        grad, hess = loss.gradients(np.zeros(2), np.array([0.0, 1.0]))
        assert np.allclose(grad, [0.5, -0.5])
        assert np.allclose(hess, 0.25)

    def test_logistic_initial_score_matches_base_rate(self):
        y = np.array([1.0, 1.0, 0.0, 0.0])
        assert LogisticLoss().initial_score(y) == pytest.approx(0.0)

    def test_softmax_gradients_shape(self):
        loss = SoftmaxLoss(3)
        raw = np.zeros((4, 3))
        grad, hess = loss.gradients(raw, np.array([0, 1, 2, 0]))
        assert grad.shape == (4, 3)
        assert np.allclose(grad.sum(axis=1), 0.0)

    def test_softmax_requires_two_classes(self):
        with pytest.raises(ModelError):
            SoftmaxLoss(1)

    def test_get_loss_dispatch(self):
        assert isinstance(get_loss("regression"), SquaredLoss)
        assert isinstance(get_loss("binary:logistic"), LogisticLoss)
        assert isinstance(get_loss("multiclass", 3), SoftmaxLoss)
        with pytest.raises(ModelError):
            get_loss("huber")


class TestBinning:
    def test_bins_cover_data(self, rng):
        X = rng.normal(size=(200, 3))
        binned = bin_dataset(X, max_bins=16)
        assert binned.codes.shape == X.shape
        assert (binned.codes.max(axis=0) < binned.num_bins).all()

    def test_threshold_realizes_split(self, rng):
        X = rng.normal(size=(500, 1))
        binned = bin_dataset(X, max_bins=8)
        split_bin = 3
        t = binned.threshold_for(0, split_bin)
        goes_left_by_bin = binned.codes[:, 0] <= split_bin
        goes_left_by_value = X[:, 0] < t
        assert np.array_equal(goes_left_by_bin, goes_left_by_value)

    def test_constant_feature_single_bin(self):
        X = np.ones((50, 1))
        binned = bin_dataset(X, max_bins=8)
        assert binned.num_bins[0] == 1

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            bin_dataset(np.zeros((0, 2)))

    def test_bad_max_bins_rejected(self):
        with pytest.raises(ModelError):
            bin_dataset(np.zeros((5, 2)), max_bins=1)


class TestSplitFinding:
    def test_perfect_split_found(self):
        X = np.concatenate([np.full((50, 1), -1.0), np.full((50, 1), 1.0)])
        y = np.concatenate([np.zeros(50), np.ones(50)])
        binned = bin_dataset(X, max_bins=4)
        grad = (0.0 - y)  # residuals toward y from prediction 0
        hess = np.ones(100)
        ghist, hhist = build_histograms(binned, np.arange(100), grad, hess, 4)
        decision = find_best_split(ghist, hhist, binned, 0.0, 0.0, 1.0)
        assert decision.is_valid
        assert decision.feature == 0
        goes_left = X[:, 0] < decision.threshold
        assert goes_left.sum() == 50

    def test_no_split_on_constant_target(self):
        X = np.linspace(0, 1, 50)[:, None]
        binned = bin_dataset(X, max_bins=4)
        grad = np.ones(50)
        hess = np.ones(50)
        ghist, hhist = build_histograms(binned, np.arange(50), grad, hess, 4)
        decision = find_best_split(ghist, hhist, binned, 0.0, 1e-9, 1.0)
        assert decision is NO_SPLIT or not decision.is_valid

    def test_min_child_weight_respected(self):
        X = np.concatenate([np.full((1, 1), -1.0), np.full((99, 1), 1.0)])
        y = np.concatenate([np.zeros(1), np.ones(99)])
        binned = bin_dataset(X, max_bins=4)
        ghist, hhist = build_histograms(binned, np.arange(100), -y, np.ones(100), 4)
        decision = find_best_split(ghist, hhist, binned, 0.0, 0.0, min_child_weight=5.0)
        assert not decision.is_valid

    def test_feature_mask(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        binned = bin_dataset(X, max_bins=8)
        ghist, hhist = build_histograms(binned, np.arange(100), -y, np.ones(100), 8)
        mask = np.array([False, True])
        decision = find_best_split(ghist, hhist, binned, 0.0, -np.inf, 1.0, feature_mask=mask)
        assert decision.feature == 1


class TestGBDT:
    def test_reduces_training_error(self, regression_data):
        X, y = regression_data
        forest = train_gbdt(X, y, GBDTParams(num_rounds=30, max_depth=4))
        assert rmse(y, forest.predict(X)) < rmse(y, np.full_like(y, y.mean())) * 0.5

    def test_respects_max_depth(self, regression_data):
        X, y = regression_data
        forest = train_gbdt(X, y, GBDTParams(num_rounds=5, max_depth=3))
        assert forest.max_depth <= 3

    def test_num_trees(self, regression_data):
        X, y = regression_data
        forest = train_gbdt(X, y, GBDTParams(num_rounds=7))
        assert forest.num_trees == 7

    def test_binary_classification_learns(self, regression_data):
        X, y = regression_data
        labels = (y > np.median(y)).astype(float)
        forest = train_gbdt(
            X, labels, GBDTParams(num_rounds=20, max_depth=4, objective="binary:logistic")
        )
        assert accuracy(labels, forest.predict(X)) > 0.85

    def test_multiclass_learns(self, regression_data):
        X, y = regression_data
        labels = np.digitize(y, np.quantile(y, [0.33, 0.66])).astype(float)
        forest = train_gbdt(
            X,
            labels,
            GBDTParams(num_rounds=10, max_depth=4, objective="multiclass", num_classes=3),
        )
        assert forest.num_trees == 30
        assert accuracy(labels, forest.predict(X)) > 0.7

    def test_sample_weight_equivalent_to_duplication(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 3))
        y = X[:, 0] + rng.normal(scale=0.01, size=60)
        dup = np.concatenate([X, X[:10]]), np.concatenate([y, y[:10]])
        weights = np.ones(60)
        weights[:10] = 2.0
        params = GBDTParams(num_rounds=3, max_depth=3, max_bins=16)
        # Bin on identical data so cut points match: duplicated rows do not
        # change quantiles much, so compare predictions loosely.
        f_dup = train_gbdt(dup[0], dup[1], params)
        f_w = train_gbdt(X, y, params, sample_weight=weights)
        rows = rng.normal(size=(50, 3))
        assert np.corrcoef(f_dup.raw_predict(rows), f_w.raw_predict(rows))[0, 1] > 0.95

    def test_bad_weights_rejected(self, regression_data):
        X, y = regression_data
        with pytest.raises(ModelError):
            train_gbdt(X, y, GBDTParams(num_rounds=1), sample_weight=np.zeros(len(y)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            train_gbdt(np.zeros((5, 2)), np.zeros(4))

    def test_subsample_and_colsample(self, regression_data):
        X, y = regression_data
        forest = train_gbdt(
            X, y, GBDTParams(num_rounds=5, max_depth=3, subsample=0.7, colsample=0.5)
        )
        assert forest.num_trees == 5

    def test_probabilities_populated_during_training(self, regression_data):
        X, y = regression_data
        forest = train_gbdt(X, y, GBDTParams(num_rounds=2, max_depth=3))
        # The builder records probabilities during growth.
        assert forest.trees[0].node_probability is not None
        assert forest.trees[0].node_probability[0] == pytest.approx(1.0)


class TestRandomForest:
    def test_learns_signal(self, regression_data):
        X, y = regression_data
        forest = train_random_forest(X, y, RandomForestParams(num_trees=20, max_depth=6))
        assert rmse(y, forest.predict(X)) < np.std(y)

    def test_leaf_values_scaled_by_tree_count(self, regression_data):
        X, y = regression_data
        forest = train_random_forest(X, y, RandomForestParams(num_trees=10, max_depth=3))
        # Prediction magnitude should approximate y, not 10x y.
        assert abs(np.mean(forest.predict(X)) - np.mean(y)) < np.std(y)

    def test_no_bootstrap(self, regression_data):
        X, y = regression_data
        forest = train_random_forest(
            X, y, RandomForestParams(num_trees=3, bootstrap=False, colsample=1.0)
        )
        assert forest.num_trees == 3


class TestMetrics:
    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_logloss_perfect(self):
        assert logloss([1.0, 0.0], [1.0, 0.0]) < 1e-9

    def test_accuracy_binary_probs(self):
        assert accuracy(np.array([1, 0]), np.array([0.9, 0.2])) == 1.0

    def test_accuracy_multiclass_matrix(self):
        probs = np.array([[0.8, 0.1, 0.1], [0.1, 0.1, 0.8]])
        assert accuracy(np.array([0, 2]), probs) == 1.0
