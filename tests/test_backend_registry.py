"""The pluggable backend registry (PR6 tentpole).

Covers the registry's CRUD surface, duplicate-name rejection, the
``Schedule(backend=...)`` knob (unknown names fail at construction with a
:class:`~repro.errors.BackendError`), dispatch through ``compile_model``,
and — the load-bearing guarantee of the refactor — that the default
backend's generated source and model fingerprints are **byte-identical**
to the pre-refactor compiler for a fixed seed (hashes recorded before the
backend interface existed).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.api import compile_model
from repro.backend.jit import (
    artifact_cache_key,
    model_fingerprint,
    predictor_cache_key,
)
from repro.backend.registry import (
    DEFAULT_BACKEND,
    Backend,
    describe_backends,
    get_backend,
    list_backends,
    register_backend,
    temporary_backend,
    unregister_backend,
)
from repro.config import Schedule
from repro.errors import BackendError, CompilerError, ScheduleError
from repro.verify.fuzz import random_fuzz_forest


@pytest.fixture
def forest():
    return random_fuzz_forest(np.random.default_rng(42), num_trees=8, max_depth=6)


# ----------------------------------------------------------------------
# Registry CRUD
# ----------------------------------------------------------------------

class _Dummy(Backend):
    name = "test_dummy"
    capabilities = ("jit",)

    def build(self, forest, lir, *, validate_inputs=True, trace=None):
        return get_backend(DEFAULT_BACKEND).build(
            forest, lir, validate_inputs=validate_inputs, trace=trace
        )


def test_builtin_backends_registered():
    names = list_backends()
    assert "numpy_jit" in names
    assert "aot_export" in names
    assert names == sorted(names)
    assert DEFAULT_BACKEND == "numpy_jit"
    assert Schedule().backend == DEFAULT_BACKEND


def test_get_backend_resolves_builtin():
    backend = get_backend("numpy_jit")
    assert backend.name == "numpy_jit"
    assert "jit" in backend.capabilities
    aot = get_backend("aot_export")
    assert "export" in aot.capabilities


def test_register_and_unregister_roundtrip():
    try:
        register_backend(_Dummy)
        assert "test_dummy" in list_backends()
        assert get_backend("test_dummy").name == "test_dummy"
    finally:
        assert unregister_backend("test_dummy")
    assert "test_dummy" not in list_backends()
    assert not unregister_backend("test_dummy")  # second removal is a no-op


def test_duplicate_name_rejected():
    class Impostor(_Dummy):
        name = "numpy_jit"

    with pytest.raises(BackendError, match="already registered"):
        register_backend(Impostor)
    # The original registration survives the rejected attempt.
    assert type(get_backend("numpy_jit")).__name__ == "NumpyJitBackend"


def test_register_requires_a_name():
    class Nameless(Backend):
        name = ""

        def build(self, forest, lir, **kwargs):  # pragma: no cover
            raise NotImplementedError

    with pytest.raises(BackendError):
        register_backend(Nameless)


def test_unknown_backend_lookup_lists_registered():
    with pytest.raises(BackendError, match="numpy_jit"):
        get_backend("llvm")


def test_temporary_backend_scopes_registration():
    with temporary_backend(_Dummy) as backend:
        assert backend.name == "test_dummy"
        assert "test_dummy" in list_backends()
    assert "test_dummy" not in list_backends()


def test_describe_backends_shape():
    info = describe_backends()
    assert set(info) >= {"numpy_jit", "aot_export"}
    for entry in info.values():
        assert "capabilities" in entry


# ----------------------------------------------------------------------
# The Schedule(backend=...) knob
# ----------------------------------------------------------------------

def test_schedule_rejects_unknown_backend():
    with pytest.raises(BackendError, match="unknown backend"):
        Schedule(backend="does_not_exist")


def test_schedule_rejects_empty_backend():
    with pytest.raises(ScheduleError):
        Schedule(backend="")


def test_backend_error_is_a_compiler_error():
    # The serving fallback path catches CompilerError; backend resolution
    # failures must degrade the same way, not crash the session.
    assert issubclass(BackendError, CompilerError)


def test_backend_excluded_from_repr_and_fingerprint(forest):
    default, explicit = Schedule(), Schedule(backend="aot_export")
    assert "backend" not in repr(default)
    assert model_fingerprint(forest, default) == model_fingerprint(forest, explicit)


def test_backend_roundtrips_through_dict():
    schedule = Schedule(backend="aot_export", tile_size=4)
    data = schedule.to_dict()
    assert data["backend"] == "aot_export"
    assert Schedule.from_dict(data).backend == "aot_export"


def test_compile_dispatches_to_schedule_backend(forest):
    calls = []

    class Spy(_Dummy):
        name = "test_spy"

        def build(self, forest, lir, *, validate_inputs=True, trace=None):
            calls.append(forest.num_trees)
            return super().build(
                forest, lir, validate_inputs=validate_inputs, trace=trace
            )

    with temporary_backend(Spy):
        predictor = compile_model(forest, Schedule(backend="test_spy"))
    assert calls == [forest.num_trees]
    rows = np.random.default_rng(0).normal(size=(8, forest.num_features))
    np.testing.assert_array_equal(
        predictor.raw_predict(rows),
        compile_model(forest, Schedule()).raw_predict(rows),
    )


# ----------------------------------------------------------------------
# Cache keys (satellite: backend name must qualify the predictor cache)
# ----------------------------------------------------------------------

def test_predictor_cache_key_is_backend_qualified(forest):
    base = Schedule()
    jit_key = predictor_cache_key(forest, base)
    aot_key = predictor_cache_key(forest, base.with_(backend="aot_export"))
    assert jit_key != aot_key
    assert jit_key.startswith("numpy_jit:")
    assert aot_key.startswith("aot_export:")
    # Both share the fingerprint suffix: backend choice never changes it.
    assert jit_key.split(":", 1)[1] == aot_key.split(":", 1)[1]
    fp = model_fingerprint(forest, base)
    assert artifact_cache_key("aot_export", fp) == aot_key


# ----------------------------------------------------------------------
# Byte-identity with the pre-refactor compiler
# ----------------------------------------------------------------------

#: (source sha256 prefix, fingerprint prefix) recorded on the pre-refactor
#: tree for the seed-42 fuzz forest — the registry refactor must not move
#: a single byte of generated code nor a bit of any fingerprint.
_BASELINES = [
    (Schedule(), "bb98257b20781f20", "d6fd06abd5da8a9e"),
    (Schedule.scalar_baseline(), "d8ac582f5fb68f37", "50703484e3935453"),
    (
        Schedule(tile_size=4, layout="array", precision="float32"),
        "b285c189ae1b4ff7",
        "cdd0b2a18efb8df4",
    ),
]


@pytest.mark.parametrize(
    "schedule,source_hash,fingerprint",
    _BASELINES,
    ids=["default", "scalar", "tile4-array-f32"],
)
def test_default_backend_output_byte_identical(forest, schedule, source_hash, fingerprint):
    predictor = compile_model(forest, schedule)
    assert hashlib.sha256(predictor.source.encode()).hexdigest()[:16] == source_hash
    assert model_fingerprint(forest, schedule)[:16] == fingerprint
    assert predictor.fingerprint[:16] == fingerprint
