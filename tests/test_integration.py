"""Integration tests: the full pipeline across the schedule grid and on
realistic benchmark models."""

import itertools

import numpy as np
import pytest

from repro.api import compile_model
from repro.backend.interpreter import interpret_lir
from repro.baselines import (
    HummingbirdGEMMPredictor,
    TreelitePredictor,
    XGBoostV15Predictor,
)
from repro.config import Schedule
from repro.datasets import fresh_rows, train_benchmark


GRID = list(
    itertools.product(
        (1, 4, 8),                     # tile size
        ("basic", "hybrid"),           # tiling
        ("one-tree", "one-row"),       # loop order
        (True, False),                 # pad_and_unroll
        (1, 8),                        # interleave
        ("array", "sparse"),           # layout
    )
)


class TestScheduleGridEquivalence:
    @pytest.mark.parametrize("nt,tiling,order,pad,interleave,layout", GRID)
    def test_grid_point(
        self, trained_forest, test_rows, nt, tiling, order, pad, interleave, layout
    ):
        schedule = Schedule(
            tile_size=nt,
            tiling=tiling,
            loop_order=order,
            pad_and_unroll=pad,
            interleave=interleave,
            layout=layout,
        )
        predictor = compile_model(trained_forest, schedule)
        got = predictor.raw_predict(test_rows[:48])
        want = trained_forest.raw_predict(test_rows[:48])
        assert np.allclose(got, want, rtol=1e-12, atol=1e-12)


class TestDeepModels:
    @pytest.mark.parametrize("layout", ["array", "sparse"])
    @pytest.mark.parametrize("pad", [True, False])
    def test_imbalanced_model(self, deep_forest, test_rows, layout, pad):
        schedule = Schedule(layout=layout, pad_and_unroll=pad)
        predictor = compile_model(deep_forest, schedule)
        got = predictor.raw_predict(test_rows)
        assert np.allclose(got, deep_forest.raw_predict(test_rows), rtol=1e-12)


class TestBenchmarkModels:
    """End-to-end on (scaled) Table-I benchmark models."""

    @pytest.mark.parametrize("name", ["airline", "higgs", "year"])
    def test_compiled_vs_baselines(self, name):
        forest, _ = train_benchmark(name, scale=0.05, seed=0)
        rows = fresh_rows(name, 64)
        want = forest.raw_predict(rows)
        compiled = compile_model(forest).raw_predict(rows)
        assert np.allclose(compiled, want, rtol=1e-12)
        for cls in (XGBoostV15Predictor, TreelitePredictor, HummingbirdGEMMPredictor):
            assert np.allclose(cls(forest).raw_predict(rows), want, rtol=1e-12)

    def test_multiclass_benchmark(self):
        forest, _ = train_benchmark("letter", scale=0.01, seed=0)
        rows = fresh_rows("letter", 32)
        predictor = compile_model(forest)
        assert np.allclose(
            predictor.raw_predict(rows), forest.raw_predict(rows), rtol=1e-12
        )
        probs = predictor.predict(rows)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_leaf_biased_benchmark_probability_tiling(self):
        """Hybrid tiling on a leaf-biased model must shorten expected walks
        without changing predictions."""
        forest, _ = train_benchmark("abalone", scale=0.02, seed=0)
        rows = fresh_rows("abalone", 64)
        want = forest.raw_predict(rows)
        base = Schedule(tiling="basic", pad_and_unroll=False, peel_walk=False)
        for tiling in ("basic", "hybrid", "probability"):
            predictor = compile_model(forest, base.with_(tiling=tiling))
            assert np.allclose(predictor.raw_predict(rows), want, rtol=1e-12)


class TestCompilerPipelineConsistency:
    def test_interpreter_codegen_identical(self, deep_forest, test_rows):
        """Interpreter and generated code share buffers: every walk must
        select the same leaves, so results agree to within the one-ulp
        accumulation-order difference of the matmul reduction."""
        for layout in ("array", "sparse"):
            predictor = compile_model(deep_forest, Schedule(layout=layout))
            compiled = predictor.raw_predict(test_rows[:16])
            interpreted = interpret_lir(predictor.lir, test_rows[:16])[:, 0]
            assert np.allclose(compiled, interpreted, rtol=1e-14, atol=0)

    def test_pass_log_records_pipeline(self, trained_forest):
        predictor = compile_model(trained_forest)
        log = predictor.lir.pass_log
        assert "lower_hir_to_mir" in log
        assert any(entry.startswith("interleave") for entry in log)
        assert "peel_and_unroll" in log
        assert "lower_mir_to_lir" in log

    def test_schedules_share_code_cache(self, trained_forest, multiclass_forest):
        """Different models with the same schedule may share generated code
        only when sources match; compilation must never cross-contaminate."""
        a = compile_model(trained_forest)
        b = compile_model(multiclass_forest)
        rows = np.random.default_rng(0).normal(size=(8, trained_forest.num_features))
        assert a.raw_predict(rows).shape == (8,)
        assert b.raw_predict(rows).shape == (8, 3)
