"""Unit tests for TreeBuilder."""

import pytest

from repro.errors import ModelError
from repro.forest.builder import TreeBuilder


class TestBuilder:
    def test_minimal_leaf(self):
        b = TreeBuilder()
        b.leaf(5.0)
        tree = b.build()
        assert tree.num_nodes == 1
        assert tree.value[0] == 5.0

    def test_three_node_tree(self):
        b = TreeBuilder()
        root = b.internal(feature=2, threshold=1.5)
        b.leaf(1.0, parent=root, side="left")
        b.leaf(2.0, parent=root, side="right")
        tree = b.build()
        assert tree.num_nodes == 3
        assert tree.feature[0] == 2
        assert tree.threshold[0] == 1.5

    def test_missing_child_rejected(self):
        b = TreeBuilder()
        root = b.internal(feature=0, threshold=0.0)
        b.leaf(1.0, parent=root, side="left")
        with pytest.raises(ModelError, match="missing a child"):
            b.build()

    def test_double_attach_rejected(self):
        b = TreeBuilder()
        root = b.internal(feature=0, threshold=0.0)
        b.leaf(1.0, parent=root, side="left")
        with pytest.raises(ModelError, match="already set"):
            b.leaf(2.0, parent=root, side="left")

    def test_bad_side_rejected(self):
        b = TreeBuilder()
        root = b.internal(feature=0, threshold=0.0)
        with pytest.raises(ModelError, match="side"):
            b.leaf(1.0, parent=root, side="middle")

    def test_second_root_rejected(self):
        b = TreeBuilder()
        b.internal(feature=0, threshold=0.0)
        with pytest.raises(ModelError, match="parent"):
            b.internal(feature=1, threshold=0.0)

    def test_probabilities_recorded(self):
        b = TreeBuilder()
        root = b.internal(feature=0, threshold=0.0, probability=1.0)
        b.leaf(1.0, parent=root, side="left", probability=0.7)
        b.leaf(2.0, parent=root, side="right", probability=0.3)
        tree = b.build()
        assert tree.node_probability is not None
        assert tree.node_probability[0] == 1.0

    def test_no_probabilities_means_none(self):
        b = TreeBuilder()
        b.leaf(1.0)
        assert b.build().node_probability is None


class TestFromNested:
    def test_nested_structure(self):
        tree = TreeBuilder.from_nested(
            {
                "feature": 0,
                "threshold": 0.0,
                "left": {"value": -1.0},
                "right": {
                    "feature": 1,
                    "threshold": 2.0,
                    "left": {"value": 0.0},
                    "right": {"value": 1.0},
                },
            }
        )
        assert tree.num_nodes == 5
        assert tree.max_depth == 2

    def test_nested_single_leaf(self):
        tree = TreeBuilder.from_nested({"value": 3.5})
        assert tree.num_nodes == 1

    def test_class_and_tree_ids(self):
        tree = TreeBuilder.from_nested({"value": 1.0}, class_id=2, tree_id=7)
        assert tree.class_id == 2
        assert tree.tree_id == 7
