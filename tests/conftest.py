"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forest.builder import TreeBuilder
from repro.forest.ensemble import Forest
from repro.forest.statistics import populate_node_probabilities
from repro.forest.tree import DecisionTree
from repro.training.gbdt import GBDTParams, train_gbdt


def random_tree(
    rng: np.random.Generator,
    max_depth: int = 5,
    num_features: int = 8,
    leaf_prob: float = 0.3,
    tree_id: int = 0,
) -> DecisionTree:
    """Sample a random full binary decision tree (structure + parameters)."""
    builder = TreeBuilder()

    def grow(parent, side, depth):
        make_leaf = depth >= max_depth or (depth > 0 and rng.uniform() < leaf_prob)
        if make_leaf:
            builder.leaf(float(rng.normal()), parent=parent, side=side)
            return
        node = builder.internal(
            int(rng.integers(num_features)), float(rng.normal()), parent=parent, side=side
        )
        grow(node, "left", depth + 1)
        grow(node, "right", depth + 1)

    if max_depth == 0 or rng.uniform() < leaf_prob / 4:
        builder.leaf(float(rng.normal()))
    else:
        root = builder.internal(int(rng.integers(num_features)), float(rng.normal()))
        grow(root, "left", 1)
        grow(root, "right", 1)
    return builder.build(tree_id=tree_id)


def random_forest_model(
    rng: np.random.Generator,
    num_trees: int = 5,
    max_depth: int = 5,
    num_features: int = 8,
    num_classes: int = 1,
) -> Forest:
    """A random (untrained) forest for structural tests."""
    trees = []
    for i in range(num_trees):
        tree = random_tree(rng, max_depth=max_depth, num_features=num_features, tree_id=i)
        tree.class_id = i % num_classes if num_classes > 1 else 0
        trees.append(tree)
    objective = "multiclass" if num_classes > 1 else "regression"
    return Forest(trees, num_features=num_features, objective=objective, num_classes=num_classes)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def regression_data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(500, 10))
    y = 2.0 * X[:, 0] + np.sin(3.0 * X[:, 1]) + (X[:, 2] > 0) * X[:, 3]
    return X, y


@pytest.fixture(scope="session")
def trained_forest(regression_data) -> Forest:
    """A small trained GBDT with populated leaf statistics."""
    X, y = regression_data
    forest = train_gbdt(X, y, GBDTParams(num_rounds=12, max_depth=5, seed=3))
    populate_node_probabilities(forest, X)
    return forest


@pytest.fixture(scope="session")
def deep_forest(regression_data) -> Forest:
    """A deeper/imbalanced model exercising padding and peeled walks."""
    X, y = regression_data
    forest = train_gbdt(
        X, y, GBDTParams(num_rounds=8, max_depth=8, reg_lambda=1e-3, seed=5)
    )
    populate_node_probabilities(forest, X)
    return forest


@pytest.fixture(scope="session")
def multiclass_forest(regression_data) -> Forest:
    X, _ = regression_data
    rng = np.random.default_rng(11)
    y = rng.integers(0, 3, size=X.shape[0]).astype(np.float64)
    forest = train_gbdt(
        X,
        y,
        GBDTParams(
            num_rounds=5, max_depth=4, objective="multiclass", num_classes=3, seed=4
        ),
    )
    populate_node_probabilities(forest, X)
    return forest


@pytest.fixture(scope="session")
def binary_forest(regression_data) -> Forest:
    X, y = regression_data
    labels = (y > np.median(y)).astype(np.float64)
    forest = train_gbdt(
        X, labels, GBDTParams(num_rounds=8, max_depth=4, objective="binary:logistic", seed=6)
    )
    populate_node_probabilities(forest, X)
    return forest


@pytest.fixture(scope="session")
def test_rows(regression_data) -> np.ndarray:
    rng = np.random.default_rng(99)
    return rng.normal(size=(128, regression_data[0].shape[1]))
