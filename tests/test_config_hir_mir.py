"""Unit tests for Schedule, HIR construction, and the MIR passes."""

import pytest

from repro.config import Schedule
from repro.errors import LoweringError, ScheduleError
from repro.hir.ir import build_hir
from repro.mir.ir import WalkOp
from repro.mir.lowering import lower_hir_to_mir
from repro.mir.passes import (
    interleave_pass,
    parallelize_pass,
    peel_and_unroll_pass,
    run_mir_pipeline,
    verify_mir,
)


class TestSchedule:
    def test_defaults_valid(self):
        s = Schedule()
        assert s.tile_size == 8
        assert s.layout == "sparse"

    def test_scalar_baseline(self):
        s = Schedule.scalar_baseline()
        assert s.tile_size == 1
        assert s.loop_order == "one-row"
        assert not s.pad_and_unroll
        assert s.interleave == 1

    def test_with_updates(self):
        s = Schedule().with_(tile_size=4)
        assert s.tile_size == 4
        assert Schedule().tile_size == 8  # frozen original untouched

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tile_size": 0},
            {"tile_size": 17},
            {"tiling": "dp-exact"},
            {"loop_order": "diagonal"},
            {"layout": "csr"},
            {"interleave": 0},
            {"parallel": 0},
            {"alpha": 0.0},
            {"beta": 1.5},
            {"row_block": -1},
            {"pad_max_slack": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ScheduleError):
            Schedule(**kwargs)


class TestBuildHIR:
    def test_groups_cover_all_trees(self, trained_forest):
        hir = build_hir(trained_forest, Schedule())
        indices = sorted(i for g in hir.groups for i in g.tree_indices)
        assert indices == list(range(trained_forest.num_trees))

    def test_tile_sizes_respected(self, trained_forest):
        for nt in (1, 2, 4):
            hir = build_hir(trained_forest, Schedule(tile_size=nt))
            for tiled in hir.tiled_trees:
                for tile in tiled.internal_tiles():
                    if not tile.is_dummy:
                        assert tile.num_nodes <= nt

    def test_padding_flag(self, deep_forest):
        padded = build_hir(deep_forest, Schedule(pad_and_unroll=True, pad_max_slack=99))
        assert all(t.is_uniform_depth for t in padded.tiled_trees)
        unpadded = build_hir(deep_forest, Schedule(pad_and_unroll=False))
        assert any(tile.is_dummy is False for t in unpadded.tiled_trees for tile in t.tiles)

    def test_lut_covers_registered_shapes(self, trained_forest):
        hir = build_hir(trained_forest, Schedule(tile_size=4))
        assert hir.lut.shape == (hir.shape_registry.num_shapes, 16)

    def test_no_reorder_gives_tree_per_group(self, trained_forest):
        hir = build_hir(trained_forest, Schedule(reorder=False))
        assert len(hir.groups) == trained_forest.num_trees


class TestMIR:
    def _mir(self, forest, schedule):
        hir = build_hir(forest, schedule)
        return lower_hir_to_mir(hir), hir

    def test_initial_walks_unoptimized(self, trained_forest):
        mir, _ = self._mir(trained_forest, Schedule())
        assert all(l.walk.width == 1 and l.walk.style == "loop" for l in mir.tree_loops)

    def test_interleave_clips_to_group_size(self, trained_forest):
        mir, hir = self._mir(trained_forest, Schedule(interleave=1000))
        interleave_pass(mir, hir)
        for loop in mir.tree_loops:
            assert loop.walk.width == loop.num_trees

    def test_unroll_requires_uniform(self, deep_forest):
        schedule = Schedule(pad_and_unroll=False, peel_walk=True)
        mir, hir = self._mir(deep_forest, schedule)
        peel_and_unroll_pass(mir, hir)
        assert all(l.walk.style in ("loop", "peeled") for l in mir.tree_loops)

    def test_unrolled_when_padded(self, trained_forest):
        schedule = Schedule(pad_and_unroll=True, pad_max_slack=99)
        mir, hir = self._mir(trained_forest, schedule)
        peel_and_unroll_pass(mir, hir)
        nontrivial = [l for l in mir.tree_loops if l.walk.depth > 0]
        assert nontrivial
        assert all(l.walk.style == "unrolled" for l in nontrivial)

    def test_peel_below_min_leaf_depth(self, deep_forest):
        schedule = Schedule(pad_and_unroll=False, peel_walk=True)
        mir, hir = self._mir(deep_forest, schedule)
        peel_and_unroll_pass(mir, hir)
        groups = {g.group_id: g for g in hir.groups}
        for loop in mir.tree_loops:
            if loop.walk.style == "peeled":
                assert loop.walk.peel < groups[loop.group_id].min_leaf_depth

    def test_parallelize_sets_threads(self, trained_forest):
        mir, hir = self._mir(trained_forest, Schedule(parallel=8))
        parallelize_pass(mir, hir)
        assert mir.row_loop.num_threads == 8
        assert mir.row_loop.parallel

    def test_pipeline_passes_verification(self, trained_forest):
        for schedule in (Schedule(), Schedule.scalar_baseline(), Schedule(parallel=4)):
            mir, hir = self._mir(trained_forest, schedule)
            run_mir_pipeline(mir, hir)  # verify_mir runs inside

    def test_verify_catches_overwide_jam(self, trained_forest):
        mir, hir = self._mir(trained_forest, Schedule())
        mir.tree_loops[0].walk.width = mir.tree_loops[0].num_trees + 1
        with pytest.raises(LoweringError):
            verify_mir(mir, hir)

    def test_verify_catches_bad_unroll(self, deep_forest):
        mir, hir = self._mir(deep_forest, Schedule(pad_and_unroll=False))
        for loop, group in zip(mir.tree_loops, hir.groups):
            if not group.uniform:
                loop.walk.style = "unrolled"
                break
        else:
            pytest.skip("all groups uniform")
        with pytest.raises(LoweringError):
            verify_mir(mir, hir)

    def test_dump_mentions_loop_order(self, trained_forest):
        mir, hir = self._mir(trained_forest, Schedule(loop_order="one-row"))
        assert "for row in block" in mir.dump()

    def test_walk_describe(self):
        walk = WalkOp(group_id=0, width=4, style="unrolled", depth=3)
        assert "3 traverseTile" in walk.describe()
