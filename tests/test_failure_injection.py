"""Failure-injection and edge-case tests across the pipeline."""

import numpy as np
import pytest

from repro.api import compile_model
from repro.backend.interpreter import interpret_lir
from repro.config import Schedule
from repro.errors import ExecutionError, ModelError
from repro.forest.builder import TreeBuilder
from repro.forest.ensemble import Forest
from repro.hir.ir import build_hir
from repro.lir.lowering import lower_mir_to_lir
from repro.mir.lowering import lower_hir_to_mir
from repro.mir.passes import run_mir_pipeline


def leaf_only_forest(values=(1.0, 2.0)):
    trees = []
    for v in values:
        b = TreeBuilder()
        b.leaf(v)
        trees.append(b.build())
    return Forest(trees, num_features=3)


class TestDegenerateModels:
    def test_all_leaf_forest_compiles(self):
        forest = leaf_only_forest()
        predictor = compile_model(forest)
        out = predictor.raw_predict(np.zeros((4, 3)))
        assert np.allclose(out, 3.0)

    def test_mixed_leaf_and_real_trees(self, rng):
        from conftest import random_tree

        b = TreeBuilder()
        b.leaf(0.5)
        trees = [b.build(), random_tree(rng, max_depth=4, num_features=3)]
        forest = Forest(trees, num_features=3)
        rows = rng.normal(size=(20, 3))
        predictor = compile_model(forest)
        assert np.allclose(predictor.raw_predict(rows), forest.raw_predict(rows), rtol=1e-12)

    def test_single_tree_single_split(self):
        b = TreeBuilder()
        root = b.internal(0, 0.0)
        b.leaf(-1.0, parent=root, side="left")
        b.leaf(1.0, parent=root, side="right")
        forest = Forest([b.build()], num_features=1)
        for schedule in (Schedule(), Schedule.scalar_baseline(), Schedule(tile_size=4)):
            predictor = compile_model(forest, schedule)
            out = predictor.raw_predict(np.array([[-5.0], [5.0]]))
            assert np.array_equal(out, [-1.0, 1.0])

    def test_extreme_thresholds(self):
        """Thresholds at float extremes must not break speculation padding."""
        b = TreeBuilder()
        root = b.internal(0, 1e308)
        b.leaf(1.0, parent=root, side="left")
        b.leaf(2.0, parent=root, side="right")
        forest = Forest([b.build()], num_features=1)
        predictor = compile_model(forest)
        out = predictor.raw_predict(np.array([[0.0], [np.finfo(np.float64).max]]))
        assert np.array_equal(out, [1.0, 2.0])

    def test_deep_chain_model(self):
        """A pathological 30-deep chain stresses padding and array budget."""
        from test_tiling import chain_tree

        tree = chain_tree(30)
        forest = Forest([tree], num_features=1)
        rows = np.linspace(-40, 5, 32)[:, None]
        want = forest.raw_predict(rows)
        # Sparse layout handles any depth.
        predictor = compile_model(forest, Schedule(layout="sparse", pad_max_slack=999))
        assert np.allclose(predictor.raw_predict(rows), want, rtol=1e-12)


class TestCorruptState:
    def _lir(self, forest, schedule=None):
        hir = build_hir(forest, schedule or Schedule())
        return lower_mir_to_lir(run_mir_pipeline(lower_hir_to_mir(hir), hir), hir)

    def test_interpreter_detects_cycle(self, trained_forest):
        lir = self._lir(trained_forest, Schedule(layout="sparse"))
        layout = next(g.layout for g in lir.groups if not g.trivial)
        # Point every tile's children back at the low tiles: the walk can
        # never reach a leaf and must not spin forever.
        layout.child_base[0, :] = 0
        with pytest.raises(ExecutionError, match="terminate"):
            interpret_lir(lir, np.zeros((1, trained_forest.num_features)))

    def test_interpreter_detects_empty_slot(self, trained_forest):
        lir = self._lir(trained_forest, Schedule(layout="array", tile_size=2))
        layout = next(g.layout for g in lir.groups if not g.trivial)
        layout.shape_ids[0, :] = -2
        with pytest.raises(ExecutionError, match="empty"):
            interpret_lir(lir, np.zeros((1, trained_forest.num_features)))


class TestInputHandling:
    def test_float32_rows_accepted(self, trained_forest, test_rows):
        predictor = compile_model(trained_forest)
        got32 = predictor.raw_predict(test_rows.astype(np.float32))
        got64 = predictor.raw_predict(test_rows.astype(np.float32).astype(np.float64))
        assert np.array_equal(got32, got64)

    def test_noncontiguous_rows_accepted(self, trained_forest, test_rows):
        predictor = compile_model(trained_forest)
        strided = np.asfortranarray(test_rows)
        assert np.allclose(
            predictor.raw_predict(strided), predictor.raw_predict(test_rows), rtol=1e-12
        )

    def test_list_input_accepted(self, trained_forest):
        predictor = compile_model(trained_forest)
        rows = [[0.0] * trained_forest.num_features] * 3
        assert predictor.raw_predict(rows).shape == (3,)

    def test_inf_inputs_allowed(self, trained_forest):
        """+inf rows push every predicate false (x < t fails): legal."""
        predictor = compile_model(trained_forest)
        rows = np.full((2, trained_forest.num_features), np.inf)
        want = trained_forest.raw_predict(rows)
        assert np.allclose(predictor.raw_predict(rows), want, rtol=1e-12)

    def test_neg_inf_inputs_allowed(self, trained_forest):
        predictor = compile_model(trained_forest)
        rows = np.full((2, trained_forest.num_features), -np.inf)
        want = trained_forest.raw_predict(rows)
        assert np.allclose(predictor.raw_predict(rows), want, rtol=1e-12)


class TestForestEdgeCases:
    def test_duplicate_feature_thresholds(self):
        """Identical (feature, threshold) on a path is legal and must route
        deterministically."""
        tree = TreeBuilder.from_nested(
            {
                "feature": 0, "threshold": 1.0,
                "left": {
                    "feature": 0, "threshold": 1.0,
                    "left": {"value": 1.0}, "right": {"value": 2.0},
                },
                "right": {"value": 3.0},
            }
        )
        forest = Forest([tree], num_features=1)
        predictor = compile_model(forest)
        # x < 1 goes left twice -> leaf 1; x >= 1 -> leaf 3; leaf 2 unreachable.
        out = predictor.raw_predict(np.array([[0.0], [1.0], [2.0]]))
        assert np.array_equal(out, [1.0, 3.0, 3.0])

    def test_save_load_compile_roundtrip(self, trained_forest, test_rows, tmp_path):
        path = str(tmp_path / "model.json")
        trained_forest.save(path)
        clone = Forest.load(path)
        a = compile_model(trained_forest).raw_predict(test_rows)
        b = compile_model(clone).raw_predict(test_rows)
        assert np.allclose(a, b, rtol=1e-12)

    def test_probabilityless_model_compiles_with_hybrid(self, rng):
        from conftest import random_forest_model

        forest = random_forest_model(rng, num_trees=3)
        for tree in forest.trees:
            tree.node_probability = None
        predictor = compile_model(forest, Schedule(tiling="hybrid"))
        rows = rng.normal(size=(10, forest.num_features))
        assert np.allclose(predictor.raw_predict(rows), forest.raw_predict(rows), rtol=1e-12)
