"""Unit tests for the array and sparse in-memory layouts (Section V-B)."""

import numpy as np
import pytest

from repro.config import Schedule
from repro.errors import LayoutError
from repro.forest.builder import TreeBuilder
from repro.hir.padding import pad_to_uniform_depth
from repro.hir.tiling import ShapeRegistry, TiledTree, basic_tiling
from repro.lir.layout.array_layout import EMPTY_SLOT, LEAF_SLOT, build_array_layout
from repro.lir.layout.sparse_layout import build_sparse_layout
from repro.lir.memory import model_memory_report

from conftest import random_tree
from test_tiling import chain_tree, complete_tree


def make_layout(trees, nt, kind, pad=False):
    tiled = [TiledTree.from_tiling(t, basic_tiling(t, nt), nt) for t in trees]
    if pad:
        for t in tiled:
            pad_to_uniform_depth(t)
    reg = ShapeRegistry(nt)
    idx = list(range(len(tiled)))
    cls = np.zeros(len(tiled), dtype=np.int32)
    build = build_array_layout if kind == "array" else build_sparse_layout
    return build(tiled, idx, cls, reg), tiled, reg


class TestArrayLayout:
    def test_positional_indexing(self):
        tree = complete_tree(2)
        layout, tiled, _ = make_layout([tree], 1, "array")
        nt1_arity = 2
        # Root at slot 0, children at 1 and 2, grandchildren at 3..6.
        assert layout.num_slots == 7
        assert layout.shape_ids[0, 0] >= 0
        assert (layout.shape_ids[0, 3:] == LEAF_SLOT).all()

    def test_empty_slots_for_incomplete_trees(self):
        layout, _, _ = make_layout([chain_tree(4)], 1, "array")
        assert (layout.shape_ids == EMPTY_SLOT).any()

    def test_padding_fill_is_speculation_safe(self, rng):
        layout, _, _ = make_layout([random_tree(rng, max_depth=5)], 4, "array")
        filled = layout.shape_ids >= 0
        # Unused node positions inside real tiles must compare true (x < inf).
        assert np.isinf(layout.thresholds[~filled]).all() or (~filled).sum() == 0

    def test_leaf_values_stored(self):
        b = TreeBuilder()
        root = b.internal(0, 0.0)
        b.leaf(5.0, parent=root, side="left")
        b.leaf(7.0, parent=root, side="right")
        layout, _, _ = make_layout([b.build()], 1, "array")
        stored = sorted(layout.leaf_values[0, layout.shape_ids[0] == LEAF_SLOT])
        assert stored == [5.0, 7.0]

    def test_group_stacking_pads_to_max(self, rng):
        trees = [random_tree(rng, max_depth=3), random_tree(rng, max_depth=6)]
        layout, _, _ = make_layout(trees, 2, "array")
        assert layout.thresholds.shape[0] == 2

    def test_slot_budget_enforced(self):
        with pytest.raises(LayoutError, match="slots"):
            tiled = [TiledTree.from_tiling(chain_tree(12), basic_tiling(chain_tree(12), 1), 1)]
            build_array_layout(
                tiled, [0], np.zeros(1, dtype=np.int32), ShapeRegistry(1), max_slots=10
            )

    def test_empty_group_rejected(self):
        with pytest.raises(LayoutError):
            build_array_layout([], [], np.zeros(0), ShapeRegistry(2))

    def test_nbytes_positive(self, rng):
        layout, _, _ = make_layout([random_tree(rng, max_depth=4)], 2, "array")
        assert layout.nbytes() > 0


class TestSparseLayout:
    def test_no_empty_slots(self, rng):
        """Sparse tiles are dense: every record is a real (or hop) tile."""
        layout, tiled, _ = make_layout([random_tree(rng, max_depth=6)], 4, "sparse")
        n = int(layout.num_tiles[0])
        assert (layout.child_base[0, :n] != 0).any() or n == 1

    def test_children_contiguous(self, rng):
        """Non-leaf children blocks must be dense and in range."""
        layout, _, _ = make_layout([random_tree(rng, max_depth=6)], 4, "sparse")
        n = int(layout.num_tiles[0])
        for t in range(n):
            base = int(layout.child_base[0, t])
            if base >= 0:
                assert base > t  # BFS order: children come after parents
                assert base < n

    def test_leaf_pointers_in_range(self, rng):
        layout, _, _ = make_layout([random_tree(rng, max_depth=6)], 4, "sparse")
        n = int(layout.num_tiles[0])
        leaves = int(layout.num_leaves[0])
        for t in range(n):
            base = int(layout.child_base[0, t])
            if base < 0:
                assert 0 <= -base - 1 < leaves

    def test_all_leaf_values_present(self, rng):
        tree = random_tree(rng, max_depth=5)
        layout, _, _ = make_layout([tree], 4, "sparse")
        stored = set(np.round(layout.leaves[0, : int(layout.num_leaves[0])], 9))
        expected = set(np.round(tree.value[tree.leaves()], 9))
        assert expected <= stored

    def test_hops_added_for_mixed_children(self):
        # A chain tree at tile size 1 has mixed children everywhere: each
        # internal node has one leaf and one internal child.
        layout, _, _ = make_layout([chain_tree(5)], 1, "sparse")
        assert layout.hops_added > 0

    def test_no_hops_for_complete_tree(self):
        layout, _, _ = make_layout([complete_tree(3)], 1, "sparse")
        assert layout.hops_added == 0

    def test_single_leaf_tree(self):
        b = TreeBuilder()
        b.leaf(3.0)
        layout, _, _ = make_layout([b.build()], 4, "sparse")
        assert layout.root_leaf[0]
        assert layout.leaves[0, 0] == 3.0

    def test_sparse_smaller_than_array_when_padded(self, rng):
        trees = [random_tree(rng, max_depth=7, leaf_prob=0.2) for _ in range(3)]
        arr, _, _ = make_layout(trees, 8, "array")
        sp, _, _ = make_layout(trees, 8, "sparse")
        assert sp.nbytes() < arr.nbytes()


class TestMemoryReport:
    def test_section_vb2_shape(self, deep_forest):
        """Section V-B2: array layout bloats well past scalar; sparse
        recovers most of it (small multiple of the scalar footprint)."""
        report = model_memory_report(deep_forest, tile_size=8)
        assert report.array_bloat > 2.0
        assert report.sparse_vs_array > 1.5
        assert report.sparse_overhead < report.array_bloat / 2

    def test_report_fields(self, trained_forest):
        report = model_memory_report(trained_forest, tile_size=4)
        assert report.scalar_bytes > 0
        assert report.tile_size == 4
