"""Unit tests for the tiling algorithms and validity checking."""

import numpy as np
import pytest

from repro.errors import TilingError
from repro.forest.builder import TreeBuilder
from repro.forest.statistics import leaf_probabilities, uniform_node_probabilities
from repro.hir.tiling import (
    TiledTree,
    basic_tiling,
    check_valid_tiling,
    hybrid_tiling,
    probability_tiling,
)

from conftest import random_tree


def complete_tree(depth: int):
    """A complete binary tree of the given depth."""

    def spec(d):
        if d == depth:
            return {"value": float(d)}
        return {"feature": d, "threshold": 0.0, "left": spec(d + 1), "right": spec(d + 1)}

    return TreeBuilder.from_nested(spec(0))


def chain_tree(length: int):
    """A left-leaning chain: worst case for balance."""

    def spec(d):
        if d == length:
            return {"value": float(d)}
        return {"feature": 0, "threshold": -float(d), "left": spec(d + 1), "right": {"value": -1.0}}

    return TreeBuilder.from_nested(spec(0))


class TestBasicTiling:
    @pytest.mark.parametrize("nt", [1, 2, 3, 4, 8])
    def test_valid_on_random_trees(self, rng, nt):
        for _ in range(10):
            tree = random_tree(rng, max_depth=6)
            tiling = basic_tiling(tree, nt)
            check_valid_tiling(tree, tiling, nt)

    def test_single_leaf_tree(self):
        b = TreeBuilder()
        b.leaf(1.0)
        assert basic_tiling(b.build(), 4) == []

    def test_complete_tree_fast_tiling(self):
        """On a complete tree, level-order tiling reproduces FAST's
        triangular tiles: size-3 tiles covering two levels each."""
        tree = complete_tree(4)
        tiling = basic_tiling(tree, 3)
        tiled = TiledTree.from_tiling(tree, tiling, 3)
        # Levels 0-1 in the root tile, levels 2-3 in its children: leaves
        # (level 4) land at tiled depth 2, halving the walk length.
        assert tiled.max_leaf_depth == 2

    def test_tile_sizes_bounded(self, rng):
        tree = random_tree(rng, max_depth=7)
        for tile in basic_tiling(tree, 4):
            assert 1 <= len(tile) <= 4

    def test_root_tile_contains_root(self, rng):
        tree = random_tree(rng, max_depth=5)
        tiling = basic_tiling(tree, 4)
        if tiling:
            assert 0 in tiling[0]

    def test_chain_tree_groups_chain_nodes(self):
        tree = chain_tree(8)
        tiling = basic_tiling(tree, 4)
        # A chain of 8 internal nodes must form exactly two full tiles.
        assert sorted(len(t) for t in tiling) == [4, 4]


class TestProbabilityTiling:
    @pytest.mark.parametrize("nt", [1, 2, 4, 8])
    def test_valid_on_random_trees(self, rng, nt):
        for _ in range(10):
            tree = random_tree(rng, max_depth=6)
            tree.node_probability = uniform_node_probabilities(tree)
            tiling = probability_tiling(tree, nt)
            check_valid_tiling(tree, tiling, nt)

    def test_uses_uniform_fallback_without_stats(self, rng):
        tree = random_tree(rng, max_depth=5)
        tree.node_probability = None
        tiling = probability_tiling(tree, 4)
        check_valid_tiling(tree, tiling, 4)

    def test_hot_path_shortened(self):
        """With mass concentrated on the deep-left path, probability tiling
        must put the hot leaf at a shallower tiled depth than basic tiling."""
        tree = chain_tree(8)
        rows = np.full((100, 1), -100.0)  # all rows walk the full left chain
        tree.node_probability = leaf_probabilities(tree, rows)
        nt = 4
        prob_tiled = TiledTree.from_tiling(tree, probability_tiling(tree, nt), nt)
        basic_tiled = TiledTree.from_tiling(tree, basic_tiling(tree, nt), nt)
        assert prob_tiled.expected_walk_length() <= basic_tiled.expected_walk_length()

    def test_expected_walk_length_objective(self, rng):
        """Probability tiling should never lose badly to basic tiling on the
        objective it optimizes (expected tiles per walk)."""
        for _ in range(5):
            tree = random_tree(rng, max_depth=7, leaf_prob=0.4)
            rows = rng.normal(size=(300, 8))
            tree.node_probability = leaf_probabilities(tree, rows)
            nt = 4
            p = TiledTree.from_tiling(tree, probability_tiling(tree, nt), nt)
            b = TiledTree.from_tiling(tree, basic_tiling(tree, nt), nt)
            assert p.expected_walk_length() <= b.expected_walk_length() + 1.0

    def test_shape_mismatch_rejected(self):
        tree = complete_tree(2)
        with pytest.raises(TilingError):
            probability_tiling(tree, 4, probabilities=np.ones(2))


class TestHybridTiling:
    def test_unbiased_tree_uses_basic(self, rng):
        tree = random_tree(rng, max_depth=5)
        rows = rng.normal(size=(200, 8))
        tree.node_probability = leaf_probabilities(tree, rows)
        assert hybrid_tiling(tree, 4, alpha=1e-9, beta=0.9) == basic_tiling(tree, 4)

    def test_biased_tree_uses_probability(self):
        tree = chain_tree(6)
        rows = np.full((100, 1), -100.0)
        tree.node_probability = leaf_probabilities(tree, rows)
        assert hybrid_tiling(tree, 3, alpha=0.5, beta=0.9) == probability_tiling(tree, 3)

    def test_without_stats_uses_basic(self, rng):
        tree = random_tree(rng, max_depth=4)
        tree.node_probability = None
        assert hybrid_tiling(tree, 4) == basic_tiling(tree, 4)


class TestValidityChecker:
    def _tree(self):
        return complete_tree(3)

    def test_missing_node_rejected(self):
        tree = self._tree()
        tiling = basic_tiling(tree, 2)
        with pytest.raises(TilingError, match="[Pp]artitioning"):
            check_valid_tiling(tree, tiling[:-1], 2)

    def test_duplicate_node_rejected(self):
        tree = self._tree()
        tiling = basic_tiling(tree, 2)
        bad = tiling + [tiling[0]]
        with pytest.raises(TilingError, match="[Pp]artitioning|multiple"):
            check_valid_tiling(tree, bad, 2)

    def test_leaf_in_tile_rejected(self):
        tree = self._tree()
        leaf = int(tree.leaves()[0])
        tiling = basic_tiling(tree, 2)
        bad = [list(tiling[0]) + [leaf]] + tiling[1:]
        with pytest.raises(TilingError, match="[Ll]eaf separation"):
            check_valid_tiling(tree, bad, 3)

    def test_oversized_tile_rejected(self):
        tree = self._tree()
        tiling = basic_tiling(tree, 4)
        with pytest.raises(TilingError, match="exceed"):
            check_valid_tiling(tree, tiling, 2)

    def test_disconnected_tile_rejected(self):
        tree = self._tree()
        # Root plus a grandchild (skipping the child) is not connected.
        grandchild = int(tree.left[tree.left[0]])
        others = [n for n in map(int, tree.internal_nodes()) if n not in (0, grandchild)]
        bad = [[0, grandchild]] + [[n] for n in others]
        with pytest.raises(TilingError, match="onnected"):
            check_valid_tiling(tree, bad, 2)

    def test_non_maximal_tile_rejected(self):
        tree = self._tree()
        # Singleton tiles with tile size 2 violate maximality wherever a
        # tile borders a non-leaf node.
        bad = [[int(n)] for n in tree.internal_nodes()]
        with pytest.raises(TilingError, match="[Mm]aximal"):
            check_valid_tiling(tree, bad, 2)

    def test_empty_tile_rejected(self):
        tree = self._tree()
        with pytest.raises(TilingError, match="empty"):
            check_valid_tiling(tree, [[]], 2)

    def test_single_leaf_tree_requires_empty_tiling(self):
        b = TreeBuilder()
        b.leaf(1.0)
        tree = b.build()
        check_valid_tiling(tree, [], 4)
        with pytest.raises(TilingError):
            check_valid_tiling(tree, [[0]], 4)
