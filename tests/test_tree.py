"""Unit tests for the DecisionTree data model."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.forest.builder import TreeBuilder
from repro.forest.tree import LEAF, NO_NODE, DecisionTree

from conftest import random_tree


def simple_tree() -> DecisionTree:
    """x0 < 0.5 ? (x1 < -1 ? 1 : 2) : 3"""
    return TreeBuilder.from_nested(
        {
            "feature": 0,
            "threshold": 0.5,
            "left": {"feature": 1, "threshold": -1.0, "left": {"value": 1.0}, "right": {"value": 2.0}},
            "right": {"value": 3.0},
        }
    )


class TestStructure:
    def test_counts(self):
        tree = simple_tree()
        assert tree.num_nodes == 5
        assert tree.num_leaves == 3
        assert tree.root == 0

    def test_is_leaf(self):
        tree = simple_tree()
        assert not tree.is_leaf(0)
        leaves = tree.leaves()
        assert all(tree.is_leaf(int(leaf)) for leaf in leaves)

    def test_leaves_and_internal_partition(self):
        tree = simple_tree()
        ids = sorted(tree.leaves().tolist() + tree.internal_nodes().tolist())
        assert ids == list(range(tree.num_nodes))

    def test_children(self):
        tree = simple_tree()
        left, right = tree.children(0)
        assert {left, right}.issubset(set(range(1, 5)))

    def test_parents(self):
        tree = simple_tree()
        parents = tree.parents()
        assert parents[0] == NO_NODE
        for node in range(1, tree.num_nodes):
            parent = int(parents[node])
            assert node in tree.children(parent)

    def test_depths(self):
        tree = simple_tree()
        depths = tree.depths()
        assert depths[0] == 0
        assert tree.max_depth == 2

    def test_preorder_visits_all_once(self):
        tree = simple_tree()
        order = list(tree.iter_preorder())
        assert sorted(order) == list(range(tree.num_nodes))
        assert order[0] == 0

    def test_level_order_depth_monotone(self):
        tree = simple_tree()
        depths = tree.depths()
        order = [depths[n] for n in tree.iter_level_order()]
        assert order == sorted(order)

    def test_subtree_nodes(self):
        tree = simple_tree()
        left, _ = tree.children(0)
        sub = tree.subtree_nodes(left)
        assert left in sub
        assert 0 not in sub

    def test_structure_signature_ignores_parameters(self):
        a = simple_tree()
        b = simple_tree()
        b.threshold = b.threshold + 1.0
        b.value = b.value * 2
        assert a.structure_signature() == b.structure_signature()

    def test_structure_signature_differs_for_different_shapes(self):
        a = simple_tree()
        b = TreeBuilder.from_nested(
            {"feature": 0, "threshold": 0.0, "left": {"value": 1.0}, "right": {"value": 2.0}}
        )
        assert a.structure_signature() != b.structure_signature()


class TestPrediction:
    def test_predict_row_goes_left_when_less(self):
        tree = simple_tree()
        assert tree.predict_row(np.array([0.0, -2.0])) == 1.0
        assert tree.predict_row(np.array([0.0, 0.0])) == 2.0
        assert tree.predict_row(np.array([1.0, 0.0])) == 3.0

    def test_predicate_is_strict(self):
        tree = simple_tree()
        # x0 == threshold must go right (x < t is false).
        assert tree.predict_row(np.array([0.5, 0.0])) == 3.0

    def test_vectorized_matches_scalar(self, rng):
        tree = random_tree(rng, max_depth=6)
        rows = rng.normal(size=(200, 8))
        vec = tree.predict(rows)
        scalar = np.array([tree.predict_row(r) for r in rows])
        assert np.array_equal(vec, scalar)

    def test_leaves_for_rows_matches_leaf_for_row(self, rng):
        tree = random_tree(rng, max_depth=5)
        rows = rng.normal(size=(50, 8))
        vec = tree.leaves_for_rows(rows)
        scalar = np.array([tree.leaf_for_row(r) for r in rows])
        assert np.array_equal(vec, scalar)

    def test_single_leaf_tree(self):
        tree = DecisionTree(
            feature=[LEAF], threshold=[0.0], left=[NO_NODE], right=[NO_NODE], value=[42.0]
        )
        assert tree.predict_row(np.zeros(3)) == 42.0
        assert np.array_equal(tree.predict(np.zeros((4, 3))), np.full(4, 42.0))


class TestValidation:
    def test_empty_tree_rejected(self):
        with pytest.raises(ModelError, match="no nodes"):
            DecisionTree(feature=[], threshold=[], left=[], right=[], value=[])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ModelError, match="shape"):
            DecisionTree(
                feature=[0], threshold=[0.0, 1.0], left=[NO_NODE], right=[NO_NODE], value=[0.0]
            )

    def test_half_leaf_rejected(self):
        with pytest.raises(ModelError, match="one child"):
            DecisionTree(
                feature=[0, LEAF],
                threshold=[0.0, 0.0],
                left=[1, NO_NODE],
                right=[NO_NODE, NO_NODE],
                value=[0.0, 1.0],
            )

    def test_multiple_parents_rejected(self):
        with pytest.raises(ModelError, match="multiple parents"):
            DecisionTree(
                feature=[0, 0, LEAF],
                threshold=[0.0, 0.0, 0.0],
                left=[1, 2, NO_NODE],
                right=[2, 2, NO_NODE],
                value=[0.0, 0.0, 1.0],
            )

    def test_root_as_child_rejected(self):
        with pytest.raises(ModelError, match="root"):
            DecisionTree(
                feature=[0, LEAF],
                threshold=[0.0, 0.0],
                left=[0, NO_NODE],
                right=[1, NO_NODE],
                value=[0.0, 1.0],
            )

    def test_out_of_range_child_rejected(self):
        with pytest.raises(ModelError, match="range"):
            DecisionTree(
                feature=[0],
                threshold=[0.0],
                left=[5],
                right=[6],
                value=[0.0],
            )

    def test_negative_feature_on_internal_rejected(self):
        with pytest.raises(ModelError, match="negative feature"):
            DecisionTree(
                feature=[-1, LEAF, LEAF],
                threshold=[0.0] * 3,
                left=[1, NO_NODE, NO_NODE],
                right=[2, NO_NODE, NO_NODE],
                value=[0.0, 1.0, 2.0],
            )


class TestSerialization:
    def test_roundtrip(self, rng):
        tree = random_tree(rng, max_depth=5)
        clone = DecisionTree.from_dict(tree.to_dict())
        assert clone.num_nodes == tree.num_nodes
        rows = rng.normal(size=(20, 8))
        assert np.array_equal(clone.predict(rows), tree.predict(rows))

    def test_roundtrip_preserves_probabilities(self, rng):
        tree = random_tree(rng, max_depth=4)
        tree.node_probability = np.linspace(0, 1, tree.num_nodes)
        clone = DecisionTree.from_dict(tree.to_dict())
        assert np.allclose(clone.node_probability, tree.node_probability)

    def test_repr_mentions_size(self):
        tree = simple_tree()
        assert "nodes=5" in repr(tree)
