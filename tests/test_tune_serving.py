"""Background autotuning inside the server: hot swaps, warm restarts,
concurrent load, and failure isolation."""

import threading

import numpy as np
import pytest

import repro.serve.server as server_mod
from repro.autotune.space import TuningSpace
from repro.config import Schedule
from repro.serve import ModelServer, ServerConfig

#: four candidates — background tunes in tests must finish in well under a
#: second so the concurrency tests exercise the swap window, not the grid
SMALL_SPACE = TuningSpace(
    tile_sizes=(1, 8), tilings=("basic",), pad_and_unroll=(True,),
    interleaves=(2, 8), layouts=("sparse",),
)


def fast_config(**overrides) -> ServerConfig:
    """Tuning-enabled config that never touches the user-level cache file."""
    defaults = dict(
        tune_cache_path=None,
        tune_repeats=1,
        tune_min_time_s=0.0,
        tune_max_configs=None,
        tune_time_budget_s=None,
        tune_patience=None,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestHotSwap:
    def test_serves_immediately_then_swaps_off_scalar_baseline(
        self, trained_forest, test_rows
    ):
        rows = test_rows[:32]
        with ModelServer(fast_config()) as server:
            session = server.register(
                "m", trained_forest, Schedule.scalar_baseline(),
                tune=True, tune_rows=rows, tune_space=SMALL_SPACE,
            )
            # The request path is live before the background tune settles.
            first = server.predict("m", rows)
            assert server.wait_for_tunes(timeout=120.0)
            snap = server.metrics_snapshot()["tuning"]
            assert snap["started"] == snap["completed"] == 1
            assert snap["failed"] == 0
            assert snap["hot_swaps"] == 1
            assert snap["last"]["swapped"] is True
            assert snap["last"]["explored"] == 4
            # The session now runs a grid schedule, not the scalar baseline.
            assert session.schedule != Schedule.scalar_baseline()
            assert session.schedule.loop_order == "one-tree"
            # Numerics are unchanged across the swap.
            assert np.allclose(server.predict("m", rows), first, rtol=1e-12)

    def test_synthetic_rows_when_sample_omitted(self, trained_forest):
        with ModelServer(fast_config()) as server:
            server.register(
                "m", trained_forest, Schedule.scalar_baseline(),
                tune=True, tune_space=SMALL_SPACE,
            )
            assert server.wait_for_tunes(timeout=120.0)
            assert server.metrics_snapshot()["tuning"]["completed"] == 1

    def test_unregistered_session_is_never_swapped(
        self, trained_forest, test_rows, monkeypatch
    ):
        """A tune whose session was unregistered mid-flight must not swap."""
        release = threading.Event()
        real = server_mod.autotune

        def gated(*args, **kwargs):
            release.wait(timeout=60.0)
            return real(*args, **kwargs)

        monkeypatch.setattr(server_mod, "autotune", gated)
        with ModelServer(fast_config()) as server:
            server.register(
                "m", trained_forest, Schedule.scalar_baseline(),
                tune=True, tune_rows=test_rows[:16], tune_space=SMALL_SPACE,
            )
            server.unregister("m")
            release.set()
            assert server.wait_for_tunes(timeout=120.0)
            snap = server.metrics_snapshot()["tuning"]
            assert snap["completed"] == 1
            assert snap["hot_swaps"] == 0
            assert snap["last"]["swapped"] is False

    def test_tune_failure_keeps_serving_on_baseline(
        self, trained_forest, test_rows, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise RuntimeError("tuner exploded")

        monkeypatch.setattr(server_mod, "autotune", boom)
        with ModelServer(fast_config()) as server:
            server.register(
                "m", trained_forest, Schedule.scalar_baseline(),
                tune=True, tune_rows=test_rows[:16],
            )
            assert server.wait_for_tunes(timeout=120.0)
            snap = server.metrics_snapshot()["tuning"]
            assert snap["failed"] == 1
            assert snap["hot_swaps"] == 0
            got = server.predict("m", test_rows[:16])
            assert np.allclose(
                got, trained_forest.predict(test_rows[:16]), rtol=1e-12
            )


class TestConcurrentLoad:
    def test_no_requests_dropped_or_double_counted_across_swap(
        self, trained_forest, test_rows
    ):
        rows = test_rows[:16]
        expected = trained_forest.predict(rows)
        n_threads, calls_per_thread = 8, 25
        errors: list[Exception] = []
        wrong: list[int] = []
        start = threading.Barrier(n_threads)

        with ModelServer(fast_config()) as server:
            server.register(
                "m", trained_forest, Schedule.scalar_baseline(),
                tune=True, tune_rows=rows, tune_space=SMALL_SPACE,
            )

            def hammer(tid: int) -> None:
                start.wait()
                for i in range(calls_per_thread):
                    try:
                        got = server.predict("m", rows)
                    except Exception as exc:  # noqa: BLE001 - collected
                        errors.append(exc)
                    else:
                        if not np.allclose(got, expected, rtol=1e-12):
                            wrong.append(tid * 1000 + i)

            threads = [
                threading.Thread(target=hammer, args=(t,))
                for t in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert server.wait_for_tunes(timeout=120.0)
            snap = server.metrics_snapshot()

        assert errors == []
        assert wrong == []
        assert snap["errors"] == 0
        # Exact accounting: every predict call is one request, no more.
        assert snap["requests"] == n_threads * calls_per_thread + 0
        assert snap["rows"] == n_threads * calls_per_thread * rows.shape[0]
        assert snap["tuning"]["completed"] == 1


class TestWarmRestart:
    def test_second_server_skips_search_and_still_swaps(
        self, trained_forest, test_rows, tmp_path
    ):
        rows = test_rows[:32]
        cache_path = str(tmp_path / "schedules.json")

        with ModelServer(fast_config(tune_cache_path=cache_path)) as server:
            server.register(
                "m", trained_forest, Schedule.scalar_baseline(),
                tune=True, tune_rows=rows, tune_space=SMALL_SPACE,
            )
            assert server.wait_for_tunes(timeout=120.0)
            cold = server.metrics_snapshot()["tuning"]
            assert cold["last"]["from_cache"] is False
            assert cold["last"]["explored"] == 4
            winner = server.session("m").schedule

        # "Restart": a fresh server over the same persisted cache file.
        with ModelServer(fast_config(tune_cache_path=cache_path)) as server:
            server.register(
                "m", trained_forest, Schedule.scalar_baseline(),
                tune=True, tune_rows=rows, tune_space=SMALL_SPACE,
            )
            assert server.wait_for_tunes(timeout=120.0)
            warm = server.metrics_snapshot()["tuning"]
            assert warm["cache_hits"] == 1
            assert warm["last"]["from_cache"] is True
            assert warm["last"]["explored"] == 0
            assert warm["last"]["swapped"] is True
            assert server.session("m").schedule == winner

    def test_different_batch_size_is_a_different_key(
        self, trained_forest, test_rows, tmp_path
    ):
        cache_path = str(tmp_path / "schedules.json")
        with ModelServer(fast_config(tune_cache_path=cache_path)) as server:
            server.register(
                "m", trained_forest, Schedule.scalar_baseline(),
                tune=True, tune_rows=test_rows[:32], tune_space=SMALL_SPACE,
            )
            assert server.wait_for_tunes(timeout=120.0)
        with ModelServer(fast_config(tune_cache_path=cache_path)) as server:
            server.register(
                "m", trained_forest, Schedule.scalar_baseline(),
                tune=True, tune_rows=test_rows[:16], tune_space=SMALL_SPACE,
            )
            assert server.wait_for_tunes(timeout=120.0)
            snap = server.metrics_snapshot()["tuning"]
            assert snap["last"]["from_cache"] is False  # 16 != 32 rows


class TestLifecycle:
    def test_close_waits_out_pending_tunes(self, trained_forest, test_rows):
        server = ModelServer(fast_config())
        server.register(
            "m", trained_forest, Schedule.scalar_baseline(),
            tune=True, tune_rows=test_rows[:16], tune_space=SMALL_SPACE,
        )
        server.close()  # must not leave a tune running against a dead server
        assert server.wait_for_tunes(timeout=1.0)

    def test_register_after_close_rejected(self, trained_forest):
        server = ModelServer(fast_config())
        server.close()
        from repro.errors import ServingError

        with pytest.raises(ServingError):
            server.register("m", trained_forest, tune=True)
