"""Adversarial-input regression suite across the Table-II schedule grid.

Every hostile input class the fuzzer generates — features exactly equal to
thresholds, ±inf, denormals, float32↔float64 boundary rows, empty/1-row
batches, non-contiguous and wrong-dtype rows — is driven through every
Table-II grid schedule at both precisions and checked against the
reference interpreter (which executes the same lowered buffers one node at
a time). At float64 the reference ``Forest`` must agree too.

This pins the semantics the paper leaves implicit: ``x < threshold`` routes
right on equality, padding predicates compare against ``+inf`` so inf
inputs cannot mis-route dummy tiles, and precision is applied identically
to rows, thresholds and leaf values in the kernel and the interpreter.
"""

import itertools

import numpy as np
import pytest

from conftest import random_forest_model
from repro.api import compile_model
from repro.backend.interpreter import interpret_lir
from repro.config import Schedule
from repro.forest.statistics import populate_node_probabilities

NUM_FEATURES = 6

TILE_SIZES = (1, 2, 4, 8)
TILINGS = ("basic", "probability", "hybrid")
LAYOUTS = ("array", "sparse")
LOOPS = (
    {"interleave": 1, "peel_walk": False, "pad_and_unroll": False},
    {"interleave": 4, "peel_walk": True, "pad_and_unroll": True},
)
PRECISIONS = ("float64", "float32")

GRID = [
    pytest.param(
        ts, tiling, layout, loops, precision,
        id=f"t{ts}-{tiling}-{layout}"
        f"-{'opt' if loops['interleave'] > 1 else 'plain'}-{precision}",
    )
    for ts, tiling, layout, loops, precision in itertools.product(
        TILE_SIZES, TILINGS, LAYOUTS, LOOPS, PRECISIONS
    )
]

#: loosest divergence the float32 chunk-summed kernel may show against the
#: float64-accumulating interpreter on these tiny models
TOLERANCES = {"float64": (1e-10, 1e-12), "float32": (3e-5, 1e-5)}


@pytest.fixture(scope="module")
def forest():
    forest = random_forest_model(
        np.random.default_rng(61), num_trees=6, max_depth=5, num_features=NUM_FEATURES
    )
    populate_node_probabilities(
        forest, np.random.default_rng(62).normal(size=(64, NUM_FEATURES))
    )
    return forest


def corpus(forest):
    """Deterministic hostile batches, one per input class."""
    rng = np.random.default_rng(63)
    thr = np.concatenate(
        [t.threshold[t.internal_nodes()] for t in forest.trees]
    )
    teq = rng.choice(thr, size=(5, NUM_FEATURES))
    above = np.nextafter(teq[:2], np.inf)
    below = np.nextafter(teq[:2], -np.inf)
    f32_collapse = np.float32(thr).astype(np.float64)[: NUM_FEATURES]
    f32_collapse = np.tile(f32_collapse, (2, 1))[:, :NUM_FEATURES]
    inf_rows = rng.normal(size=(4, NUM_FEATURES))
    inf_rows[0, :] = np.inf
    inf_rows[1, :] = -np.inf
    inf_rows[2, 0] = np.inf
    inf_rows[3, -1] = -np.inf
    denormals = np.full((2, NUM_FEATURES), 5e-324)
    denormals[1] = -1e-310
    wide = rng.normal(size=(6, 2 * NUM_FEATURES))
    tall = rng.normal(size=(12, NUM_FEATURES))
    return [
        ("empty", np.empty((0, NUM_FEATURES))),
        ("one-row", rng.normal(size=(1, NUM_FEATURES))),
        ("threshold-equal", teq),
        ("threshold-above", above),
        ("threshold-below", below),
        ("float32-boundary", f32_collapse),
        ("infinities", inf_rows),
        ("denormals", denormals),
        ("non-contiguous-cols", wide[:, ::2]),
        ("strided-rows", tall[::2]),
        ("wrong-dtype-f32", rng.normal(size=(3, NUM_FEATURES)).astype(np.float32)),
        (
            "wrong-dtype-f64",
            rng.normal(size=(3, NUM_FEATURES)).astype(np.float64),
        ),
    ]


@pytest.mark.parametrize("tile_size,tiling,layout,loops,precision", GRID)
def test_adversarial_corpus_matches_interpreter(
    forest, tile_size, tiling, layout, loops, precision
):
    schedule = Schedule(
        tile_size=tile_size,
        tiling=tiling,
        layout=layout,
        precision=precision,
        verify=True,  # every grid point passes the structural verifiers too
        **loops,
    )
    predictor = compile_model(forest, schedule)
    rtol, atol = TOLERANCES[precision]
    for label, rows in corpus(forest):
        got = predictor.raw_predict(rows)
        want = interpret_lir(predictor.lir, rows)[:, 0]
        np.testing.assert_allclose(
            got, want, rtol=rtol, atol=atol, err_msg=f"batch {label!r}"
        )
        if precision == "float64":
            ref = forest.raw_predict(np.ascontiguousarray(rows, dtype=np.float64))
            np.testing.assert_allclose(
                got, ref, rtol=rtol, atol=atol, err_msg=f"batch {label!r} vs Forest"
            )
