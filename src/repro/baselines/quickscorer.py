"""QuickScorer: bitvector-based ensemble traversal (Lucchese et al., SIGIR'15).

The paper cites QuickScorer as an orthogonal traversal strategy that could
be integrated into Treebeard; it is implemented here both as a baseline and
as that suggested extension. The algorithm inverts control: instead of
walking each tree, it visits only the *false* nodes (``x >= threshold``) of
the whole ensemble, ANDing away the leaves each false node makes
unreachable; the exit leaf of every tree is then the leftmost surviving bit.

False nodes are found with one binary search per feature over
threshold-sorted node lists, so per-row work is proportional to the number
of false nodes — excellent for small trees, but the per-tree bitvectors cap
the tree size (<= 64 leaves here), matching the scaling limitation the paper
notes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.forest.ensemble import Forest
from repro.forest.tree import DecisionTree

_MAX_LEAVES = 64


def _leaf_order(tree: DecisionTree) -> dict[int, int]:
    """Left-to-right (in-order) position of each leaf."""
    order: dict[int, int] = {}

    def visit(node: int) -> None:
        if tree.is_leaf(node):
            order[node] = len(order)
            return
        visit(int(tree.left[node]))
        visit(int(tree.right[node]))

    visit(0)
    return order


def _node_masks(tree: DecisionTree, leaf_pos: dict[int, int]) -> dict[int, int]:
    """For each internal node: bitvector clearing its left subtree's leaves."""
    full = (1 << len(leaf_pos)) - 1
    masks: dict[int, int] = {}

    def fill(node: int) -> int:
        """Returns the leaf bits under ``node``, recording masks on the way."""
        if tree.is_leaf(node):
            return 1 << leaf_pos[node]
        left_bits = fill(int(tree.left[node]))
        right_bits = fill(int(tree.right[node]))
        masks[node] = full & ~left_bits
        return left_bits | right_bits

    fill(0)
    return masks


class QuickScorerPredictor:
    """Bitvector ensemble scorer (trees limited to 64 leaves)."""

    name = "quickscorer"

    def __init__(self, forest: Forest) -> None:
        self.forest = forest
        for tree in forest.trees:
            if tree.num_leaves > _MAX_LEAVES:
                raise ModelError(
                    f"QuickScorer supports at most {_MAX_LEAVES} leaves per "
                    f"tree; tree {tree.tree_id} has {tree.num_leaves}"
                )
        self._build()

    def _build(self) -> None:
        forest = self.forest
        num_trees = forest.num_trees
        self.full_mask = np.zeros(num_trees, dtype=np.uint64)
        max_leaves = max(t.num_leaves for t in forest.trees)
        self.leaf_values = np.zeros((num_trees, max_leaves), dtype=np.float64)
        per_feature: dict[int, list[tuple[float, int, int]]] = {}
        for t, tree in enumerate(forest.trees):
            leaf_pos = _leaf_order(tree)
            self.full_mask[t] = (1 << tree.num_leaves) - 1
            for leaf, pos in leaf_pos.items():
                self.leaf_values[t, pos] = tree.value[leaf]
            masks = _node_masks(tree, leaf_pos)
            for node, mask in masks.items():
                per_feature.setdefault(int(tree.feature[node]), []).append(
                    (float(tree.threshold[node]), t, mask)
                )
        self.features = sorted(per_feature)
        self.thresholds: dict[int, np.ndarray] = {}
        self.tree_ids: dict[int, np.ndarray] = {}
        self.masks: dict[int, np.ndarray] = {}
        for f, entries in per_feature.items():
            entries.sort(key=lambda e: e[0])
            self.thresholds[f] = np.asarray([e[0] for e in entries], dtype=np.float64)
            self.tree_ids[f] = np.asarray([e[1] for e in entries], dtype=np.int64)
            self.masks[f] = np.asarray([e[2] for e in entries], dtype=np.uint64)
        self.class_ids = forest.class_ids()

    def raw_predict(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        forest = self.forest
        out = np.full((rows.shape[0], forest.num_classes), forest.base_score)
        tree_idx = np.arange(forest.num_trees)
        for i, row in enumerate(rows):
            v = self.full_mask.copy()
            for f in self.features:
                # Nodes with threshold <= x are false (x < t fails).
                count = int(np.searchsorted(self.thresholds[f], row[f], side="right"))
                if count:
                    np.bitwise_and.at(v, self.tree_ids[f][:count], self.masks[f][:count])
            # Leftmost surviving bit per tree = exit leaf position.
            low = v & (np.uint64(0) - v)
            leaf = np.log2(low.astype(np.float64)).astype(np.int64)
            np.add.at(out[i], self.class_ids, self.leaf_values[tree_idx, leaf])
        return out[:, 0] if forest.num_classes == 1 else out
