"""Hummingbird's GEMM strategy: tree inference as tensor algebra.

Hummingbird (OSDI'20) compiles a tree into three tensor operations so the
model can run on tensor runtimes:

1. ``Z = (X @ A) < B`` — evaluate *every* internal node of every tree
   (A selects each node's feature, B holds thresholds);
2. ``S = Z @ C`` and ``P = (S == D)`` — match the complete decision pattern
   against every root-to-leaf path (C has +1 for "leaf is in the left
   subtree of node", -1 for right; D counts the left turns on the path);
3. ``pred = P @ E`` — pick out each matched leaf's value.

The strategy does O(total nodes) work per row regardless of which path a
walk would take — precisely why the paper's Treebeard beats it on big
models. A and C are block-diagonal across trees and stored sparse
(scipy when available, with a dense NumPy fallback).
"""

from __future__ import annotations

import numpy as np

from repro.forest.ensemble import Forest

try:  # pragma: no cover - availability depends on the environment
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover
    _sparse = None


class HummingbirdGEMMPredictor:
    """The GEMM compilation strategy, stacked across all trees."""

    name = "hummingbird-gemm"

    def __init__(self, forest: Forest, use_sparse: bool | None = None) -> None:
        self.forest = forest
        if use_sparse is None:
            use_sparse = _sparse is not None
        if use_sparse and _sparse is None:
            raise ImportError("scipy is required for the sparse GEMM path")
        self.use_sparse = use_sparse
        self._build()

    def _build(self) -> None:
        forest = self.forest
        a_rows, a_cols = [], []          # feature-selection matrix A (F x I)
        thresholds = []                  # B (I,)
        c_rows, c_cols, c_vals = [], [], []  # path matrix C (I x L)
        d_vals = []                      # left-turn counts D (L,)
        e_vals = []                      # leaf values E (L,)
        leaf_class = []                  # class id per leaf column
        node_base = 0
        leaf_base = 0
        for tree in forest.trees:
            internal = tree.internal_nodes()
            leaves = tree.leaves()
            node_col = {int(n): node_base + i for i, n in enumerate(internal)}
            leaf_col = {int(l): leaf_base + i for i, l in enumerate(leaves)}
            for n in internal:
                a_rows.append(int(tree.feature[n]))
                a_cols.append(node_col[int(n)])
                thresholds.append(float(tree.threshold[n]))
            # Path constraints: walk from each leaf up is equivalent to a
            # preorder pass recording each internal node's side per leaf.
            def mark(node: int, constraints: list[tuple[int, int]], lefts: int) -> None:
                if tree.is_leaf(node):
                    col = leaf_col[node]
                    for nc, sign in constraints:
                        c_rows.append(nc)
                        c_cols.append(col)
                        c_vals.append(sign)
                    d_vals.append(lefts)
                    e_vals.append(float(tree.value[node]))
                    leaf_class.append(tree.class_id)
                    return
                nc = node_col[node]
                mark(int(tree.left[node]), constraints + [(nc, 1)], lefts + 1)
                mark(int(tree.right[node]), constraints + [(nc, -1)], lefts)

            mark(0, [], 0)
            node_base += len(internal)
            leaf_base += len(leaves)

        num_internal = node_base
        num_leaves = leaf_base
        self.B = np.asarray(thresholds, dtype=np.float64)
        self.D = np.asarray(d_vals, dtype=np.int32)
        self.E = np.asarray(e_vals, dtype=np.float64)
        self.leaf_onehot = np.zeros((num_leaves, forest.num_classes), dtype=np.float64)
        self.leaf_onehot[np.arange(num_leaves), leaf_class] = self.E
        if self.use_sparse:
            self.A = _sparse.csr_matrix(
                (np.ones(len(a_rows)), (a_rows, a_cols)),
                shape=(forest.num_features, num_internal),
            )
            self.C = _sparse.csr_matrix(
                (np.asarray(c_vals, dtype=np.float64), (c_rows, c_cols)),
                shape=(num_internal, num_leaves),
            )
        else:
            self.A = np.zeros((forest.num_features, num_internal))
            self.A[a_rows, a_cols] = 1.0
            self.C = np.zeros((num_internal, num_leaves))
            self.C[c_rows, c_cols] = c_vals

    def raw_predict(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        # GEMM 1: evaluate all node predicates.
        gathered = rows @ self.A if not self.use_sparse else rows @ self.A
        z = (gathered < self.B).astype(np.float64)
        # GEMM 2: match decision patterns against all paths. A leaf matches
        # when its left-turn predicates are all 1 and right-turn all 0:
        # sum(+1*z) - sum(-1*(1-z)) == lefts  <=>  z @ C + (#right on path
        # with z=0 contribute 0) ... using signed C, z @ C == D exactly when
        # every left-edge node fired and no right-edge node fired.
        s = z @ self.C
        p = s == self.D
        # GEMM 3: select leaf values (per class).
        out = p @ self.leaf_onehot
        out += self.forest.base_score
        return out[:, 0] if self.forest.num_classes == 1 else out
