"""XGBoost-style library predictors.

Both variants traverse plain binary trees stored as flat node arrays — no
tiling, no LUT, no model specialization, exactly the library strategy the
paper contrasts with compilation. The two loop orders reproduce the change
XGBoost made between v0.9 and v1.5 (PR #6127), which the paper analyzes in
Sections VI-C and VI-E (*OneRow* vs *OneTree*):

* :class:`XGBoostV15Predictor` — one tree at a time for the whole batch,
  stepping every row through a tree level by level (good tree reuse).
* :class:`XGBoostV09Predictor` — one row at a time over all trees.
"""

from __future__ import annotations

import numpy as np

from repro.forest.ensemble import Forest


class _FlatTrees:
    """All trees packed into contiguous node arrays with per-tree offsets."""

    def __init__(self, forest: Forest) -> None:
        offsets = np.zeros(forest.num_trees + 1, dtype=np.int64)
        for i, tree in enumerate(forest.trees):
            offsets[i + 1] = offsets[i] + tree.num_nodes
        total = int(offsets[-1])
        self.offsets = offsets
        self.feature = np.empty(total, dtype=np.int32)
        self.threshold = np.empty(total, dtype=np.float64)
        self.left = np.empty(total, dtype=np.int64)
        self.right = np.empty(total, dtype=np.int64)
        self.value = np.empty(total, dtype=np.float64)
        for i, tree in enumerate(forest.trees):
            lo, hi = offsets[i], offsets[i + 1]
            self.feature[lo:hi] = tree.feature
            self.threshold[lo:hi] = tree.threshold
            # Child ids are rebased so node indices are global.
            has_kids = tree.left != -1
            self.left[lo:hi] = np.where(has_kids, tree.left + lo, -1)
            self.right[lo:hi] = np.where(has_kids, tree.right + lo, -1)
            self.value[lo:hi] = tree.value
        self.class_ids = forest.class_ids()


class XGBoostV15Predictor:
    """One-tree-at-a-time batch traversal (XGBoost >= 1.5 loop order)."""

    name = "xgboost-v1.5"

    def __init__(self, forest: Forest) -> None:
        self.forest = forest
        self.flat = _FlatTrees(forest)

    def raw_predict(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        n = rows.shape[0]
        forest = self.forest
        flat = self.flat
        out = np.full((n, forest.num_classes), forest.base_score)
        ridx = np.arange(n)
        for t in range(forest.num_trees):
            node = np.full(n, flat.offsets[t], dtype=np.int64)
            active = flat.left[node] != -1
            while active.any():
                cur = node[active]
                go_left = rows[ridx[active], flat.feature[cur]] < flat.threshold[cur]
                node[active] = np.where(go_left, flat.left[cur], flat.right[cur])
                active = flat.left[node] != -1
            out[:, flat.class_ids[t]] += flat.value[node]
        return out[:, 0] if forest.num_classes == 1 else out


class XGBoostV09Predictor:
    """One-row-at-a-time traversal (XGBoost < 1.0 loop order)."""

    name = "xgboost-v0.9"

    def __init__(self, forest: Forest) -> None:
        self.forest = forest
        self.flat = _FlatTrees(forest)

    def raw_predict(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        forest = self.forest
        flat = self.flat
        feature, threshold = flat.feature, flat.threshold
        left, right, value = flat.left, flat.right, flat.value
        out = np.full((rows.shape[0], forest.num_classes), forest.base_score)
        roots = flat.offsets[:-1]
        for i, row in enumerate(rows):
            acc = out[i]
            for t, root in enumerate(roots):
                node = root
                while left[node] != -1:
                    if row[feature[node]] < threshold[node]:
                        node = left[node]
                    else:
                        node = right[node]
                acc[flat.class_ids[t]] += value[node]
        return out[:, 0] if forest.num_classes == 1 else out
