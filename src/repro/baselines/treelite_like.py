"""Treelite-style compilation: aggressive if-else expansion.

Treelite compiles every tree of the ensemble into nested if-else statements.
This reimplementation generates the same shape of code in Python — one
function per tree, each a literal transcription of the tree's branches with
constants inlined — and compiles it with :func:`compile`. The strategy's
characteristic costs carry over: code size grows with the model (the paper
measures Treelite as heavily front-end bound from instruction-cache misses
and branch mispredictions), and every row is processed with scalar control
flow.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodegenError
from repro.forest.ensemble import Forest
from repro.forest.tree import DecisionTree


def emit_tree_function(tree: DecisionTree, name: str) -> str:
    """Emit one tree as a nested if-else Python function of a row."""
    lines = [f"def {name}(row):"]

    def emit(node: int, depth: int) -> None:
        pad = "    " * depth
        if tree.is_leaf(node):
            lines.append(f"{pad}return {float(tree.value[node])!r}")
            return
        lines.append(
            f"{pad}if row[{int(tree.feature[node])}] < {float(tree.threshold[node])!r}:"
        )
        emit(int(tree.left[node]), depth + 1)
        lines.append(f"{pad}else:")
        emit(int(tree.right[node]), depth + 1)

    emit(0, 1)
    return "\n".join(lines)


class TreelitePredictor:
    """If-else compiled ensemble, one generated function per tree."""

    name = "treelite"

    def __init__(self, forest: Forest) -> None:
        self.forest = forest
        parts = [emit_tree_function(t, f"tree_{i}") for i, t in enumerate(forest.trees)]
        self.source = "\n\n".join(parts)
        namespace: dict = {}
        try:
            exec(compile(self.source, "<treelite-like>", "exec"), namespace)
        except (SyntaxError, RecursionError) as exc:
            raise CodegenError(f"if-else expansion failed: {exc}") from exc
        self.tree_funcs = [namespace[f"tree_{i}"] for i in range(forest.num_trees)]
        self.class_ids = forest.class_ids()

    @property
    def code_size_chars(self) -> int:
        """Generated source size — the strategy's instruction-footprint proxy."""
        return len(self.source)

    def raw_predict(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        forest = self.forest
        out = np.full((rows.shape[0], forest.num_classes), forest.base_score)
        funcs = self.tree_funcs
        class_ids = self.class_ids
        for i, row in enumerate(rows):
            acc = out[i]
            for t, fn in enumerate(funcs):
                acc[class_ids[t]] += fn(row)
        return out[:, 0] if forest.num_classes == 1 else out
