"""Reimplementations of the systems the paper compares against.

Each baseline implements the same strategy as its namesake so the *relative*
performance picture of Section VI can be reproduced without the original
closed/native dependencies:

* :class:`ScalarReferencePredictor` — naive per-row binary tree walk.
* :class:`XGBoostV15Predictor` — one-tree-at-a-time vectorized traversal
  over flat node arrays (the loop order XGBoost switched to in v1.5).
* :class:`XGBoostV09Predictor` — the older one-row-at-a-time order.
* :class:`TreelitePredictor` — per-tree nested if-else code generation
  (aggressive expansion; large instruction footprint).
* :class:`HummingbirdGEMMPredictor` — the tensor (GEMM) strategy: inference
  as matrix products, doing O(#nodes) work per row regardless of path.
* :class:`QuickScorerPredictor` — the bitvector algorithm of Lucchese et
  al., which the paper cites as an integrable alternative traversal.

All expose ``raw_predict(rows)`` with the same semantics as
``Forest.raw_predict`` and are verified against it in the tests.
"""

from repro.baselines.hummingbird_like import HummingbirdGEMMPredictor
from repro.baselines.quickscorer import QuickScorerPredictor
from repro.baselines.scalar import ScalarReferencePredictor
from repro.baselines.treelite_like import TreelitePredictor
from repro.baselines.xgboost_like import XGBoostV09Predictor, XGBoostV15Predictor

__all__ = [
    "HummingbirdGEMMPredictor",
    "QuickScorerPredictor",
    "ScalarReferencePredictor",
    "TreelitePredictor",
    "XGBoostV09Predictor",
    "XGBoostV15Predictor",
]
