"""Naive scalar inference: the textbook per-row binary tree walk."""

from __future__ import annotations

import numpy as np

from repro.forest.ensemble import Forest


class ScalarReferencePredictor:
    """Per-row, per-tree scalar traversal with no optimizations.

    This is the unvectorized reference everything else is compared against
    in unit tests; it is also the closest analog to a naively written C
    implementation (the paper's "naïve implementation strategies").
    """

    name = "scalar-reference"

    def __init__(self, forest: Forest) -> None:
        self.forest = forest

    def raw_predict(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        forest = self.forest
        out = np.full((rows.shape[0], forest.num_classes), forest.base_score)
        for i, row in enumerate(rows):
            for tree in forest.trees:
                node = 0
                left = tree.left
                while left[node] != -1:
                    if row[tree.feature[node]] < tree.threshold[node]:
                        node = left[node]
                    else:
                        node = tree.right[node]
                out[i, tree.class_id] += tree.value[node]
        return out[:, 0] if forest.num_classes == 1 else out
