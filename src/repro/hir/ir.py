"""The high-level IR module and its construction pass.

:class:`HIRModule` is the top of the lowering pipeline: the forest abstractly
represented as a set of (tiled, possibly padded, reordered) trees plus the
schedule annotations that later passes consume — exactly the role of the
paper's highest abstraction level, where ``predictForest`` is a set of
decision trees and tiling/ordering decisions are recorded as attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import Schedule
from repro.forest.ensemble import Forest
from repro.hir.padding import pad_to_uniform_depth
from repro.observe.stats import padding_stats, reorder_stats, tiling_stats
from repro.observe.trace import CompilationTrace
from repro.hir.reorder import TreeGroup, reorder_trees
from repro.hir.tiling.basic import basic_tiling
from repro.hir.tiling.hybrid import hybrid_tiling
from repro.hir.tiling.optimal import optimal_tiling
from repro.hir.tiling.probability import probability_tiling
from repro.hir.tiling.shapes import ShapeRegistry
from repro.hir.tiling.tile import TiledTree


@dataclass
class HIRModule:
    """The model after all high-level (Section III) transformations.

    Attributes
    ----------
    forest:
        The source ensemble (unmodified).
    schedule:
        The compilation schedule; later stages read their decisions here.
    tiled_trees:
        One :class:`TiledTree` per forest tree, in forest order.
    groups:
        Code-sharing tree groups in emission order (tree reordering).
    shape_registry:
        Every tile shape occurring in the tiled model, with stable ids.
    lut:
        The statically computed traversal lookup table
        ``lut[shape_id, predicate_bits] -> child index`` (Section V-A2).
    """

    forest: Forest
    schedule: Schedule
    tiled_trees: list[TiledTree]
    groups: list[TreeGroup]
    shape_registry: ShapeRegistry
    lut: np.ndarray

    @property
    def num_trees(self) -> int:
        return len(self.tiled_trees)

    def shape_id(self, shape) -> int:
        """Shape id lookup (shapes were all registered during build)."""
        return self.shape_registry.register(shape)


def _tile_tree(tree, schedule: Schedule):
    if schedule.tiling == "basic":
        return basic_tiling(tree, schedule.tile_size)
    if schedule.tiling == "probability":
        return probability_tiling(tree, schedule.tile_size)
    if schedule.tiling == "optimal":
        return optimal_tiling(tree, schedule.tile_size)
    return hybrid_tiling(tree, schedule.tile_size, alpha=schedule.alpha, beta=schedule.beta)


def build_hir(
    forest: Forest,
    schedule: Schedule,
    validate: bool = True,
    trace: CompilationTrace | None = None,
) -> HIRModule:
    """Run all HIR transformations: tile, pad, reorder, register shapes.

    ``validate`` controls whether each produced tiling is re-checked against
    the Section III-B1 constraints (kept on by default; the check is linear
    in model size). ``trace`` receives one timed span per transformation,
    each carrying its IR statistics (tile-shape histogram, padding overhead,
    group structure).
    """
    trace = trace or CompilationTrace()
    tiled_trees: list[TiledTree] = []
    with trace.span("tiling") as span:
        for tree in forest.trees:
            tiling = _tile_tree(tree, schedule)
            tiled = TiledTree.from_tiling(
                tree, tiling, schedule.tile_size, validate=validate
            )
            tiled_trees.append(tiled)

    with trace.span("padding") as pad_span:
        if schedule.pad_and_unroll:
            for tiled in tiled_trees:
                pad_to_uniform_depth(tiled, max_slack=schedule.pad_max_slack)

    # Guarded (non-unrolled) walks share one kernel for any tree, so all
    # trees merge into a single depth-sorted group; unrolled walks need
    # depth-homogeneous groups.
    with trace.span("reorder") as reorder_span:
        groups = reorder_trees(
            tiled_trees,
            enabled=schedule.reorder,
            merge=not schedule.pad_and_unroll,
        )
        if schedule.pgo is not None and schedule.traversal == "tiled":
            # Profile-guided hot/cold split: annotate each group with its
            # legal hot-depth cutoff (quickscorer ignores the knob — it
            # has no tile walk to split).
            from repro.pgo import resolve_hot_depths

            decision = resolve_hot_depths(schedule, groups, tiled_trees)
            for group in groups:
                group.hot_depth = decision.per_group.get(group.group_id, 0)
            reorder_span.stats["pgo"] = decision.describe()

    with trace.span("shape-registry"):
        registry = ShapeRegistry(schedule.tile_size)
        for tiled in tiled_trees:
            for tile in tiled.tiles:
                if tile.shape is not None:
                    registry.register(tile.shape)
        lut = registry.build_lut()
    module = HIRModule(
        forest=forest,
        schedule=schedule,
        tiled_trees=tiled_trees,
        groups=groups,
        shape_registry=registry,
        lut=lut,
    )
    # Stats are collected after construction so each span reports on the
    # *final* module state its transformation produced (padding mutates the
    # tilings in place; the tiling span still excludes dummy tiles).
    span.stats.update(tiling_stats(module))
    pad_span.stats.update(padding_stats(module))
    reorder_span.stats.update(reorder_stats(module))
    return module
