"""Tree reordering: grouping trees that can share traversal code.

Section III-F: generating distinct code per tree bloats the instruction
footprint, and cross-tree optimizations (walk interleaving) work best when
jammed walks share code. The compiler therefore groups trees by walk-depth
compatibility and sorts groups by depth; the loop nest then walks each group
with one piece of code. Because ensemble predictions are sums, reordering
trees never changes the result (up to float accumulation order, which the
backend keeps fixed per group).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hir.tiling.tile import TiledTree


@dataclass
class TreeGroup:
    """A set of trees that share one generated walk kernel.

    Attributes
    ----------
    group_id:
        Position of the group in emission order.
    tree_indices:
        Indices into the model's tree list (original ensemble order).
    depth:
        Maximum leaf-tile depth across members — the walk-step count for
        unrolled kernels, and the worst case for loop kernels.
    uniform:
        True when every member has all leaves at exactly ``depth`` (after
        padding); only then may the walk be fully unrolled with no leaf
        checks.
    min_leaf_depth:
        Smallest leaf depth across members; the peeling pass may skip leaf
        checks for the first ``min_leaf_depth - 1`` steps.
    hot_depth:
        Profile-guided hot/cold cutoff (``repro.pgo``): the first
        ``hot_depth`` tile levels are compiled as a check-free hot prefix
        over compact contiguous buffers. 0 (the default) disables the
        split; legal values are ``1 <= hot_depth < min_leaf_depth``.
    """

    group_id: int
    tree_indices: list[int] = field(default_factory=list)
    depth: int = 0
    uniform: bool = False
    min_leaf_depth: int = 0
    hot_depth: int = 0

    @property
    def num_trees(self) -> int:
        return len(self.tree_indices)


def _group_stats(tiled_trees: list[TiledTree], indices: list[int], gid: int) -> TreeGroup:
    members = [tiled_trees[i] for i in indices]
    depth = max(t.max_leaf_depth for t in members)
    uniform = all(t.is_uniform_depth and t.max_leaf_depth == depth for t in members)
    return TreeGroup(
        group_id=gid,
        tree_indices=list(indices),
        depth=depth,
        uniform=uniform,
        min_leaf_depth=min(t.min_leaf_depth for t in members),
    )


def reorder_trees(
    tiled_trees: list[TiledTree], enabled: bool = True, merge: bool = False
) -> list[TreeGroup]:
    """Partition trees into code-sharing groups, sorted by walk depth.

    With reordering enabled, trees with equal maximum leaf-tile depth share
    a group (isomorphic padded trees necessarily land together, so unrolled
    kernels are shared exactly as in the paper). ``merge=True`` — used when
    walks stay guarded loops rather than unrolled straight-line code — puts
    *every* tree into one depth-sorted group: the guarded walk is the same
    code for any tree, and sorting by depth makes jammed lanes finish
    together. Disabled, every tree is its own group in original order — the
    configuration used by the scalar baseline.
    """
    if not enabled:
        return [
            _group_stats(tiled_trees, [i], gid)
            for gid, i in enumerate(range(len(tiled_trees)))
        ]
    order = sorted(range(len(tiled_trees)), key=lambda i: tiled_trees[i].max_leaf_depth)
    if merge:
        # Depth-0 (single-leaf) trees fold into compile-time constants and
        # must not share buffers with walking trees.
        trivial = [i for i in order if tiled_trees[i].max_leaf_depth == 0]
        walking = [i for i in order if tiled_trees[i].max_leaf_depth > 0]
        groups = []
        if trivial:
            groups.append(_group_stats(tiled_trees, trivial, len(groups)))
        if walking:
            groups.append(_group_stats(tiled_trees, walking, len(groups)))
        return groups
    by_depth: dict[int, list[int]] = {}
    for i in order:
        by_depth.setdefault(tiled_trees[i].max_leaf_depth, []).append(i)
    groups = []
    for gid, depth in enumerate(sorted(by_depth)):
        groups.append(_group_stats(tiled_trees, by_depth[depth], gid))
    return groups
