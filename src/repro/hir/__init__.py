"""High-level IR: the model as a set of (tiled) trees.

This level implements the paper's Section III: tree tiling (basic and
probability-based), tile shapes and their registry, tree padding, and tree
reordering. The output of this stage — an :class:`HIRModule` holding one
:class:`TiledTree` per model tree plus scheduling attributes — is lowered to
the mid-level loop IR by :mod:`repro.hir.lowering`.
"""

from repro.hir.ir import HIRModule, build_hir
from repro.hir.padding import pad_to_uniform_depth
from repro.hir.reorder import TreeGroup, reorder_trees
from repro.hir.tiling import (
    ShapeRegistry,
    Tile,
    TiledTree,
    basic_tiling,
    check_valid_tiling,
    hybrid_tiling,
    probability_tiling,
)

__all__ = [
    "HIRModule",
    "ShapeRegistry",
    "Tile",
    "TiledTree",
    "TreeGroup",
    "basic_tiling",
    "build_hir",
    "check_valid_tiling",
    "hybrid_tiling",
    "pad_to_uniform_depth",
    "probability_tiling",
    "reorder_trees",
]
