"""Tree padding: making tiled trees uniform-depth with dummy tiles.

Section III-F: the compiler "pads trees with dummy tiles to make them
balanced", which lets the tree walk be fully unrolled without any leaf
checks (Section IV-B) and lets more trees share identical traversal code.
Dummy tiles carry always-true predicates, so they deterministically route to
their single (index 0) child; inserting a chain of ``d`` dummies above a leaf
tile raises that leaf's depth by ``d`` without changing predictions.

Padding is only worthwhile for *almost balanced* trees — the
``max_slack`` parameter bounds how much extra walking the padding may add.
"""

from __future__ import annotations

from repro.hir.tiling.tile import TiledTree


def padding_cost(tiled: TiledTree) -> float:
    """Expected number of extra tile evaluations padding would add."""
    target = tiled.max_leaf_depth
    return float(
        sum(t.probability * (target - t.depth) for t in tiled.leaf_tiles())
    )


def pad_to_uniform_depth(tiled: TiledTree, max_slack: int | None = None) -> bool:
    """Pad ``tiled`` in place so every leaf tile sits at the same depth.

    Parameters
    ----------
    max_slack:
        When given, padding is skipped (returning False) unless
        ``max_leaf_depth - min_leaf_depth <= max_slack`` — the "almost
        balanced" gate of Section III-F.

    Returns
    -------
    bool
        True when the tree is uniform-depth on return (padded now or
        already uniform), False when padding was declined.
    """
    if tiled.root.is_leaf:
        return True
    target = tiled.max_leaf_depth
    slack = target - tiled.min_leaf_depth
    if slack == 0:
        return True
    if max_slack is not None and slack > max_slack:
        return False
    shallow = [t.tile_id for t in tiled.leaf_tiles() if t.depth < target]
    for tile_id in shallow:
        tiled.insert_dummy_chain(tile_id, target - tiled.tiles[tile_id].depth)
    assert tiled.is_uniform_depth
    return True
