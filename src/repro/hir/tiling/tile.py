"""Tiled trees: the n-ary trees produced by tree tiling.

A :class:`TiledTree` wraps a binary :class:`~repro.forest.tree.DecisionTree`
together with a valid tiling of its nodes. Internal tiles hold up to
``tile_size`` original internal nodes (canonically ordered, with a shape key
from :mod:`repro.hir.tiling.shapes`); every original leaf becomes its own
leaf tile (the *leaf separation* constraint). Tree padding may additionally
insert *dummy* tiles — tiles with no original nodes whose predicates are
always true, so the walk deterministically falls through to child 0.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TilingError
from repro.forest.tree import DecisionTree
from repro.hir.tiling.shapes import (
    ShapeKey,
    left_chain_shape,
    out_edge_order,
    shape_child_for_bits,
    shape_key_of_tile,
)
from repro.hir.tiling.validity import check_valid_tiling


@dataclass
class Tile:
    """One tile of a tiled tree.

    Attributes
    ----------
    tile_id:
        Index of this tile within its :class:`TiledTree`.
    nodes:
        Original node ids in intra-tile level order; a single leaf id for
        leaf tiles; empty for dummy tiles.
    shape:
        Canonical shape key (``None`` for leaf tiles).
    children:
        Child tile ids in left-to-right out-edge order. Internal tiles with
        ``k`` nodes have exactly ``k + 1`` children; dummy tiles have one;
        leaf tiles none.
    parent:
        Parent tile id, or -1 for the root tile.
    depth:
        Distance from the root tile.
    probability:
        Probability a walk visits this tile (from the tile root node's
        training statistics); 0 when statistics are unavailable.
    is_leaf / is_dummy:
        Tile kind flags.
    """

    tile_id: int
    nodes: tuple[int, ...]
    shape: ShapeKey | None
    children: list[int] = field(default_factory=list)
    parent: int = -1
    depth: int = 0
    probability: float = 0.0
    is_leaf: bool = False
    is_dummy: bool = False

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)


class TiledTree:
    """A decision tree together with a valid tiling (possibly padded).

    Tile 0 is always the root tile. Use :meth:`from_tiling` to construct from
    the output of a tiling algorithm; the constructor itself takes an already
    materialized tile list (used by padding, which rewrites the list).
    """

    def __init__(self, tree: DecisionTree, tile_size: int, tiles: list[Tile]) -> None:
        self.tree = tree
        self.tile_size = int(tile_size)
        self.tiles = tiles

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tiling(
        cls,
        tree: DecisionTree,
        internal_tiles: list[list[int]],
        tile_size: int,
        validate: bool = True,
    ) -> "TiledTree":
        """Materialize a :class:`TiledTree` from internal-node tile groups.

        ``internal_tiles`` partitions the tree's internal nodes; leaf tiles
        are created implicitly. When ``validate`` is set the four validity
        constraints of Section III-B1 are checked first.
        """
        if validate:
            check_valid_tiling(tree, internal_tiles, tile_size)
        prob = tree.node_probability

        if tree.is_leaf(0):
            leaf = Tile(
                tile_id=0,
                nodes=(0,),
                shape=None,
                is_leaf=True,
                probability=1.0 if prob is None else float(prob[0]),
            )
            return cls(tree, tile_size, [leaf])

        # Which tile group does each internal node belong to?
        group_of_node: dict[int, int] = {}
        for gid, nodes in enumerate(internal_tiles):
            for n in nodes:
                group_of_node[n] = gid

        # Canonicalize each group: shape + ordered nodes + child node ids.
        shapes: list[ShapeKey] = []
        ordered_nodes: list[list[int]] = []
        child_nodes: list[list[int]] = []
        group_root: list[int] = []
        for nodes in internal_tiles:
            shape, ordered = shape_key_of_tile(tree, nodes)
            shapes.append(shape)
            ordered_nodes.append(ordered)
            group_root.append(ordered[0])
            kids = []
            for intra, side in out_edge_order(shape):
                node = ordered[intra]
                child = tree.left[node] if side == "L" else tree.right[node]
                kids.append(int(child))
            child_nodes.append(kids)

        # BFS from the group containing the root node; assign tile ids.
        root_group = group_of_node[0]
        tiles: list[Tile] = []

        def new_tile(**kwargs) -> Tile:
            tile = Tile(tile_id=len(tiles), **kwargs)
            tiles.append(tile)
            return tile

        queue: deque[tuple[int, int, int]] = deque()  # (group_or_node, parent, depth)
        root_tile = new_tile(
            nodes=tuple(ordered_nodes[root_group]),
            shape=shapes[root_group],
            probability=1.0 if prob is None else float(prob[0]),
        )
        queue.append((root_group, root_tile.tile_id, 0))
        while queue:
            gid, tile_id, depth = queue.popleft()
            tile = tiles[tile_id]
            for child_node in child_nodes[gid]:
                p = 0.0 if prob is None else float(prob[child_node])
                if tree.is_leaf(child_node):
                    child = new_tile(
                        nodes=(child_node,),
                        shape=None,
                        is_leaf=True,
                        parent=tile_id,
                        depth=depth + 1,
                        probability=p,
                    )
                else:
                    cgid = group_of_node[child_node]
                    child = new_tile(
                        nodes=tuple(ordered_nodes[cgid]),
                        shape=shapes[cgid],
                        parent=tile_id,
                        depth=depth + 1,
                        probability=p,
                    )
                    queue.append((cgid, child.tile_id, depth + 1))
                tile.children.append(child.tile_id)
        return cls(tree, tile_size, tiles)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def root(self) -> Tile:
        return self.tiles[0]

    def leaf_tiles(self) -> list[Tile]:
        return [t for t in self.tiles if t.is_leaf]

    def internal_tiles(self) -> list[Tile]:
        return [t for t in self.tiles if not t.is_leaf]

    @property
    def max_leaf_depth(self) -> int:
        """Depth of the deepest leaf tile (= number of tile evaluations)."""
        return max(t.depth for t in self.leaf_tiles())

    @property
    def min_leaf_depth(self) -> int:
        return min(t.depth for t in self.leaf_tiles())

    @property
    def is_uniform_depth(self) -> bool:
        """True when every leaf tile sits at the same depth (padded trees)."""
        return self.max_leaf_depth == self.min_leaf_depth

    def expected_walk_length(self) -> float:
        """Expected number of tile evaluations per inference.

        This is the objective probability-based tiling minimizes
        (Section III-C): ``sum_l p_l * depth(l)`` over leaf tiles.
        """
        return float(sum(t.probability * t.depth for t in self.leaf_tiles()))

    def structure_signature(self) -> tuple:
        """Hashable key for tiled-structure isomorphism (tree reordering)."""
        sig: list = []
        stack = [0]
        while stack:
            tid = stack.pop()
            tile = self.tiles[tid]
            if tile.is_leaf:
                sig.append("L")
            elif tile.is_dummy:
                sig.append(("D", len(tile.children)))
            else:
                sig.append(tile.shape)
            for child in reversed(tile.children):
                stack.append(child)
        return tuple(sig)

    # ------------------------------------------------------------------
    # Reference traversal
    # ------------------------------------------------------------------
    def tile_bits(self, tile: Tile, row: np.ndarray) -> int:
        """Predicate outcomes of all nodes in ``tile`` packed into an int.

        This is the speculative evaluation of Section III-B: every node in
        the tile is evaluated regardless of which ones the binary walk would
        visit. Dummy tiles compare true on every (padding) node.
        """
        if tile.is_dummy:
            return (1 << self.tile_size) - 1
        bits = 0
        tree = self.tree
        for i, node in enumerate(tile.nodes):
            if row[tree.feature[node]] < tree.threshold[node]:
                bits |= 1 << i
        return bits

    def walk_row(self, row: np.ndarray) -> float:
        """Reference tiled walk for one row (mirrors the §III-B listing)."""
        tile = self.tiles[0]
        while not tile.is_leaf:
            if tile.is_dummy:
                tile = self.tiles[tile.children[0]]
                continue
            bits = self.tile_bits(tile, row)
            child_idx = shape_child_for_bits(tile.shape, bits)
            tile = self.tiles[tile.children[child_idx]]
        return float(self.tree.value[tile.nodes[0]])

    def walk_rows(self, rows: np.ndarray) -> np.ndarray:
        """Reference tiled walk over a batch (row loop in Python)."""
        return np.asarray([self.walk_row(row) for row in np.asarray(rows)])

    # ------------------------------------------------------------------
    # Padding support
    # ------------------------------------------------------------------
    def insert_dummy_chain(self, leaf_tile_id: int, length: int) -> None:
        """Insert ``length`` dummy tiles between a leaf tile and its parent.

        Used by :func:`repro.hir.padding.pad_to_uniform_depth`. Depths of the
        leaf tile are updated; other tiles are unaffected.
        """
        if length <= 0:
            return
        leaf = self.tiles[leaf_tile_id]
        if not leaf.is_leaf:
            raise TilingError("dummy chains may only be inserted above leaf tiles")
        parent_id = leaf.parent
        if parent_id < 0:
            raise TilingError("cannot pad the root tile")
        prev_id = parent_id
        slot = self.tiles[parent_id].children.index(leaf_tile_id)
        for i in range(length):
            dummy = Tile(
                tile_id=len(self.tiles),
                nodes=(),
                shape=left_chain_shape(self.tile_size),
                parent=prev_id,
                depth=leaf.depth + i,
                probability=leaf.probability,
                is_dummy=True,
            )
            self.tiles.append(dummy)
            if prev_id == parent_id:
                self.tiles[parent_id].children[slot] = dummy.tile_id
            else:
                self.tiles[prev_id].children.append(dummy.tile_id)
            prev_id = dummy.tile_id
        self.tiles[prev_id].children.append(leaf_tile_id)
        leaf.parent = prev_id
        leaf.depth += length

    def __repr__(self) -> str:
        return (
            f"TiledTree(tree_id={self.tree.tree_id}, tile_size={self.tile_size}, "
            f"tiles={self.num_tiles}, depth={self.max_leaf_depth})"
        )
