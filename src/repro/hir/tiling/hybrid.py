"""Hybrid tiling policy: probability-based tiling for leaf-biased trees only.

Section III-C: "we perform probability-based tiling on trees only when a
small fraction (alpha) of leaves cover a large part (beta) of the training
inputs" — all other trees fall back to basic tiling. This is the policy the
paper evaluates in Figure 11a.
"""

from __future__ import annotations

from repro.forest.statistics import is_leaf_biased
from repro.forest.tree import DecisionTree
from repro.hir.tiling.basic import basic_tiling
from repro.hir.tiling.probability import probability_tiling


def hybrid_tiling(
    tree: DecisionTree, tile_size: int, alpha: float = 0.075, beta: float = 0.9
) -> list[list[int]]:
    """Tile with Algorithm 1 when the tree is leaf-biased, else Algorithm 2.

    Trees without populated probabilities are never considered leaf-biased
    (there is no evidence of bias to exploit) and take the basic path.
    """
    if tree.node_probability is not None and is_leaf_biased(tree, alpha, beta):
        return probability_tiling(tree, tile_size)
    return basic_tiling(tree, tile_size)
