"""Validity checking for tilings (Section III-B1).

A tiling of a tree with tile size ``n_t`` is *valid* when it satisfies:

* **Partitioning** — the tiles cover all internal nodes, disjointly (leaves
  are implicitly their own tiles and must not appear in any internal tile:
  **leaf separation**).
* **Connectedness** — each tile is a connected subtree.
* **Maximal tiling** — a tile smaller than ``n_t`` has no outgoing edge to a
  non-leaf node (it could otherwise have grown).

``check_valid_tiling`` raises :class:`~repro.errors.TilingError` with a
precise message on the first violated constraint; every tiling algorithm in
this package is checked against it in the test suite (including via
hypothesis-generated random trees).
"""

from __future__ import annotations

from repro.errors import TilingError
from repro.forest.tree import DecisionTree


def check_valid_tiling(
    tree: DecisionTree, internal_tiles: list[list[int]], tile_size: int
) -> None:
    """Validate ``internal_tiles`` as a tiling of ``tree``; raise on violation."""
    if tile_size < 1:
        raise TilingError("tile size must be >= 1")
    if tree.is_leaf(0):
        if internal_tiles:
            raise TilingError("single-leaf tree must have an empty internal tiling")
        return

    internal = set(int(n) for n in tree.internal_nodes())
    leaves = set(int(n) for n in tree.leaves())

    seen: set[int] = set()
    for i, nodes in enumerate(internal_tiles):
        if not nodes:
            raise TilingError(f"tile {i} is empty")
        if len(nodes) > tile_size:
            raise TilingError(f"tile {i} has {len(nodes)} nodes, exceeding tile size {tile_size}")
        for n in nodes:
            n = int(n)
            if n in leaves:
                raise TilingError(f"leaf separation violated: leaf {n} in tile {i}")
            if n not in internal:
                raise TilingError(f"tile {i} references unknown node {n}")
            if n in seen:
                raise TilingError(f"partitioning violated: node {n} in multiple tiles")
            seen.add(n)
    if seen != internal:
        missing = sorted(internal - seen)[:5]
        raise TilingError(f"partitioning violated: internal nodes {missing} not tiled")

    for i, nodes in enumerate(internal_tiles):
        members = set(int(n) for n in nodes)
        _check_connected(tree, members, i)
        if len(members) < tile_size:
            _check_maximal(tree, members, i)


def _check_connected(tree: DecisionTree, members: set[int], tile_index: int) -> None:
    """Connectedness: the tile must induce a connected subtree.

    In a tree, a node set is connected iff exactly one member's parent lies
    outside the set (the tile root) and every member is reachable from it by
    in-set child edges.
    """
    parents = tree.parents()
    roots = [n for n in members if int(parents[n]) not in members]
    if len(roots) != 1:
        raise TilingError(
            f"connectedness violated in tile {tile_index}: {len(roots)} tile roots"
        )
    reached = {roots[0]}
    stack = [roots[0]]
    while stack:
        n = stack.pop()
        for c in tree.children(n):
            if c in members and c not in reached:
                reached.add(int(c))
                stack.append(int(c))
    if reached != members:
        raise TilingError(f"connectedness violated in tile {tile_index}")


def _check_maximal(tree: DecisionTree, members: set[int], tile_index: int) -> None:
    """Maximal tiling: undersized tiles may only border leaves."""
    for n in members:
        for c in tree.children(n):
            if c not in members and not tree.is_leaf(int(c)):
                raise TilingError(
                    f"maximality violated: tile {tile_index} has size {len(members)} "
                    f"< tile size but borders non-leaf node {int(c)}"
                )
