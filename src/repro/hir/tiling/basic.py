"""Basic (level-order) tree tiling — Algorithm 2 of the paper.

Starting at the subtree root, a tile is filled with the next ``n_t``
*non-leaf* nodes in level order; the procedure then recurses on every node a
tile out-edge points to. Minimizing each tile's depth this way naturally
rebalances imbalanced trees at larger tile sizes, and on a perfectly
balanced tree it reproduces the triangular tiling used by FAST.
"""

from __future__ import annotations

from collections import deque

from repro.forest.tree import DecisionTree


def _level_order_tile(tree: DecisionTree, root: int, tile_size: int) -> list[int]:
    """Pick up to ``tile_size`` non-leaf nodes from ``root`` in level order."""
    tile: list[int] = []
    queue: deque[int] = deque([root])
    while queue and len(tile) < tile_size:
        node = queue.popleft()
        if tree.is_leaf(node):
            continue
        tile.append(node)
        queue.append(int(tree.left[node]))
        queue.append(int(tree.right[node]))
    return tile


def basic_tiling(tree: DecisionTree, tile_size: int) -> list[list[int]]:
    """Tile ``tree`` with Algorithm 2; returns internal-node tile groups.

    Leaves are excluded (they implicitly form their own tiles). The returned
    tiling satisfies all four validity constraints of Section III-B1.
    """
    if tree.is_leaf(0):
        return []
    tiles: list[list[int]] = []
    pending: deque[int] = deque([0])
    while pending:
        root = pending.popleft()
        tile = _level_order_tile(tree, root, tile_size)
        tiles.append(tile)
        members = set(tile)
        for node in tile:
            for child in tree.children(node):
                child = int(child)
                if child not in members and not tree.is_leaf(child):
                    pending.append(child)
    return tiles
