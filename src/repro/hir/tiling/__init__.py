"""Tree tiling: transforming binary trees into n-ary trees of tiles.

Implements Section III-B/C/D of the paper: the validity constraints, the
greedy probability-based algorithm (Algorithm 1), the level-order basic
algorithm (Algorithm 2), the hybrid policy that applies probability-based
tiling only to leaf-biased trees, tile-shape canonicalization, and the
:class:`TiledTree` structure consumed by the rest of the compiler.
"""

from repro.hir.tiling.basic import basic_tiling
from repro.hir.tiling.hybrid import hybrid_tiling
from repro.hir.tiling.optimal import optimal_tiling, tiling_objective
from repro.hir.tiling.probability import probability_tiling
from repro.hir.tiling.shapes import (
    ShapeRegistry,
    all_shapes_of_size,
    left_chain_shape,
    shape_child_for_bits,
    shape_key_of_tile,
)
from repro.hir.tiling.tile import Tile, TiledTree
from repro.hir.tiling.validity import check_valid_tiling

__all__ = [
    "ShapeRegistry",
    "Tile",
    "TiledTree",
    "all_shapes_of_size",
    "basic_tiling",
    "check_valid_tiling",
    "hybrid_tiling",
    "optimal_tiling",
    "left_chain_shape",
    "probability_tiling",
    "shape_child_for_bits",
    "tiling_objective",
    "shape_key_of_tile",
]
