"""Tile shapes, shape canonicalization, and the traversal lookup table.

For a tile size ``n_t``, every legal binary tree over ``k <= n_t``
indistinguishable nodes is a *tile shape* (Section V-A1; Figure 4 enumerates
the five shapes of size 3). A shape is canonicalized as a tuple

    ``((l_0, r_0), (l_1, r_1), ...)``

with one pair per tile node *in intra-tile level order*; ``l_i``/``r_i`` are
the intra-tile indices of node ``i``'s left/right children when those
children belong to the same tile, and ``-1`` when the edge leaves the tile.

A tile with ``k`` nodes always has exactly ``k + 1`` outgoing edges; they are
ordered left-to-right (paper footnote 7) by the in-order enumeration
implemented in :func:`out_edge_order`. Given the vector of node-predicate
outcomes packed into an integer (bit ``i`` = outcome of node ``i``), the
child to visit next is a pure function of the shape — precomputed for all
``2**n_t`` outcome patterns into the LUT of Section V-A2.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import TilingError

#: A canonical shape: one (left, right) intra-tile index pair per node.
ShapeKey = tuple[tuple[int, int], ...]

#: Reserved shape for dummy (padding/hop) tiles. Its LUT row maps *every*
#: predicate-outcome pattern to child 0, so dummy routing is independent of
#: the speculative comparisons — in particular it stays correct for ``+inf``
#: inputs, where the padding predicate ``x < +inf`` is false.
DUMMY_SHAPE: ShapeKey = ()


def storage_width(tile_size: int) -> int:
    """Tile storage lanes: smallest power of two >= ``tile_size``.

    Backends pad tile buffers to this width so the per-tile comparison
    vector occupies exactly 1, 2, 4 or 8 bytes and can be reinterpreted as
    a single machine integer when packing predicate bits (the Python
    backend's stand-in for a SIMD movemask).
    """
    if tile_size < 1:
        raise TilingError("tile size must be >= 1")
    width = 1
    while width < tile_size:
        width <<= 1
    return width


def shape_size(shape: ShapeKey) -> int:
    """Number of nodes in the shape."""
    return len(shape)


def validate_shape(shape: ShapeKey) -> None:
    """Check that ``shape`` is a well-formed tile shape rooted at node 0.

    Requirements: indices are in range, each non-root node is referenced by
    exactly one parent slot, children come after parents in level order, and
    node 0 is the root (referenced by nobody).
    """
    k = len(shape)
    if k == 0:
        raise TilingError("empty shape")
    seen = np.zeros(k, dtype=np.int64)
    for i, (left, right) in enumerate(shape):
        for child in (left, right):
            if child == -1:
                continue
            if not (0 <= child < k):
                raise TilingError(f"shape child index {child} out of range")
            if child <= i:
                raise TilingError("shape children must come after parents in level order")
            seen[child] += 1
    if seen[0] != 0:
        raise TilingError("shape node 0 must be the root")
    if k > 1 and not (seen[1:] == 1).all():
        raise TilingError("every non-root shape node needs exactly one parent")


def out_edge_order(shape: ShapeKey) -> list[tuple[int, str]]:
    """Outgoing edges of the tile in left-to-right order.

    Returns ``[(node, side), ...]`` where ``side`` is ``"L"`` or ``"R"``.
    The order is the in-order (DFS, left before right) enumeration of
    out-of-tile edges, which realizes the paper's left-to-right child order.
    """
    edges: list[tuple[int, str]] = []

    def visit(i: int) -> None:
        left, right = shape[i]
        if left >= 0:
            visit(left)
        else:
            edges.append((i, "L"))
        if right >= 0:
            visit(right)
        else:
            edges.append((i, "R"))

    visit(0)
    return edges


def shape_child_for_bits(shape: ShapeKey, bits: int) -> int:
    """Child index selected by predicate outcomes ``bits`` (bit i = node i).

    Simulates the within-tile walk: start at the tile root; a true predicate
    moves to the left child, false to the right; the walk exits the tile
    through some out-edge, whose left-to-right position is the child index.
    """
    edges = out_edge_order(shape)
    node = 0
    while True:
        left, right = shape[node]
        go_left = (bits >> node) & 1
        nxt = left if go_left else right
        if nxt == -1:
            return edges.index((node, "L" if go_left else "R"))
        node = nxt


def left_chain_shape(size: int) -> ShapeKey:
    """The all-left chain shape of ``size`` nodes.

    Used for the dummy tiles inserted by tree padding: with every predicate
    forced true, the walk exits through out-edge 0 (the deepest left edge),
    so a dummy tile deterministically routes to its first child.
    """
    if size < 1:
        raise TilingError("shape size must be >= 1")
    return tuple((i + 1 if i + 1 < size else -1, -1) for i in range(size))


@lru_cache(maxsize=None)
def all_shapes_of_size(size: int) -> tuple[ShapeKey, ...]:
    """Enumerate every tile shape with exactly ``size`` nodes.

    There are Catalan(size) such shapes. Enumeration is recursive on the
    (left subtree size, right subtree size) split, then re-serialized into
    the canonical level-order form.
    """

    def build(n: int):
        """Yield shapes as nested tuples (left_sub, right_sub) or None."""
        if n == 0:
            yield None
            return
        for left_n in range(n):
            for left_sub in build(left_n):
                for right_sub in build(n - 1 - left_n):
                    yield (left_sub, right_sub)

    shapes = []
    for nested in build(size):
        shapes.append(nested_to_shape(nested))
    return tuple(shapes)


def nested_to_shape(nested) -> ShapeKey:
    """Convert a nested ``(left, right)``/None tree into a canonical ShapeKey."""
    if nested is None:
        raise TilingError("cannot convert empty tree to a shape")
    # Assign level-order indices.
    from collections import deque

    index_of: dict[int, int] = {}
    order: list = []
    queue = deque([nested])
    while queue:
        node = queue.popleft()
        index_of[id(node)] = len(order)
        order.append(node)
        left, right = node
        if left is not None:
            queue.append(left)
        if right is not None:
            queue.append(right)
    shape = []
    for node in order:
        left, right = node
        shape.append(
            (
                index_of[id(left)] if left is not None else -1,
                index_of[id(right)] if right is not None else -1,
            )
        )
    return tuple(shape)


def shape_key_of_tile(tree, tile_nodes: list[int]) -> tuple[ShapeKey, list[int]]:
    """Canonicalize the shape of a tile within ``tree``.

    Parameters
    ----------
    tree:
        A :class:`~repro.forest.tree.DecisionTree`.
    tile_nodes:
        The original node ids belonging to the tile (any order).

    Returns
    -------
    (shape, ordered_nodes):
        The canonical :data:`ShapeKey` and the tile's node ids re-ordered
        into intra-tile level order (the order the shape indices refer to).
    """
    members = set(tile_nodes)
    if not members:
        raise TilingError("tile has no nodes")
    # Find the tile root: the unique member whose parent is not in the tile.
    child_members = set()
    for n in members:
        for c in tree.children(n):
            if c in members:
                child_members.add(c)
    roots = members - child_members
    if len(roots) != 1:
        raise TilingError(f"tile is not a connected subtree (roots={sorted(roots)})")
    root = roots.pop()
    # Level-order within the tile.
    from collections import deque

    ordered: list[int] = []
    queue = deque([root])
    while queue:
        n = queue.popleft()
        ordered.append(n)
        for c in tree.children(n):
            if c in members:
                queue.append(c)
    if len(ordered) != len(members):
        raise TilingError("tile is not connected")
    intra = {n: i for i, n in enumerate(ordered)}
    shape = []
    for n in ordered:
        left, right = tree.children(n)
        shape.append(
            (
                intra[left] if left in members else -1,
                intra[right] if right in members else -1,
            )
        )
    return tuple(shape), ordered


class ShapeRegistry:
    """Assigns stable integer ids to tile shapes and builds the LUT.

    The registry collects every shape observed while tiling a model; shape
    ids index the first dimension of the traversal LUT
    ``LUT[shape_id, outcome_bits] -> child index`` (Section V-A2). The LUT is
    computed statically because the tile size is a compile-time constant.
    """

    def __init__(self, tile_size: int) -> None:
        if not (1 <= tile_size <= 16):
            raise TilingError("tile size must be in [1, 16]")
        self.tile_size = tile_size
        self._ids: dict[ShapeKey, int] = {}

    def register(self, shape: ShapeKey) -> int:
        """Return the id for ``shape``, assigning a new one if unseen.

        :data:`DUMMY_SHAPE` is accepted as a reserved key whose LUT row is
        all zeros (dummy tiles always route to child 0, data-independently).
        """
        if shape == DUMMY_SHAPE:
            if shape not in self._ids:
                self._ids[shape] = len(self._ids)
            return self._ids[shape]
        if len(shape) > self.tile_size:
            raise TilingError(
                f"shape has {len(shape)} nodes but tile size is {self.tile_size}"
            )
        validate_shape(shape)
        if shape not in self._ids:
            self._ids[shape] = len(self._ids)
        return self._ids[shape]

    @property
    def num_shapes(self) -> int:
        return len(self._ids)

    @property
    def dummy_id(self) -> int | None:
        """The id assigned to :data:`DUMMY_SHAPE`, or None if unused."""
        return self._ids.get(DUMMY_SHAPE)

    def shapes(self) -> list[ShapeKey]:
        """All registered shapes in id order."""
        return sorted(self._ids, key=self._ids.__getitem__)

    def build_lut(self, width: int | None = None) -> np.ndarray:
        """The traversal lookup table, shape ``(num_shapes, 2**width)``.

        ``width`` defaults to the tile size; backends that pad tile storage
        to a machine-friendly lane count (power of two) pass the padded
        width. For shapes smaller than the width the unused high bits are
        ignored (padding nodes always compare true, but the child computed
        from the real nodes' bits is correct regardless).
        """
        width = self.tile_size if width is None else width
        if width < self.tile_size:
            raise TilingError("LUT width must be >= the tile size")
        n_patterns = 1 << width
        lut = np.zeros((max(self.num_shapes, 1), n_patterns), dtype=np.int8)
        for shape, sid in self._ids.items():
            if shape == DUMMY_SHAPE:
                continue  # row stays zeros: every pattern routes to child 0
            k = len(shape)
            # Child index depends only on the low k bits; compute those once
            # and broadcast over the ignored high bits.
            base = np.empty(1 << k, dtype=np.int8)
            for bits in range(1 << k):
                base[bits] = shape_child_for_bits(shape, bits)
            reps = n_patterns >> k
            lut[sid] = np.tile(base, reps)
        return lut
