"""Probability-based tree tiling — Algorithm 1 of the paper.

For leaf-biased trees, minimizing the *expected* number of tile evaluations
``sum_l p_l * depth(l)`` beats minimizing tile depth uniformly: hot leaves
should surface early even at the cost of deepening cold ones. The greedy
algorithm grows each tile from its root by repeatedly absorbing the most
probable non-leaf node on the tile frontier, then recurses on the out-edges.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import TilingError
from repro.forest.tree import DecisionTree
from repro.forest.statistics import uniform_node_probabilities


def _grow_tile(
    tree: DecisionTree, root: int, tile_size: int, prob: np.ndarray
) -> list[int]:
    """Grow one tile greedily by max-probability frontier expansion."""
    tile = [root]
    members = {root}
    while len(tile) < tile_size:
        best = -1
        best_p = -1.0
        for node in tile:
            for child in tree.children(node):
                child = int(child)
                if child in members or tree.is_leaf(child):
                    continue
                # Deterministic tie-break on node id keeps tilings stable.
                if prob[child] > best_p or (prob[child] == best_p and child < best):
                    best = child
                    best_p = float(prob[child])
        if best < 0:
            break
        tile.append(best)
        members.add(best)
    return tile


def probability_tiling(
    tree: DecisionTree, tile_size: int, probabilities: np.ndarray | None = None
) -> list[list[int]]:
    """Tile ``tree`` with Algorithm 1; returns internal-node tile groups.

    Parameters
    ----------
    probabilities:
        Per-node visit probabilities. Defaults to ``tree.node_probability``;
        if the tree carries none, uniform (2^-depth) probabilities are used
        so the algorithm stays well-defined (it then behaves close to a
        depth-minimizing greedy).
    """
    if tree.is_leaf(0):
        return []
    prob = probabilities if probabilities is not None else tree.node_probability
    if prob is None:
        prob = uniform_node_probabilities(tree)
    prob = np.asarray(prob, dtype=np.float64)
    if prob.shape != (tree.num_nodes,):
        raise TilingError("probability array shape does not match the tree")

    tiles: list[list[int]] = []
    pending: deque[int] = deque([0])
    while pending:
        root = pending.popleft()
        tile = _grow_tile(tree, root, tile_size, prob)
        tiles.append(tile)
        members = set(tile)
        for node in tile:
            for child in tree.children(node):
                child = int(child)
                if child not in members and not tree.is_leaf(child):
                    pending.append(child)
    return tiles
