"""Optimal probability-based tiling via dynamic programming (extension).

Section III-C: "Even though the above problem can be solved optimally using
dynamic programming, we use a greedy algorithm in the interest of
simplicity." This module implements that optimal solver.

The objective is the expected number of tile evaluations per walk,
``sum_l p_l * depth_T(l)`` over leaf tiles. Because every valid tile is a
connected subtree rooted at some node and the cost below a node decomposes
over the tiles chosen underneath, the optimum satisfies

    E(v) = min over valid tiles T rooted at v of
           [ p(v) + sum of E(u) for each internal out-edge target u of T ]

— every walk that reaches ``v`` pays one evaluation for ``v``'s tile
(probability mass ``p(v)``), plus the optimal cost of whichever child
region it continues into; leaf out-edges terminate for free (leaf tiles are
never evaluated). Candidate tiles per root are all connected subtrees of at
most ``tile_size`` internal nodes, with the *maximal tiling* constraint
(Section III-B1) pruning undersized candidates that still border internal
nodes. The candidate count per root is bounded by the number of binary
subtree shapes of the tile size (Catalan numbers), so the whole solve is
linear in model size for fixed tile size.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TilingError
from repro.forest.statistics import uniform_node_probabilities
from repro.forest.tree import DecisionTree


def _internal_children(tree: DecisionTree, node: int) -> tuple[int, ...]:
    return tuple(int(c) for c in tree.children(node) if not tree.is_leaf(int(c)))


def _candidate_tiles(tree: DecisionTree, root: int, tile_size: int) -> list[tuple[int, ...]]:
    """All valid tiles rooted at ``root``.

    A candidate is emitted when it is full (``tile_size`` nodes) or when its
    frontier of absorbable internal nodes is empty (it could not have grown:
    the maximality constraint); undersized candidates with a non-empty
    frontier are search states, not results.
    """
    results: set[tuple[int, ...]] = set()
    seen: set[tuple[int, ...]] = set()

    def expand(members: tuple[int, ...], frontier: tuple[int, ...]) -> None:
        if len(members) == tile_size or not frontier:
            results.add(members)
            return
        for i, node in enumerate(frontier):
            new_members = tuple(sorted(members + (node,)))
            if new_members in seen:
                continue
            seen.add(new_members)
            new_frontier = (
                frontier[:i] + frontier[i + 1:] + _internal_children(tree, node)
            )
            expand(new_members, tuple(sorted(new_frontier)))

    base = (root,)
    seen.add(base)
    expand(base, tuple(sorted(_internal_children(tree, root))))
    return sorted(results)


def optimal_tiling(
    tree: DecisionTree, tile_size: int, probabilities: np.ndarray | None = None
) -> list[list[int]]:
    """Minimum-expected-walk-length valid tiling of ``tree``.

    Falls back to uniform (2^-depth) probabilities when the tree carries no
    statistics, like the greedy algorithm. The result satisfies the
    Section III-B1 constraints and achieves an expected walk length no
    worse than any other valid tiling (see the property tests).
    """
    if tree.is_leaf(0):
        return []
    prob = probabilities if probabilities is not None else tree.node_probability
    if prob is None:
        prob = uniform_node_probabilities(tree)
    prob = np.asarray(prob, dtype=np.float64)
    if prob.shape != (tree.num_nodes,):
        raise TilingError("probability array shape does not match the tree")

    best_cost: dict[int, float] = {}
    best_tile: dict[int, tuple[int, ...]] = {}

    def out_internal(members: tuple[int, ...]) -> list[int]:
        member_set = set(members)
        out = []
        for node in members:
            for child in _internal_children(tree, node):
                if child not in member_set:
                    out.append(child)
        return out

    # Bottom-up over internal nodes (reverse level order): children regions
    # are solved before their ancestors.
    order = [n for n in tree.iter_level_order() if not tree.is_leaf(n)]
    for root in reversed(order):
        best: tuple[float, tuple[int, ...]] | None = None
        for members in _candidate_tiles(tree, root, tile_size):
            cost = float(prob[root])
            for child_root in out_internal(members):
                cost += best_cost[child_root]
            if best is None or cost < best[0]:
                best = (cost, members)
        assert best is not None  # every internal node admits >= 1 tile
        best_cost[root] = best[0]
        best_tile[root] = best[1]

    # Materialize the chosen tiling top-down.
    tiles: list[list[int]] = []
    stack = [0]
    while stack:
        root = stack.pop()
        members = best_tile[root]
        tiles.append(list(members))
        stack.extend(out_internal(members))
    return tiles


def tiling_objective(
    tree: DecisionTree,
    tiling: list[list[int]],
    tile_size: int,
    probabilities: np.ndarray | None = None,
) -> float:
    """Objective value of a tiling: expected tile evaluations per walk."""
    from repro.hir.tiling.tile import TiledTree

    prob = probabilities if probabilities is not None else tree.node_probability
    saved = tree.node_probability
    try:
        tree.node_probability = (
            np.asarray(prob, dtype=np.float64)
            if prob is not None
            else uniform_node_probabilities(tree)
        )
        tiled = TiledTree.from_tiling(tree, tiling, tile_size, validate=False)
        return tiled.expected_walk_length()
    finally:
        tree.node_probability = saved
