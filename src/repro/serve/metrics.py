"""Observability for the serving layer.

A :class:`ServingMetrics` instance is shared by the predictor cache, the
micro-batcher and every session attached to a server. All counters are
guarded by one lock (updates are tiny relative to inference), and
:meth:`snapshot` returns plain Python containers so tests, examples and
monitoring endpoints can read the whole surface atomically.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections import Counter
from typing import Callable

#: default bucket upper bounds (seconds) for the latency/queue-wait/kernel
#: histograms — Prometheus-style sub-millisecond to multi-second coverage
TIME_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: default bucket upper bounds for rows-per-batch
ROWS_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


class Histogram:
    """Fixed-bound histogram with an implicit ``+Inf`` overflow bucket.

    Counts are stored per bucket (non-cumulative); :meth:`snapshot`
    renders them cumulatively in the OpenMetrics convention —
    ``buckets[le]`` is the number of observations ``<= le``, ending with
    ``"+Inf"`` — alongside ``sum`` and ``count``, which is exactly what
    :mod:`repro.observe.export` needs to emit ``_bucket``/``_sum``/
    ``_count`` samples. Not internally locked: every caller in this
    module records under the owning :class:`ServingMetrics` lock.
    """

    __slots__ = ("bounds", "_counts", "sum", "count")

    def __init__(self, bounds) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self._counts = [0] * (len(self.bounds) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def record(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict:
        buckets: dict[str, int] = {}
        cumulative = 0
        for bound, count in zip(self.bounds, self._counts):
            cumulative += count
            buckets[repr(bound)] = cumulative
        buckets["+Inf"] = self.count
        return {"buckets": buckets, "sum": self.sum, "count": self.count}

    def clear(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.sum:.6f})"


class LatencyWindow:
    """Bounded sliding window of request latencies with percentile queries.

    Keeps the most recent ``capacity`` observations; percentiles are exact
    over the window (nearest-rank), which is plenty for a test/metrics
    surface and avoids any sketch dependencies.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: list[float] = []
        self._next = 0
        # Sorted view of the ring, rebuilt at most once per batch of
        # percentile queries: a snapshot asks for four percentiles, and
        # re-sorting the full window for each was the dominant cost of
        # reading metrics on a busy server.
        self._sorted: list[float] | None = None

    def record(self, seconds: float) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.capacity
        self._sorted = None

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self._next = 0
        self._sorted = None

    def _ordered(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._ring)
        return self._sorted

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile (``p`` in [0, 100]); None when empty.

        Uses the standard nearest-rank definition: the smallest sample
        whose cumulative frequency reaches ``p``% — index
        ``ceil(p/100 * n) - 1`` in the sorted window (0-indexed), clamped
        to ``[0, n-1]``. No interpolation is performed: every value
        returned is an actually observed latency. For windows smaller
        than the requested rank resolution the query saturates at the
        window extremes — e.g. p99.9 of a 100-sample window is the
        largest sample, and any ``p > 0`` over a single-sample window is
        that sample. ``p = 0`` returns the window minimum.
        """
        if not self._ring:
            return None
        ordered = self._ordered()
        rank = math.ceil((p / 100.0) * len(ordered)) - 1
        return ordered[min(len(ordered) - 1, max(0, rank))]

    def max(self) -> float | None:
        """Largest latency currently inside the window; None when empty."""
        if not self._ring:
            return None
        return self._ordered()[-1]


class ServingMetrics:
    """Thread-safe counters + histograms for one server (or session).

    Fields exposed by :meth:`snapshot`:

    ``compiles``            full pipeline compilations actually performed
    ``cache_hits``          predictor-cache hits (incl. waits that shared an
                            in-flight compile)
    ``cache_misses``        predictor-cache misses (a compile was triggered)
    ``cache_evictions``     predictors dropped by the LRU bound
    ``fallbacks``           requests/compiles that degraded to the
                            interpreter or reference path
    ``requests``            predict calls observed
    ``rows``                total rows predicted
    ``errors``              requests that raised
    ``admission_rejects``   requests turned away by SLO admission control
    ``batches``             micro-batches executed
    ``batch_rows_hist``     {rows per executed batch: count}
    ``batch_requests_hist`` {requests coalesced per batch: count}
    ``latency``             {count, p50, p90, p99, p999, window_max,
                            all_time_max, max} in seconds. Percentiles
                            (nearest-rank, see
                            :meth:`LatencyWindow.percentile`) and
                            ``window_max`` cover the bounded sliding window
                            only; ``all_time_max`` (and its legacy alias
                            ``max``) covers every request since
                            construction/reset — the two diverge once the
                            window rotates past a spike.
    ``histograms``          fixed-bucket histograms in the OpenMetrics
                            cumulative convention (see :class:`Histogram`):
                            ``latency_seconds`` (per request),
                            ``queue_wait_seconds`` (per request, micro-batch
                            enqueue → batch start), ``kernel_seconds`` (per
                            executed batch), ``batch_rows`` (per executed
                            batch).
    ``tuning``              background-autotune lifecycle: ``started``,
                            ``completed``, ``failed``, ``cache_hits``
                            (persisted warm starts), ``hot_swaps``
                            (sessions atomically switched to a faster
                            predictor), and ``last`` — the most recent
                            run's explored count, per-row latency and
                            cost-model rank correlation.
    ``runtime``             registered gauges, read at snapshot time (the
                            server wires in kernel-pool counters and the
                            scratch-arena / model-buffer footprints of
                            resident predictors)
    """

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._gauges: dict[str, Callable[[], object]] = {}
        self.compiles = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.fallbacks = 0
        self.requests = 0
        self.rows = 0
        self.errors = 0
        self.admission_rejects = 0
        self.batches = 0
        self.batch_rows_hist: Counter[int] = Counter()
        self.batch_requests_hist: Counter[int] = Counter()
        self._latency = LatencyWindow(latency_window)
        self._max_latency = 0.0
        self._histograms: dict[str, Histogram] = {
            "latency_seconds": Histogram(TIME_BUCKETS),
            "queue_wait_seconds": Histogram(TIME_BUCKETS),
            "kernel_seconds": Histogram(TIME_BUCKETS),
            "batch_rows": Histogram(ROWS_BUCKETS),
        }
        self.tunes_started = 0
        self.tunes_completed = 0
        self.tunes_failed = 0
        self.tune_cache_hits = 0
        self.hot_swaps = 0
        self._last_tune: dict | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_compile(self) -> None:
        with self._lock:
            self.compiles += 1

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_eviction(self, count: int = 1) -> None:
        with self._lock:
            self.cache_evictions += count

    def record_fallback(self) -> None:
        with self._lock:
            self.fallbacks += 1

    def record_request(self, num_rows: int, seconds: float) -> None:
        with self._lock:
            self.requests += 1
            self.rows += int(num_rows)
            self._latency.record(seconds)
            self._histograms["latency_seconds"].record(seconds)
            if seconds > self._max_latency:
                self._max_latency = seconds

    def record_queue_wait(self, seconds: float) -> None:
        """One request's micro-batch queue wait (enqueue → batch start)."""
        with self._lock:
            self._histograms["queue_wait_seconds"].record(seconds)

    def record_kernel_time(self, seconds: float) -> None:
        """One executed batch's kernel (or fallback executor) wall time."""
        with self._lock:
            self._histograms["kernel_seconds"].record(seconds)

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_admission_reject(self) -> None:
        """One request turned away by SLO admission control (not an error:
        the tier shed load on purpose to protect its latency target)."""
        with self._lock:
            self.admission_rejects += 1

    def record_tune_started(self) -> None:
        with self._lock:
            self.tunes_started += 1

    def record_tune_completed(self, info: dict | None = None) -> None:
        """One background tune finished; ``info`` summarizes the run
        (explored count, best per-row µs, rank correlation, swap outcome)."""
        with self._lock:
            self.tunes_completed += 1
            if info is not None:
                self._last_tune = dict(info)
                if info.get("from_cache"):
                    self.tune_cache_hits += 1

    def record_tune_failed(self) -> None:
        with self._lock:
            self.tunes_failed += 1

    def record_hot_swap(self) -> None:
        with self._lock:
            self.hot_swaps += 1

    def record_batch(self, num_rows: int, num_requests: int) -> None:
        with self._lock:
            self.batches += 1
            self.batch_rows_hist[int(num_rows)] += 1
            self.batch_requests_hist[int(num_requests)] += 1
            self._histograms["batch_rows"].record(num_rows)

    def register_gauge(self, name: str, fn: Callable[[], object]) -> None:
        """Attach a point-in-time gauge evaluated on every snapshot.

        Gauges surface runtime state that is owned elsewhere (shared kernel
        pool, per-thread scratch arenas) without the metrics object holding
        references into the execution path. A gauge that raises reports the
        error string instead of poisoning the snapshot.
        """
        with self._lock:
            self._gauges[name] = fn

    def _read_gauges(self) -> dict:
        with self._lock:
            gauges = dict(self._gauges)
        values: dict[str, object] = {}
        for name, fn in gauges.items():
            try:
                values[name] = fn()
            except Exception as exc:  # pragma: no cover - defensive
                values[name] = f"<gauge error: {exc}>"
        return values

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latency_percentiles(self) -> dict[str, float | None]:
        with self._lock:
            return self._latency_dict()

    def _latency_dict(self) -> dict[str, float | None]:
        # Caller holds self._lock. ``max`` is kept as an alias of
        # ``all_time_max`` for pre-existing dashboards; it is NOT the
        # window max — after the ring rotates past a spike the two differ.
        any_seen = self.requests > 0 or len(self._latency) > 0
        return {
            "count": len(self._latency),
            "p50": self._latency.percentile(50),
            "p90": self._latency.percentile(90),
            "p99": self._latency.percentile(99),
            "p999": self._latency.percentile(99.9),
            "window_max": self._latency.max(),
            "all_time_max": self._max_latency if any_seen else None,
            "max": self._max_latency if any_seen else None,
        }

    def reset(self) -> None:
        """Zero every counter, histogram and latency record (gauges stay).

        For before/after measurements on a long-lived server: registered
        gauges read live state elsewhere and are left wired up.
        """
        with self._lock:
            self.compiles = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.cache_evictions = 0
            self.fallbacks = 0
            self.requests = 0
            self.rows = 0
            self.errors = 0
            self.admission_rejects = 0
            self.batches = 0
            self.batch_rows_hist.clear()
            self.batch_requests_hist.clear()
            self._latency.clear()
            self._max_latency = 0.0
            for histogram in self._histograms.values():
                histogram.clear()
            self.tunes_started = 0
            self.tunes_completed = 0
            self.tunes_failed = 0
            self.tune_cache_hits = 0
            self.hot_swaps = 0
            self._last_tune = None

    def snapshot(self) -> dict:
        """Atomic copy of every counter and histogram (plus gauge reads)."""
        runtime = self._read_gauges()
        with self._lock:
            return {
                "compiles": self.compiles,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_evictions": self.cache_evictions,
                "fallbacks": self.fallbacks,
                "requests": self.requests,
                "rows": self.rows,
                "errors": self.errors,
                "admission_rejects": self.admission_rejects,
                "batches": self.batches,
                "batch_rows_hist": dict(self.batch_rows_hist),
                "batch_requests_hist": dict(self.batch_requests_hist),
                "latency": self._latency_dict(),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in self._histograms.items()
                },
                "tuning": {
                    "started": self.tunes_started,
                    "completed": self.tunes_completed,
                    "failed": self.tunes_failed,
                    "cache_hits": self.tune_cache_hits,
                    "hot_swaps": self.hot_swaps,
                    "last": dict(self._last_tune) if self._last_tune else None,
                },
                "runtime": runtime,
            }

    def __repr__(self) -> str:
        s = self.snapshot()
        return (
            f"ServingMetrics(requests={s['requests']}, rows={s['rows']}, "
            f"compiles={s['compiles']}, hits={s['cache_hits']}, "
            f"misses={s['cache_misses']}, fallbacks={s['fallbacks']})"
        )
