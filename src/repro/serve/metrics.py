"""Observability for the serving layer.

A :class:`ServingMetrics` instance is shared by the predictor cache, the
micro-batcher and every session attached to a server. All counters are
guarded by one lock (updates are tiny relative to inference), and
:meth:`snapshot` returns plain Python containers so tests, examples and
monitoring endpoints can read the whole surface atomically.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Callable


class LatencyWindow:
    """Bounded sliding window of request latencies with percentile queries.

    Keeps the most recent ``capacity`` observations; percentiles are exact
    over the window (nearest-rank), which is plenty for a test/metrics
    surface and avoids any sketch dependencies.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: list[float] = []
        self._next = 0
        # Sorted view of the ring, rebuilt at most once per batch of
        # percentile queries: a snapshot asks for four percentiles, and
        # re-sorting the full window for each was the dominant cost of
        # reading metrics on a busy server.
        self._sorted: list[float] | None = None

    def record(self, seconds: float) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.capacity
        self._sorted = None

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self._next = 0
        self._sorted = None

    def _ordered(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._ring)
        return self._sorted

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile (``p`` in [0, 100]); None when empty."""
        if not self._ring:
            return None
        ordered = self._ordered()
        rank = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def max(self) -> float | None:
        """Largest latency currently inside the window; None when empty."""
        if not self._ring:
            return None
        return self._ordered()[-1]


class ServingMetrics:
    """Thread-safe counters + histograms for one server (or session).

    Fields exposed by :meth:`snapshot`:

    ``compiles``            full pipeline compilations actually performed
    ``cache_hits``          predictor-cache hits (incl. waits that shared an
                            in-flight compile)
    ``cache_misses``        predictor-cache misses (a compile was triggered)
    ``cache_evictions``     predictors dropped by the LRU bound
    ``fallbacks``           requests/compiles that degraded to the
                            interpreter or reference path
    ``requests``            predict calls observed
    ``rows``                total rows predicted
    ``errors``              requests that raised
    ``batches``             micro-batches executed
    ``batch_rows_hist``     {rows per executed batch: count}
    ``batch_requests_hist`` {requests coalesced per batch: count}
    ``latency``             {count, p50, p90, p99, window_max, all_time_max,
                            max} in seconds. Percentiles and ``window_max``
                            cover the bounded sliding window only;
                            ``all_time_max`` (and its legacy alias ``max``)
                            covers every request since construction/reset —
                            the two diverge once the window rotates past a
                            spike.
    ``tuning``              background-autotune lifecycle: ``started``,
                            ``completed``, ``failed``, ``cache_hits``
                            (persisted warm starts), ``hot_swaps``
                            (sessions atomically switched to a faster
                            predictor), and ``last`` — the most recent
                            run's explored count, per-row latency and
                            cost-model rank correlation.
    ``runtime``             registered gauges, read at snapshot time (the
                            server wires in kernel-pool counters and the
                            scratch-arena / model-buffer footprints of
                            resident predictors)
    """

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._gauges: dict[str, Callable[[], object]] = {}
        self.compiles = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.fallbacks = 0
        self.requests = 0
        self.rows = 0
        self.errors = 0
        self.batches = 0
        self.batch_rows_hist: Counter[int] = Counter()
        self.batch_requests_hist: Counter[int] = Counter()
        self._latency = LatencyWindow(latency_window)
        self._max_latency = 0.0
        self.tunes_started = 0
        self.tunes_completed = 0
        self.tunes_failed = 0
        self.tune_cache_hits = 0
        self.hot_swaps = 0
        self._last_tune: dict | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_compile(self) -> None:
        with self._lock:
            self.compiles += 1

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_eviction(self, count: int = 1) -> None:
        with self._lock:
            self.cache_evictions += count

    def record_fallback(self) -> None:
        with self._lock:
            self.fallbacks += 1

    def record_request(self, num_rows: int, seconds: float) -> None:
        with self._lock:
            self.requests += 1
            self.rows += int(num_rows)
            self._latency.record(seconds)
            if seconds > self._max_latency:
                self._max_latency = seconds

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_tune_started(self) -> None:
        with self._lock:
            self.tunes_started += 1

    def record_tune_completed(self, info: dict | None = None) -> None:
        """One background tune finished; ``info`` summarizes the run
        (explored count, best per-row µs, rank correlation, swap outcome)."""
        with self._lock:
            self.tunes_completed += 1
            if info is not None:
                self._last_tune = dict(info)
                if info.get("from_cache"):
                    self.tune_cache_hits += 1

    def record_tune_failed(self) -> None:
        with self._lock:
            self.tunes_failed += 1

    def record_hot_swap(self) -> None:
        with self._lock:
            self.hot_swaps += 1

    def record_batch(self, num_rows: int, num_requests: int) -> None:
        with self._lock:
            self.batches += 1
            self.batch_rows_hist[int(num_rows)] += 1
            self.batch_requests_hist[int(num_requests)] += 1

    def register_gauge(self, name: str, fn: Callable[[], object]) -> None:
        """Attach a point-in-time gauge evaluated on every snapshot.

        Gauges surface runtime state that is owned elsewhere (shared kernel
        pool, per-thread scratch arenas) without the metrics object holding
        references into the execution path. A gauge that raises reports the
        error string instead of poisoning the snapshot.
        """
        with self._lock:
            self._gauges[name] = fn

    def _read_gauges(self) -> dict:
        with self._lock:
            gauges = dict(self._gauges)
        values: dict[str, object] = {}
        for name, fn in gauges.items():
            try:
                values[name] = fn()
            except Exception as exc:  # pragma: no cover - defensive
                values[name] = f"<gauge error: {exc}>"
        return values

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latency_percentiles(self) -> dict[str, float | None]:
        with self._lock:
            return self._latency_dict()

    def _latency_dict(self) -> dict[str, float | None]:
        # Caller holds self._lock. ``max`` is kept as an alias of
        # ``all_time_max`` for pre-existing dashboards; it is NOT the
        # window max — after the ring rotates past a spike the two differ.
        any_seen = self.requests > 0 or len(self._latency) > 0
        return {
            "count": len(self._latency),
            "p50": self._latency.percentile(50),
            "p90": self._latency.percentile(90),
            "p99": self._latency.percentile(99),
            "window_max": self._latency.max(),
            "all_time_max": self._max_latency if any_seen else None,
            "max": self._max_latency if any_seen else None,
        }

    def reset(self) -> None:
        """Zero every counter, histogram and latency record (gauges stay).

        For before/after measurements on a long-lived server: registered
        gauges read live state elsewhere and are left wired up.
        """
        with self._lock:
            self.compiles = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.cache_evictions = 0
            self.fallbacks = 0
            self.requests = 0
            self.rows = 0
            self.errors = 0
            self.batches = 0
            self.batch_rows_hist.clear()
            self.batch_requests_hist.clear()
            self._latency.clear()
            self._max_latency = 0.0
            self.tunes_started = 0
            self.tunes_completed = 0
            self.tunes_failed = 0
            self.tune_cache_hits = 0
            self.hot_swaps = 0
            self._last_tune = None

    def snapshot(self) -> dict:
        """Atomic copy of every counter and histogram (plus gauge reads)."""
        runtime = self._read_gauges()
        with self._lock:
            return {
                "compiles": self.compiles,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_evictions": self.cache_evictions,
                "fallbacks": self.fallbacks,
                "requests": self.requests,
                "rows": self.rows,
                "errors": self.errors,
                "batches": self.batches,
                "batch_rows_hist": dict(self.batch_rows_hist),
                "batch_requests_hist": dict(self.batch_requests_hist),
                "latency": self._latency_dict(),
                "tuning": {
                    "started": self.tunes_started,
                    "completed": self.tunes_completed,
                    "failed": self.tunes_failed,
                    "cache_hits": self.tune_cache_hits,
                    "hot_swaps": self.hot_swaps,
                    "last": dict(self._last_tune) if self._last_tune else None,
                },
                "runtime": runtime,
            }

    def __repr__(self) -> str:
        s = self.snapshot()
        return (
            f"ServingMetrics(requests={s['requests']}, rows={s['rows']}, "
            f"compiles={s['compiles']}, hits={s['cache_hits']}, "
            f"misses={s['cache_misses']}, fallbacks={s['fallbacks']})"
        )
