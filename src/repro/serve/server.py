"""Multi-model serving front end.

A :class:`ModelServer` owns one shared :class:`~repro.serve.cache.PredictorCache`
and one :class:`~repro.serve.metrics.ServingMetrics` across every registered
model, so isomorphic models registered under different names share their
compiled predictor and the whole deployment is observable from one snapshot.
Sessions are addressed by name; ``predict(name, rows)`` is the request path
many concurrent clients hammer.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.backend.parallel import pool_stats
from repro.config import Schedule
from repro.errors import ServingError
from repro.forest.ensemble import Forest
from repro.observe import registry as observe_registry
from repro.serve.batching import BatchingPolicy
from repro.serve.cache import DEFAULT_PREDICTOR_CACHE_CAP, PredictorCache
from repro.serve.metrics import ServingMetrics
from repro.serve.session import InferenceSession

_server_ids = itertools.count(1)


@dataclass(frozen=True)
class ServerConfig:
    """Deployment-wide policy for a :class:`ModelServer`.

    Attributes
    ----------
    cache_capacity:
        Bound on resident compiled predictors across all registrations.
    batching:
        Default micro-batching policy applied to every session
        (``None`` disables coalescing).
    threads:
        Default per-batch fan-out through row blocking.
    allow_fallback:
        Degrade to the interpreter on compile failure instead of raising.
    validate_inputs:
        Reject NaN rows at predict time.
    """

    cache_capacity: int = DEFAULT_PREDICTOR_CACHE_CAP
    batching: BatchingPolicy | None = None
    threads: int | None = None
    allow_fallback: bool = True
    validate_inputs: bool = True


class ModelServer:
    """Registry of named :class:`InferenceSession`\\ s over one shared cache."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.metrics = ServingMetrics()
        self.cache = PredictorCache(
            capacity=self.config.cache_capacity, metrics=self.metrics
        )
        self._sessions: dict[str, InferenceSession] = {}
        self._lock = threading.Lock()
        self._closed = False
        # Runtime gauges: the shared kernel pool plus the footprints of
        # every resident predictor (model buffers + per-thread scratch
        # arenas), read at snapshot time.
        self.metrics.register_gauge("kernel_pool", pool_stats)
        self.metrics.register_gauge("scratch_bytes", self._scratch_bytes)
        self.metrics.register_gauge("model_bytes", self._model_bytes)
        # Report into the process-wide observability registry under a
        # unique name so several servers coexist in one snapshot;
        # close() withdraws the registration.
        self._registry_name = f"server-{next(_server_ids)}"
        observe_registry.register_serving(
            self._registry_name, self.metrics_snapshot
        )

    def _scratch_bytes(self) -> int:
        return sum(
            p.scratch_nbytes()
            for p in self.cache.values()
            if hasattr(p, "scratch_nbytes")
        )

    def _model_bytes(self) -> int:
        return sum(
            p.memory_bytes()
            for p in self.cache.values()
            if hasattr(p, "memory_bytes")
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        forest: Forest,
        schedule: Schedule | None = None,
        *,
        batching: BatchingPolicy | None | str = "inherit",
        threads: int | None | str = "inherit",
    ) -> InferenceSession:
        """Compile (or cache-hit) ``forest`` and serve it as ``name``.

        Re-registering an existing name replaces its session; registering a
        fingerprint-identical model (under any name) reuses the cached
        predictor without recompiling.
        """
        if self._closed:
            raise ServingError("server is closed")
        session = InferenceSession(
            forest,
            schedule,
            cache=self.cache,
            metrics=self.metrics,
            batching=self.config.batching if batching == "inherit" else batching,
            threads=self.config.threads if threads == "inherit" else threads,
            allow_fallback=self.config.allow_fallback,
            validate_inputs=self.config.validate_inputs,
        )
        with self._lock:
            old = self._sessions.get(name)
            self._sessions[name] = session
        if old is not None:
            old.close()
        return session

    def unregister(self, name: str) -> None:
        with self._lock:
            session = self._sessions.pop(name, None)
        if session is None:
            raise ServingError(f"no model registered as {name!r}")
        session.close()

    def session(self, name: str) -> InferenceSession:
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise ServingError(f"no model registered as {name!r}")
        return session

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sessions

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def predict(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Objective-transformed predictions from the named model."""
        return self.session(name).predict(rows)

    def raw_predict(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Raw margins from the named model."""
        return self.session(name).raw_predict(rows)

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """All counters plus registry/cache occupancy, read atomically."""
        snap = self.metrics.snapshot()
        snap["models_registered"] = len(self.names())
        snap["predictors_resident"] = len(self.cache)
        return snap

    def close(self) -> None:
        observe_registry.unregister(self._registry_name)
        with self._lock:
            sessions, self._sessions = list(self._sessions.values()), {}
            self._closed = True
        for session in sessions:
            session.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ModelServer(models={len(self.names())}, "
            f"cache={len(self.cache)}/{self.cache.capacity})"
        )
