"""Multi-model serving front end.

A :class:`ModelServer` owns one shared :class:`~repro.serve.cache.PredictorCache`
and one :class:`~repro.serve.metrics.ServingMetrics` across every registered
model, so isomorphic models registered under different names share their
compiled predictor and the whole deployment is observable from one snapshot.
Sessions are addressed by name; ``predict(name, rows)`` is the request path
many concurrent clients hammer.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, wait as futures_wait
from dataclasses import dataclass, field

import numpy as np

from repro.autotune.persist import ScheduleCache, default_cache_path
from repro.autotune.search import autotune
from repro.autotune.space import TuningSpace
from repro.backend.jit import predictor_cache_key
from repro.backend.parallel import get_pool, pool_stats, set_task_timing
from repro.config import Schedule
from repro.errors import ServingError
from repro.forest.ensemble import Forest
from repro.observe import events as flight
from repro.observe import registry as observe_registry
from repro.observe.spans import RequestTracer
from repro.perf.timer import measure
from repro.serve.batching import BatchingPolicy
from repro.serve.cache import DEFAULT_PREDICTOR_CACHE_CAP, PredictorCache
from repro.serve.metrics import ServingMetrics
from repro.serve.session import InferenceSession

_server_ids = itertools.count(1)

#: sentinel: resolve the schedule cache path from the environment/home dir
DEFAULT_TUNE_CACHE = "default"

#: a tuned predictor must beat the incumbent by this factor to be swapped
#: in — re-compiling for sub-noise wins churns the predictor cache for
#: nothing.
SWAP_THRESHOLD = 0.98


@dataclass(frozen=True)
class ServerConfig:
    """Deployment-wide policy for a :class:`ModelServer`.

    Attributes
    ----------
    cache_capacity:
        Bound on resident compiled predictors across all registrations.
    batching:
        Default micro-batching policy applied to every session
        (``None`` disables coalescing).
    threads:
        Default per-batch fan-out through row blocking.
    allow_fallback:
        Degrade to the interpreter on compile failure instead of raising.
    validate_inputs:
        Reject NaN rows at predict time.
    tune_cache_path:
        Backing file for the persistent schedule cache used by
        ``register(..., tune=True)``. The default sentinel resolves to
        ``$REPRO_TUNE_CACHE`` or the per-user cache dir; ``None`` keeps
        tuning winners in memory only (tests, ephemeral deployments).
    tune_max_configs, tune_time_budget_s, tune_patience:
        Budget for each background tune: candidate cap, wall-clock ceiling
        and early-exit patience (see :func:`repro.autotune.autotune`).
    tune_repeats, tune_min_time_s:
        Timing discipline per candidate during background tuning — looser
        than offline benchmarking on purpose: the tuner shares the machine
        with live traffic.
    trace_sample:
        Fraction of ``predict`` calls recorded as request span trees in
        :data:`repro.observe.spans.RING` (deterministic stride sampling,
        no RNG on the request path). ``0.0`` (the default) wires no
        tracer at all — the request path pays one ``is None`` test and
        compiled kernels are byte-identical to an untraced server.
        ``1.0`` traces every request.
    slow_request_s:
        Requests slower than this (seconds) are logged to the flight
        recorder as ``slow_request`` events; ``None`` disables.
    flight_log:
        Path of a JSON-lines file mirroring every flight-recorder event
        (``python -m repro.observe tail --follow`` reads it live);
        ``None`` keeps events in memory only.
    pgo_interval_s:
        How often a ``register(..., pgo=True)`` session re-reads its live
        profile and considers recompiling with a measured hot-depth
        cutoff (see :mod:`repro.pgo`).
    pgo_min_rows:
        Profiled rows a session must have served before its first PGO
        recompile — a cold profile's mean walk depth is noise.
    """

    cache_capacity: int = DEFAULT_PREDICTOR_CACHE_CAP
    batching: BatchingPolicy | None = None
    threads: int | None = None
    allow_fallback: bool = True
    validate_inputs: bool = True
    tune_cache_path: str | None = DEFAULT_TUNE_CACHE
    tune_max_configs: int | None = 24
    tune_time_budget_s: float | None = 10.0
    tune_patience: int | None = 8
    tune_repeats: int = 1
    tune_min_time_s: float = 0.005
    trace_sample: float = 0.0
    slow_request_s: float | None = 0.25
    flight_log: str | None = None
    pgo_interval_s: float = 30.0
    pgo_min_rows: int = 2048


class ModelServer:
    """Registry of named :class:`InferenceSession`\\ s over one shared cache."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        if not 0.0 <= self.config.trace_sample <= 1.0:
            raise ServingError(
                f"trace_sample must be in [0, 1], got {self.config.trace_sample}"
            )
        # trace_sample == 0 wires *no* tracer: sessions then pay a single
        # ``is None`` test per request and nothing trace-related is ever
        # constructed — the zero-overhead-when-off guarantee.
        self.tracer = (
            RequestTracer(self.config.trace_sample)
            if self.config.trace_sample > 0.0
            else None
        )
        if self.tracer is not None:
            # Opting into request tracing also opts the shared kernel pool
            # into per-task wall-clock accounting (surfaced by the
            # OpenMetrics exporter); both stay off on untraced deployments.
            set_task_timing(True)
        if self.config.flight_log is not None:
            flight.recorder.attach_file(self.config.flight_log)
        self.metrics = ServingMetrics()
        self.cache = PredictorCache(
            capacity=self.config.cache_capacity, metrics=self.metrics
        )
        self._sessions: dict[str, InferenceSession] = {}
        # Sharded (multi-process) predictors own live resources — worker
        # processes and shared-memory segments — so the server tracks them
        # by name and closes them on unregister/re-register/close; the
        # predictor cache never holds them (cacheable=False).
        self._sharded: dict[str, object] = {}
        self._slos: dict[str, object] = {}
        self._lock = threading.Lock()
        self._closed = False
        path = self.config.tune_cache_path
        if path == DEFAULT_TUNE_CACHE:
            path = default_cache_path()
        self.schedule_cache = ScheduleCache(path)
        self._tunes: list[Future] = []
        self._pgo_timers: dict[str, threading.Timer] = {}
        # Runtime gauges: the shared kernel pool plus the footprints of
        # every resident predictor (model buffers + per-thread scratch
        # arenas), read at snapshot time.
        self.metrics.register_gauge("kernel_pool", pool_stats)
        self.metrics.register_gauge("scratch_bytes", self._scratch_bytes)
        self.metrics.register_gauge("model_bytes", self._model_bytes)
        self.metrics.register_gauge(
            "bytes_by_precision", self._bytes_by_precision
        )
        self.metrics.register_gauge("pgo", self._pgo_gauge)
        self.metrics.register_gauge("workers", self._workers_gauge)
        # Report into the process-wide observability registry under a
        # unique name so several servers coexist in one snapshot;
        # close() withdraws the registration.
        self._registry_name = f"server-{next(_server_ids)}"
        observe_registry.register_serving(
            self._registry_name, self.metrics_snapshot
        )

    def _scratch_bytes(self) -> int:
        return sum(
            p.scratch_nbytes()
            for p in self.cache.values()
            if hasattr(p, "scratch_nbytes")
        )

    def _model_bytes(self) -> int:
        return sum(
            p.memory_bytes()
            for p in self.cache.values()
            if hasattr(p, "memory_bytes")
        )

    def _bytes_by_precision(self) -> dict:
        """Model/scratch footprints split by schedule precision.

        Makes quantized deployments legible in one snapshot: an int8
        model next to its float64 twin shows the buffer savings directly.
        ``param_bytes`` counts only the threshold/leaf buffers — the ones
        precision narrows — so it compares like for like across
        precisions; ``model_bytes`` is each predictor's own total
        footprint accounting.
        """
        out: dict[str, dict[str, int]] = {}
        for p in self.cache.values():
            precision = getattr(
                getattr(p, "schedule", None), "precision", "unknown"
            )
            slot = out.setdefault(
                precision,
                {
                    "predictors": 0,
                    "model_bytes": 0,
                    "param_bytes": 0,
                    "scratch_bytes": 0,
                },
            )
            slot["predictors"] += 1
            if hasattr(p, "memory_bytes"):
                slot["model_bytes"] += int(p.memory_bytes())
            if getattr(p, "lir", None) is not None:
                from repro.lir.memory import quantized_param_nbytes

                thr, leaves = quantized_param_nbytes(p.lir)
                slot["param_bytes"] += thr + leaves
            if hasattr(p, "scratch_nbytes"):
                slot["scratch_bytes"] += int(p.scratch_nbytes())
        return out

    def _pgo_gauge(self) -> dict:
        """Per-model hot/cold split state for PGO-scheduled sessions.

        For every live session whose schedule carries ``pgo``, reports the
        realized cutoff and the prefix-buffer shrink (see
        :func:`repro.pgo.prefix_bytes`) — the gauge CI asserts on after a
        forced recompile.
        """
        from repro.pgo import prefix_bytes

        out: dict[str, dict] = {}
        with self._lock:
            sessions = dict(self._sessions)
        for name, session in sessions.items():
            if session.schedule.pgo is None:
                continue
            lir = getattr(session.predictor, "lir", None)
            info = {"pgo": session.schedule.pgo}
            if lir is not None:
                info.update(prefix_bytes(lir))
            out[name] = info
        return out

    def _workers_gauge(self) -> dict:
        """Per-model, per-worker liveness/shard/dispatch stats for every
        sharded registration (empty dict when none)."""
        with self._lock:
            sharded = dict(self._sharded)
        return {name: predictor.worker_stats() for name, predictor in sharded.items()}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        forest: Forest | None = None,
        schedule: Schedule | None = None,
        *,
        artifact: str | None = None,
        batching: BatchingPolicy | None | str = "inherit",
        threads: int | None | str = "inherit",
        tune: bool = False,
        tune_rows: np.ndarray | None = None,
        tune_space: TuningSpace | None = None,
        pgo: bool = False,
        workers: int | None = None,
        shards: int | None = None,
        combiner: str = "sum",
        slo=None,
    ) -> InferenceSession:
        """Compile (or cache-hit) ``forest`` and serve it as ``name``.

        Re-registering an existing name replaces its session; registering a
        fingerprint-identical model (under any name) reuses the cached
        predictor without recompiling.

        ``artifact`` serves a pre-compiled AOT artifact directory (see
        :func:`repro.backend.aot.export_artifact`) instead of compiling:
        the kernel, buffers, and schedule are loaded from disk, so a warm
        worker skips the compiler entirely. Mutually exclusive with
        ``forest`` and ``tune`` — tuning needs the model structure, which
        an artifact does not carry. A fingerprint-identical artifact
        already resident in the cache is served from memory without even
        reloading the buffers.

        With ``tune=True`` the session serves immediately on the cheap
        default (or given) schedule while a budget-aware autotune runs on
        the shared kernel pool in the background; when a faster schedule
        wins, the session's predictor is hot-swapped atomically.
        ``tune_rows`` should be a representative sample batch (its size is
        part of the tuning key); synthetic normal rows are used when
        omitted. Winners persist to the server's schedule cache, so a
        restart warm-starts without searching.

        With ``pgo=True`` the session compiles with live profiling
        enabled (``Schedule(profile=True)``) and a periodic job re-reads
        the accumulated walk-depth profile every ``pgo_interval_s``
        seconds: once ``pgo_min_rows`` rows have been profiled it derives
        a hot-depth cutoff (:func:`repro.pgo.measured_hot_depth`),
        recompiles with ``Schedule(pgo=cutoff)``, and atomically
        hot-swaps when the split measures faster — recording a
        ``pgo_swap`` flight event. :meth:`force_pgo_recompile` runs one
        cycle synchronously.

        With ``workers >= 1`` the model is served by the multi-process
        sharded tier (:mod:`repro.serve.workers`): the forest is split
        into ``shards`` tree ranges (default: one per worker, sized by
        :func:`repro.autotune.shards.recommend_shard_count` when
        ``shards`` is omitted), compiled once, exported to shared memory
        and executed by forked workers whose partial sums are folded by
        ``combiner`` (``"sum"``/``"mean"``/``"max_margin"``/``"top<k>"``).
        ``slo`` (an :class:`repro.serve.workers.SLOPolicy`) records the
        model's admission targets for an :class:`AsyncModelFrontend`.
        Mutually exclusive with ``artifact``/``tune``/``pgo`` — the
        sharded predictor owns processes, not a recompilable kernel.
        """
        if self._closed:
            raise ServingError("server is closed")
        if slo is not None:
            with self._lock:
                self._slos[name] = slo
        if workers is not None:
            if forest is None:
                raise ServingError("sharded serving (workers=...) needs a forest")
            if artifact is not None:
                raise ServingError(
                    "register() takes workers=... or an artifact, not both"
                )
            if tune or pgo:
                raise ServingError(
                    "tune/pgo hot-swap a single in-process kernel; the "
                    "sharded tier owns worker processes — register without "
                    "workers= to tune"
                )
            from repro.autotune.shards import recommend_shard_count
            from repro.serve.workers import build_sharded_predictor

            if shards is None and workers >= 1:
                shards = recommend_shard_count(forest, workers)
            predictor = build_sharded_predictor(
                forest,
                schedule,
                num_workers=workers,
                num_shards=shards,
                combiner=combiner,
                validate_inputs=self.config.validate_inputs,
                name=f"repro-shard-{name}",
            )
            session = InferenceSession(
                forest,
                predictor=predictor,
                cache=self.cache,
                metrics=self.metrics,
                batching=self.config.batching if batching == "inherit" else batching,
                threads=self.config.threads if threads == "inherit" else threads,
                allow_fallback=self.config.allow_fallback,
                validate_inputs=self.config.validate_inputs,
                name=name,
                tracer=self.tracer,
                slow_request_s=self.config.slow_request_s,
            )
            with self._lock:
                old = self._sessions.get(name)
                self._sessions[name] = session
                old_sharded = self._sharded.pop(name, None)
                self._sharded[name] = predictor
                stale_timer = self._pgo_timers.pop(name, None)
            if stale_timer is not None:
                stale_timer.cancel()
            if old is not None:
                old.close()
            if old_sharded is not None:
                old_sharded.close()
            return session
        if shards is not None:
            raise ServingError("shards=... requires workers=...")
        if artifact is not None:
            if forest is not None:
                raise ServingError(
                    "register() takes a forest or an artifact, not both"
                )
            if tune:
                raise ServingError(
                    "tune=True needs the forest structure; artifacts carry "
                    "only the compiled kernel — register the forest to tune"
                )
            if pgo:
                raise ServingError(
                    "pgo=True recompiles from the forest structure; "
                    "artifacts carry only the compiled kernel"
                )
            predictor = self._load_artifact(artifact)
            session = InferenceSession(
                None,
                predictor=predictor,
                cache=self.cache,
                metrics=self.metrics,
                batching=self.config.batching if batching == "inherit" else batching,
                threads=self.config.threads if threads == "inherit" else threads,
                allow_fallback=self.config.allow_fallback,
                validate_inputs=self.config.validate_inputs,
                name=name,
                tracer=self.tracer,
                slow_request_s=self.config.slow_request_s,
            )
            with self._lock:
                old = self._sessions.get(name)
                self._sessions[name] = session
                old_sharded = self._sharded.pop(name, None)
                stale_timer = self._pgo_timers.pop(name, None)
            if stale_timer is not None:
                stale_timer.cancel()
            if old is not None:
                old.close()
            if old_sharded is not None:
                old_sharded.close()
            return session
        if forest is None:
            raise ServingError("register() needs a forest or an artifact")
        if pgo:
            # The profile recorder is what the periodic job reads; PGO
            # without it would never see a measured walk depth.
            schedule = (schedule or Schedule()).with_(profile=True)
        session = InferenceSession(
            forest,
            schedule,
            cache=self.cache,
            metrics=self.metrics,
            batching=self.config.batching if batching == "inherit" else batching,
            threads=self.config.threads if threads == "inherit" else threads,
            allow_fallback=self.config.allow_fallback,
            validate_inputs=self.config.validate_inputs,
            name=name,
            tracer=self.tracer,
            slow_request_s=self.config.slow_request_s,
        )
        with self._lock:
            old = self._sessions.get(name)
            self._sessions[name] = session
            old_sharded = self._sharded.pop(name, None)
            stale_timer = self._pgo_timers.pop(name, None)
        if stale_timer is not None:
            stale_timer.cancel()
        if old is not None:
            old.close()
        if old_sharded is not None:
            old_sharded.close()
        if pgo:
            self._arm_pgo_timer(name, session)
        if tune:
            if tune_rows is None:
                rng = np.random.default_rng(0)
                tune_rows = rng.normal(size=(64, forest.num_features))
            else:
                tune_rows = np.ascontiguousarray(tune_rows, dtype=np.float64)
            self._start_tune(name, session, tune_rows, tune_space)
        return session

    def _load_artifact(self, path: str):
        """Load an AOT artifact, serving from the predictor cache when a
        fingerprint-identical executor is already resident."""
        from repro.backend.aot import artifact_fingerprint, load_artifact
        from repro.backend.jit import artifact_cache_key

        key = artifact_cache_key("aot_export", artifact_fingerprint(path))
        cached = self.cache.get(key)
        if cached is not None:
            observe_registry.record_backend_event(
                "aot_export", "artifact_cache_hits"
            )
            return cached
        return load_artifact(path, validate_inputs=self.config.validate_inputs)

    # ------------------------------------------------------------------
    # Background tuning
    # ------------------------------------------------------------------
    def _start_tune(
        self,
        name: str,
        session: InferenceSession,
        rows: np.ndarray,
        space: TuningSpace | None,
    ) -> Future:
        self.metrics.record_tune_started()
        future = get_pool().submit(self._tune_job, name, session, rows, space)
        with self._lock:
            self._tunes = [f for f in self._tunes if not f.done()]
            self._tunes.append(future)
        return future

    def _tune_job(
        self,
        name: str,
        session: InferenceSession,
        rows: np.ndarray,
        space: TuningSpace | None,
    ) -> dict:
        """Runs on the shared kernel pool; must never raise (pool hygiene).

        Tuning compiles/times serial candidates (the searched grid keeps
        ``parallel=1`` from the base schedule), so the job is a leaf task
        and cannot deadlock the pool it runs on.
        """
        cfg = self.config
        try:
            result = autotune(
                session.forest,
                rows,
                space=space,
                base=session.schedule,
                repeats=cfg.tune_repeats,
                max_configs=cfg.tune_max_configs,
                min_time_s=cfg.tune_min_time_s,
                time_budget_s=cfg.tune_time_budget_s,
                patience=cfg.tune_patience,
                cache=self.schedule_cache,
            )
            info = self._maybe_swap(name, session, rows, result)
            self.metrics.record_tune_completed(info)
            return info
        except Exception as exc:  # noqa: BLE001 - a tune failure must never
            # poison the pool worker or take the serving path down; the
            # session keeps serving on its registration-time predictor.
            self.metrics.record_tune_failed()
            flight.record("tune_failed", model=name, error=str(exc))
            return {"name": name, "error": str(exc), "swapped": False}

    def _maybe_swap(self, name, session, rows, result) -> dict:
        """Swap the session onto the tuned predictor if it measures faster."""
        cfg = self.config
        baseline_us = measure(
            lambda: session.predictor.raw_predict(rows),
            rows=rows.shape[0],
            repeats=cfg.tune_repeats,
            min_time_s=cfg.tune_min_time_s,
        ).per_row_us
        tuned_us = measure(
            lambda: result.best_predictor.raw_predict(rows),
            rows=rows.shape[0],
            repeats=cfg.tune_repeats,
            min_time_s=cfg.tune_min_time_s,
        ).per_row_us
        info = {
            "name": name,
            "explored": result.explored,
            "grid_size": result.grid_size,
            "from_cache": result.from_cache,
            "rank_correlation": result.rank_correlation,
            "stopped_by": result.stopped_by,
            "baseline_per_row_us": baseline_us,
            "tuned_per_row_us": tuned_us,
            "swapped": False,
        }
        if tuned_us >= baseline_us * SWAP_THRESHOLD:
            return info
        # Currency check and swap under ONE lock hold: checking then
        # swapping after release lets a concurrent unregister/close slip
        # between them and receive a swap onto a session it already closed.
        with self._lock:
            if self._sessions.get(name) is not session or self._closed:
                return info
            key = predictor_cache_key(session.forest, result.best_schedule)
            self.cache.put(key, result.best_predictor)
            session.swap_predictor(result.best_predictor, result.best_schedule)
            info["swapped"] = True
        flight.record(
            "hot_swap",
            model=name,
            baseline_per_row_us=round(baseline_us, 4),
            tuned_per_row_us=round(tuned_us, 4),
            schedule=result.best_schedule.to_dict(),
        )
        return info

    # ------------------------------------------------------------------
    # Profile-guided recompilation
    # ------------------------------------------------------------------
    def _arm_pgo_timer(self, name: str, session: InferenceSession) -> None:
        """(Re)schedule the next profile check for ``name``.

        One timer per registration name; re-registering or unregistering
        cancels it. The timer thread runs the whole cycle — compile and
        measurement included — which is fine: it is a daemon thread and
        the cycle is bounded by one compile plus two short measurements.
        """
        timer = threading.Timer(
            self.config.pgo_interval_s, self._pgo_tick, args=(name, session)
        )
        timer.daemon = True
        with self._lock:
            if self._closed or self._sessions.get(name) is not session:
                return
            previous = self._pgo_timers.get(name)
            self._pgo_timers[name] = timer
        if previous is not None:
            previous.cancel()
        timer.start()

    def _pgo_tick(self, name: str, session: InferenceSession) -> None:
        """Timer callback: one PGO cycle, then re-arm while still current."""
        self._pgo_job(name, session)
        self._arm_pgo_timer(name, session)

    def _pgo_job(
        self, name: str, session: InferenceSession, *, force: bool = False
    ) -> dict:
        """One profile-guided recompile cycle; must never raise.

        Reads the session's live profile aggregate, derives the measured
        hot-depth cutoff, recompiles with ``Schedule(pgo=cutoff)`` (the
        profile stays on, so later cycles keep adapting), and hot-swaps
        when the split beats the incumbent by :data:`SWAP_THRESHOLD`.
        ``force`` skips the warm-up row gate and the threshold — the
        operator (or CI) asked for the swap, not a maybe.
        """
        from repro.pgo import measured_hot_depth, prefix_bytes, walking_trees

        cfg = self.config
        info = {"name": name, "swapped": False, "reason": None}
        try:
            predictor = session.predictor
            lir = getattr(predictor, "lir", None)
            if getattr(predictor, "profile_recorder", None) is None or lir is None:
                info["reason"] = "no_profile"
                return info
            counters = predictor.profile_counters()
            if not force and counters.get("rows", 0) < cfg.pgo_min_rows:
                info["reason"] = "cold_profile"
                return info
            cutoff, mean = measured_hot_depth(counters, walking_trees(lir))
            if cutoff is None:
                info["reason"] = "empty_profile"
                return info
            info["cutoff"] = cutoff
            info["mean_steps"] = round(mean, 3)
            if session.schedule.pgo == cutoff:
                info["reason"] = "stable"
                return info
            tuned_schedule = session.schedule.with_(pgo=cutoff)
            from repro.api import compile_model

            tuned = compile_model(
                session.forest,
                tuned_schedule,
                validate_inputs=cfg.validate_inputs,
            )
            rng = np.random.default_rng(0)
            rows = rng.normal(size=(256, session.forest.num_features))
            baseline_us = measure(
                lambda: session.predictor.raw_predict(rows),
                rows=rows.shape[0],
                repeats=cfg.tune_repeats,
                min_time_s=cfg.tune_min_time_s,
            ).per_row_us
            tuned_us = measure(
                lambda: tuned.raw_predict(rows),
                rows=rows.shape[0],
                repeats=cfg.tune_repeats,
                min_time_s=cfg.tune_min_time_s,
            ).per_row_us
            info["baseline_per_row_us"] = round(baseline_us, 4)
            info["tuned_per_row_us"] = round(tuned_us, 4)
            faster = tuned_us < baseline_us * SWAP_THRESHOLD
            if not (faster or force):
                info["reason"] = "slower"
                return info
            # Currency check and swap under ONE lock hold (see _maybe_swap):
            # otherwise a concurrent unregister/close can take the session
            # down between the check and the swap.
            with self._lock:
                if self._sessions.get(name) is not session or self._closed:
                    info["reason"] = "superseded"
                    return info
                key = predictor_cache_key(session.forest, tuned_schedule)
                self.cache.put(key, tuned)
                session.swap_predictor(tuned, tuned_schedule)
                info["swapped"] = True
            info["prefix"] = prefix_bytes(tuned.lir)
            flight.record(
                "pgo_swap",
                model=name,
                cutoff=cutoff,
                mean_steps=info["mean_steps"],
                baseline_per_row_us=info["baseline_per_row_us"],
                tuned_per_row_us=info["tuned_per_row_us"],
                forced=force,
                **info["prefix"],
            )
            return info
        except Exception as exc:  # noqa: BLE001 - a PGO failure must never
            # take the timer thread (or a force_pgo_recompile caller) down;
            # the session keeps serving on its current predictor.
            info["reason"] = "error"
            info["error"] = str(exc)
            flight.record("pgo_failed", model=name, error=str(exc))
            return info

    def force_pgo_recompile(self, name: str) -> dict:
        """Run one PGO cycle for ``name`` synchronously, swapping even
        when the measured win is inside the noise threshold.

        Returns the cycle's info dict (``swapped``/``cutoff``/timings or a
        ``reason`` explaining why nothing changed). Tests and CI use this
        instead of waiting out ``pgo_interval_s``.
        """
        return self._pgo_job(name, self.session(name), force=True)

    def wait_for_tunes(self, timeout: float | None = None) -> bool:
        """Block until every background tune launched so far settles.

        Returns False when ``timeout`` expired with tunes still running.
        """
        with self._lock:
            pending = list(self._tunes)
        done, not_done = futures_wait(pending, timeout=timeout)
        return not not_done

    def unregister(self, name: str) -> None:
        with self._lock:
            session = self._sessions.pop(name, None)
            sharded = self._sharded.pop(name, None)
            timer = self._pgo_timers.pop(name, None)
            self._slos.pop(name, None)
        if timer is not None:
            timer.cancel()
        if session is None:
            raise ServingError(f"no model registered as {name!r}")
        session.close()
        if sharded is not None:
            sharded.close()

    def slo_policy(self, name: str):
        """The model's registered admission policy, or ``None``."""
        with self._lock:
            return self._slos.get(name)

    def session(self, name: str) -> InferenceSession:
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise ServingError(f"no model registered as {name!r}")
        return session

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sessions

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def predict(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Objective-transformed predictions from the named model."""
        return self.session(name).predict(rows)

    def raw_predict(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Raw margins from the named model."""
        return self.session(name).raw_predict(rows)

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """All counters plus registry/cache occupancy, read atomically."""
        snap = self.metrics.snapshot()
        snap["models_registered"] = len(self.names())
        snap["predictors_resident"] = len(self.cache)
        return snap

    def close(self) -> None:
        observe_registry.unregister(self._registry_name)
        # The flight recorder is process-wide; only withdraw the mirror
        # file if it is still the one this server attached.
        if (
            self.config.flight_log is not None
            and flight.recorder.file_path == self.config.flight_log
        ):
            flight.recorder.detach_file()
        with self._lock:
            sessions, self._sessions = list(self._sessions.values()), {}
            sharded, self._sharded = list(self._sharded.values()), {}
            self._slos = {}
            self._closed = True
            tunes, self._tunes = list(self._tunes), []
            pgo_timers, self._pgo_timers = list(self._pgo_timers.values()), {}
        for timer in pgo_timers:
            timer.cancel()
        for future in tunes:
            future.cancel()
        # Running tunes are bounded by the tuning budget; wait them out so
        # no background compile outlives the server (their swaps are
        # already disarmed by _closed).
        futures_wait([f for f in tunes if not f.cancelled()])
        for session in sessions:
            session.close()
        for predictor in sharded:
            predictor.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ModelServer(models={len(self.names())}, "
            f"cache={len(self.cache)}/{self.cache.capacity})"
        )
