"""Request coalescing: micro-batching for the serving layer.

The compiler's entire premise is that batch inference amortizes per-call
overhead (Section II) — so the server should never run a compiled kernel on
one row if ten requests are waiting. :class:`MicroBatcher` owns a bounded
queue and a worker thread: the worker takes the oldest pending request,
drains whatever else arrives within ``max_delay_s`` (up to
``max_batch_rows``), stacks the rows into one contiguous batch, runs the
kernel once, and scatters the per-request slices back through futures.

Requests never interleave rows: each request's rows occupy one contiguous
slice of the batch, so per-row results are identical to a solo run (the
kernels are row-parallel). Exceptions during a batch are delivered to every
request in that batch.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ServingError
from repro.serve.metrics import ServingMetrics


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs for the micro-batcher.

    Attributes
    ----------
    max_batch_rows:
        Stop coalescing once the assembled batch reaches this many rows.
        The batch may exceed it by the final request's rows (requests are
        never split).
    max_delay_s:
        How long the worker waits for more requests after the first one —
        the latency the slowest request in a batch pays for coalescing.
    queue_depth:
        Bound on queued (not yet batched) requests; backpressure beyond it.
    submit_timeout_s:
        How long ``submit`` blocks on a full queue before raising
        :class:`~repro.errors.ServingError`.
    """

    max_batch_rows: int = 1024
    max_delay_s: float = 0.002
    queue_depth: int = 1024
    submit_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_batch_rows < 1:
            raise ServingError("max_batch_rows must be >= 1")
        if self.max_delay_s < 0:
            raise ServingError("max_delay_s must be >= 0")
        if self.queue_depth < 1:
            raise ServingError("queue_depth must be >= 1")


class _Request:
    __slots__ = ("rows", "future", "enqueued_s", "trace")

    def __init__(self, rows: np.ndarray, future: Future, trace=None) -> None:
        self.rows = rows
        self.future = future
        # Enqueue timestamp feeds the queue-wait histogram (always) and the
        # request trace's queue_wait stage (when the request is sampled).
        self.enqueued_s = time.perf_counter()
        self.trace = trace


_STOP = object()


class MicroBatcher:
    """Coalesce concurrent predict calls into micro-batches.

    ``run_batch`` receives one 2-D float64 row block and returns the
    per-row result array (1-D or 2-D); it runs only on the single worker
    thread, so it needs no internal locking.
    """

    def __init__(
        self,
        run_batch: Callable[[np.ndarray], np.ndarray],
        policy: BatchingPolicy | None = None,
        metrics: ServingMetrics | None = None,
        name: str = "repro-batcher",
    ) -> None:
        self.run_batch = run_batch
        self.policy = policy or BatchingPolicy()
        self.metrics = metrics or ServingMetrics()
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=self.policy.queue_depth)
        self._closed = threading.Event()
        self._worker = threading.Thread(target=self._loop, name=name, daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, rows: np.ndarray, trace=None) -> Future:
        """Enqueue ``rows``; the future resolves to their result slice.

        ``trace`` (a :class:`repro.observe.spans.RequestTrace`, when the
        request is sampled) rides along with the request: the worker
        records its ``queue_wait``/``assemble``/``kernel`` stages, and the
        caller — synchronized by the future — finishes the tree.
        """
        if self._closed.is_set():
            raise ServingError("micro-batcher is closed")
        future: Future = Future()
        rows = np.asarray(rows)
        # Empty batches go through the queue like everything else:
        # ``run_batch`` is contractually worker-thread-only (it may touch
        # thread-local scratch arenas and unlocked state), so resolving
        # inline on the caller thread would violate that contract.
        try:
            self._queue.put(
                _Request(rows, future, trace), timeout=self.policy.submit_timeout_s
            )
        except queue.Full:
            raise ServingError(
                f"micro-batch queue full ({self.policy.queue_depth} pending); "
                "backpressure exceeded submit_timeout_s"
            ) from None
        return future

    def predict(self, rows: np.ndarray, trace=None) -> np.ndarray:
        """Blocking convenience: ``submit`` + wait."""
        return self.submit(rows, trace=trace).result()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            num_rows = item.rows.shape[0]
            deadline = time.monotonic() + self.policy.max_delay_s
            stop_after = False
            while num_rows < self.policy.max_batch_rows:
                remaining = deadline - time.monotonic()
                try:
                    nxt = self._queue.get(timeout=max(0.0, remaining)) if remaining > 0 \
                        else self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop_after = True
                    break
                batch.append(nxt)
                num_rows += nxt.rows.shape[0]
            self._execute(batch, num_rows)
            if stop_after:
                break
        self._drain_rejecting()

    def _execute(self, batch: list[_Request], num_rows: int) -> None:
        started = time.perf_counter()
        for req in batch:
            self.metrics.record_queue_wait(started - req.enqueued_s)
            if req.trace is not None:
                req.trace.stage("queue_wait", now=started)
        self.metrics.record_batch(num_rows, len(batch))
        try:
            if len(batch) == 1:
                stacked = batch[0].rows
            else:
                stacked = np.concatenate([req.rows for req in batch], axis=0)
            assembled = time.perf_counter()
            results = self.run_batch(stacked)
            finished = time.perf_counter()
            for req in batch:
                if req.trace is not None:
                    req.trace.stage("assemble", now=assembled)
                    req.trace.stage("kernel", now=finished)
        except BaseException as exc:
            for req in batch:
                if not req.future.set_running_or_notify_cancel():
                    continue
                req.future.set_exception(exc)
            return
        offset = 0
        for req in batch:
            n = req.rows.shape[0]
            if req.future.set_running_or_notify_cancel():
                req.future.set_result(results[offset : offset + n])
            offset += n

    def _drain_rejecting(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(ServingError("micro-batcher closed"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = 5.0) -> None:
        """Stop the worker; pending requests fail with ``ServingError``."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(_STOP)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
