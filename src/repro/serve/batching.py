"""Request coalescing: micro-batching for the serving layer.

The compiler's entire premise is that batch inference amortizes per-call
overhead (Section II) — so the server should never run a compiled kernel on
one row if ten requests are waiting. :class:`MicroBatcher` owns a bounded
queue and a worker thread: the worker takes the oldest pending request,
drains whatever else arrives within the coalescing window (up to
``max_batch_rows``), stacks the rows into one contiguous batch, runs the
kernel once, and scatters the per-request slices back through futures.

The window is either fixed (``max_delay_s``) or adaptive
(``BatchingPolicy(adaptive=True)``): sized from the live request-latency
p50 that :class:`~repro.serve.metrics.ServingMetrics` already tracks, so a
fast model coalesces briefly and a slow model — where the kernel dwarfs
the wait — coalesces longer, without retuning ``max_delay_s`` per model.

Requests never interleave rows: each request's rows occupy one contiguous
slice of the batch, so per-row results are identical to a solo run (the
kernels are row-parallel). Exceptions during a batch are delivered to every
request in that batch; death of the worker thread itself fails every
pending and future request with :class:`~repro.errors.ServingError` rather
than stranding their futures.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ServingError
from repro.observe import events as flight
from repro.serve.metrics import ServingMetrics


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs for the micro-batcher.

    Attributes
    ----------
    max_batch_rows:
        Stop coalescing once the assembled batch reaches this many rows.
        The batch may exceed it by the final request's rows (requests are
        never split).
    max_delay_s:
        How long the worker waits for more requests after the first one —
        the latency the slowest request in a batch pays for coalescing.
        With ``adaptive=True`` this becomes the window's upper bound.
    queue_depth:
        Bound on queued (not yet batched) requests; backpressure beyond it.
    submit_timeout_s:
        How long ``submit`` blocks on a full queue before raising
        :class:`~repro.errors.ServingError`.
    adaptive:
        Size the coalescing window from live latency percentiles instead
        of the fixed ``max_delay_s``: the window is
        ``delay_fraction × p50`` request latency, clamped to
        ``[min_delay_s, max_delay_s]``. Until the latency window has
        samples the batcher falls back to ``max_delay_s``.
    min_delay_s:
        Adaptive-window floor (ignored when ``adaptive`` is false).
    delay_fraction:
        Fraction of the live p50 latency to spend coalescing (ignored
        when ``adaptive`` is false). Spending a quarter of the typical
        request's latency on coalescing bounds the relative latency tax
        while still letting slow models form large batches.
    """

    max_batch_rows: int = 1024
    max_delay_s: float = 0.002
    queue_depth: int = 1024
    submit_timeout_s: float = 1.0
    adaptive: bool = False
    min_delay_s: float = 0.0
    delay_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_batch_rows < 1:
            raise ServingError("max_batch_rows must be >= 1")
        if self.max_delay_s < 0:
            raise ServingError("max_delay_s must be >= 0")
        if self.queue_depth < 1:
            raise ServingError("queue_depth must be >= 1")
        # ``not (x >= 0)`` also rejects NaN, which queue.put would
        # otherwise turn into an opaque ValueError on every submit.
        if not (self.submit_timeout_s >= 0):
            raise ServingError("submit_timeout_s must be >= 0")
        if not (0 <= self.min_delay_s <= self.max_delay_s):
            raise ServingError("min_delay_s must be within [0, max_delay_s]")
        if not (0 < self.delay_fraction <= 1):
            raise ServingError("delay_fraction must be within (0, 1]")


class _Request:
    __slots__ = ("rows", "future", "enqueued_s", "trace")

    def __init__(self, rows: np.ndarray, future: Future, trace=None) -> None:
        self.rows = rows
        self.future = future
        # Enqueue timestamp feeds the queue-wait histogram (always) and the
        # request trace's queue_wait stage (when the request is sampled).
        self.enqueued_s = time.perf_counter()
        self.trace = trace


_STOP = object()


class MicroBatcher:
    """Coalesce concurrent predict calls into micro-batches.

    ``run_batch`` receives one 2-D float64 row block and returns the
    per-row result array (1-D or 2-D); it runs only on the single worker
    thread, so it needs no internal locking.
    """

    def __init__(
        self,
        run_batch: Callable[[np.ndarray], np.ndarray],
        policy: BatchingPolicy | None = None,
        metrics: ServingMetrics | None = None,
        name: str = "repro-batcher",
    ) -> None:
        self.run_batch = run_batch
        self.policy = policy or BatchingPolicy()
        self.metrics = metrics or ServingMetrics()
        self.name = name
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=self.policy.queue_depth)
        self._closed = threading.Event()
        # Written once by the worker thread on death, read by submitters;
        # non-None means every pending/future request must fail with it.
        self._death: ServingError | None = None
        self._worker = threading.Thread(target=self._loop, name=name, daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, rows: np.ndarray, trace=None) -> Future:
        """Enqueue ``rows``; the future resolves to their result slice.

        ``trace`` (a :class:`repro.observe.spans.RequestTrace`, when the
        request is sampled) rides along with the request: the worker
        records its ``queue_wait``/``assemble``/``kernel`` stages, and the
        caller — synchronized by the future — finishes the tree.
        """
        if self._closed.is_set():
            raise ServingError("micro-batcher is closed")
        self._check_alive()
        future: Future = Future()
        rows = np.asarray(rows)
        # Empty batches go through the queue like everything else:
        # ``run_batch`` is contractually worker-thread-only (it may touch
        # thread-local scratch arenas and unlocked state), so resolving
        # inline on the caller thread would violate that contract.
        try:
            self._queue.put(
                _Request(rows, future, trace), timeout=self.policy.submit_timeout_s
            )
        except queue.Full:
            raise ServingError(
                f"micro-batch queue full ({self.policy.queue_depth} pending); "
                "backpressure exceeded submit_timeout_s"
            ) from None
        # The worker may have died between the liveness check and the put,
        # in which case nothing will ever drain this request — fail the
        # stragglers (including ours) from here instead of stranding them.
        if self._death is not None or not self._worker.is_alive():
            self._fail_pending(self._death_error())
        return future

    def predict(self, rows: np.ndarray, trace=None) -> np.ndarray:
        """Blocking convenience: ``submit`` + wait."""
        return self.submit(rows, trace=trace).result()

    def _check_alive(self) -> None:
        if self._death is not None or not self._worker.is_alive():
            raise self._death_error()

    def _death_error(self) -> ServingError:
        return self._death or ServingError(f"micro-batch worker {self.name!r} is dead")

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def coalescing_window_s(self) -> float:
        """The window the worker currently waits to coalesce one batch.

        Fixed policies always return ``max_delay_s``; adaptive policies
        return ``delay_fraction × live p50`` request latency clamped to
        ``[min_delay_s, max_delay_s]`` (``max_delay_s`` until the metrics
        latency window has any samples).
        """
        policy = self.policy
        if not policy.adaptive:
            return policy.max_delay_s
        p50 = self.metrics.latency_percentiles().get("p50")
        if p50 is None:
            return policy.max_delay_s
        return min(policy.max_delay_s, max(policy.min_delay_s, policy.delay_fraction * p50))

    def _loop(self) -> None:
        # ``inflight`` is the batch currently being assembled/executed; it
        # must be visible to the except handler because requests already
        # dequeued are no longer reachable through ``_fail_pending``.
        inflight: list[_Request] = []
        try:
            while True:
                item = self._queue.get()
                if item is _STOP:
                    break
                inflight = [item]
                num_rows = item.rows.shape[0]
                deadline = time.monotonic() + self.coalescing_window_s()
                stop_after = False
                while num_rows < self.policy.max_batch_rows:
                    remaining = deadline - time.monotonic()
                    try:
                        nxt = self._queue.get(timeout=max(0.0, remaining)) if remaining > 0 \
                            else self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        stop_after = True
                        break
                    inflight.append(nxt)
                    num_rows += nxt.rows.shape[0]
                self._execute(inflight, num_rows)
                inflight = []
                if stop_after:
                    break
        except BaseException as exc:
            # _execute delivers per-batch failures through futures; anything
            # that still escapes (a raising metrics hook, a corrupted queue)
            # would previously kill this thread silently and strand every
            # queued and future request. Record the death and fail them all.
            self._death = ServingError(f"micro-batch worker {self.name!r} died: {exc!r}")
            self._death.__cause__ = exc
            flight.record("worker_dead", component="micro_batcher", name=self.name, error=repr(exc))
            for req in inflight:
                if req.future.set_running_or_notify_cancel():
                    req.future.set_exception(self._death)
            self._fail_pending(self._death)
            return
        self._fail_pending(ServingError("micro-batcher closed"))

    def _execute(self, batch: list[_Request], num_rows: int) -> None:
        # Everything up to the scatter is guarded: metrics hooks and trace
        # stages can raise (they take locks and call user-visible code),
        # and an escape here must fail this batch's futures, not the worker.
        try:
            started = time.perf_counter()
            for req in batch:
                self.metrics.record_queue_wait(started - req.enqueued_s)
                if req.trace is not None:
                    req.trace.stage("queue_wait", now=started)
            self.metrics.record_batch(num_rows, len(batch))
            if len(batch) == 1:
                stacked = batch[0].rows
            else:
                stacked = np.concatenate([req.rows for req in batch], axis=0)
            assembled = time.perf_counter()
            results = self.run_batch(stacked)
            finished = time.perf_counter()
            for req in batch:
                if req.trace is not None:
                    req.trace.stage("assemble", now=assembled)
                    req.trace.stage("kernel", now=finished)
        except BaseException as exc:
            for req in batch:
                if not req.future.set_running_or_notify_cancel():
                    continue
                req.future.set_exception(exc)
            return
        offset = 0
        for req in batch:
            n = req.rows.shape[0]
            if req.future.set_running_or_notify_cancel():
                try:
                    req.future.set_result(results[offset : offset + n])
                except BaseException as exc:  # e.g. run_batch returned a non-array
                    req.future.set_exception(exc)
            offset += n

    def _fail_pending(self, exc: ServingError) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(exc)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = 5.0) -> None:
        """Stop the worker; pending requests fail with ``ServingError``."""
        if self._closed.is_set():
            return
        self._closed.set()
        # The queue is bounded, so a blocking put would hang forever if the
        # worker is dead or wedged inside run_batch with a full queue.
        # Alternate non-blocking puts with draining: every Full drains one
        # pending request (failed, not dropped), so the loop always makes
        # progress toward inserting _STOP.
        while True:
            try:
                self._queue.put_nowait(_STOP)
                break
            except queue.Full:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    continue  # the worker drained between our two calls; retry
                if item is not _STOP and item.future.set_running_or_notify_cancel():
                    item.future.set_exception(ServingError("micro-batcher closed"))
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():
            # Worker is wedged (e.g. run_batch never returns): requests
            # queued behind it would strand, and its own drain will never
            # run. Queue.get hands each item to exactly one caller, so
            # draining from here cannot double-resolve a future.
            self._fail_pending(ServingError("micro-batcher closed"))
            # The drain may have consumed the _STOP sentinel; replace it so
            # a worker that eventually unwedges exits instead of blocking
            # forever on the now-empty queue (an extra _STOP is harmless).
            try:
                self._queue.put_nowait(_STOP)
            except queue.Full:
                pass

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
