"""One served model: compile-once, predict-many, degrade-gracefully.

An :class:`InferenceSession` is the serving wrapper around one registered
forest. It compiles through a shared :class:`~repro.serve.cache.PredictorCache`
(so fingerprint-identical registrations are cache hits), optionally coalesces
concurrent ``predict`` calls through a :class:`~repro.serve.batching.MicroBatcher`,
and — when compilation fails with a :class:`~repro.errors.CompilerError` —
falls back to the interpreter (or, if even lowering failed, the reference
``Forest`` traversal) instead of crashing, recording the event in metrics.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import compile_model
from repro.backend.jit import (
    artifact_cache_key,
    model_fingerprint,
    predictor_cache_key,
)
from repro.config import Schedule
from repro.errors import CompilerError, ServingError
from repro.forest.ensemble import Forest, sigmoid, softmax
from repro.observe import events as flight
from repro.serve.batching import BatchingPolicy, MicroBatcher
from repro.serve.cache import PredictorCache
from repro.serve.fallback import InterpreterPredictor, ReferencePredictor
from repro.serve.metrics import ServingMetrics


def _lower_only(forest: Forest, schedule: Schedule):
    """Run the pipeline up to LIR (no codegen); used by the fallback path."""
    from repro.hir.ir import build_hir
    from repro.lir.lowering import lower_mir_to_lir
    from repro.mir.lowering import lower_hir_to_mir
    from repro.mir.passes import run_mir_pipeline

    hir = build_hir(forest, schedule)
    return lower_mir_to_lir(run_mir_pipeline(lower_hir_to_mir(hir), hir), hir)


class InferenceSession:
    """Serving handle for one model + schedule.

    Parameters
    ----------
    forest, schedule:
        The model and its compilation schedule (``None`` = paper default).
    cache:
        Shared predictor cache; a private one is created when omitted.
    metrics:
        Shared metrics sink; a private one is created when omitted.
    batching:
        A :class:`BatchingPolicy` to coalesce concurrent ``predict`` calls
        into micro-batches, or ``None`` (default) for direct execution.
    threads:
        Per-batch fan-out through ``parallel_predict`` row blocking;
        ``None`` defers to the schedule's ``parallel`` field.
    allow_fallback:
        Degrade to the interpreter/reference path on compile failure
        instead of raising.
    validate_inputs:
        Reject NaN rows at predict time.
    name:
        The registration name (used to label request spans and flight
        events); defaults to a fingerprint prefix.
    tracer:
        A :class:`repro.observe.spans.RequestTracer` sampling requests
        into span trees, or ``None`` (default) for no tracing — the
        request path then pays exactly one ``is None`` test.
    slow_request_s:
        Latency threshold above which a request is logged to the flight
        recorder as a ``slow_request`` event; ``None`` disables.
    """

    def __init__(
        self,
        forest: Forest | None,
        schedule: Schedule | None = None,
        *,
        predictor=None,
        cache: PredictorCache | None = None,
        metrics: ServingMetrics | None = None,
        batching: BatchingPolicy | None = None,
        threads: int | None = None,
        allow_fallback: bool = True,
        validate_inputs: bool = True,
        name: str | None = None,
        tracer=None,
        slow_request_s: float | None = None,
    ) -> None:
        if forest is None and predictor is None:
            raise ServingError("a session needs a forest or a preloaded predictor")
        self.forest = forest
        self.name = name
        self._tracer = tracer
        self._slow_request_s = slow_request_s
        self.metrics = metrics if metrics is not None else ServingMetrics()
        # NB: `cache or ...` would be wrong — an *empty* cache is falsy.
        self.cache = cache if cache is not None else PredictorCache(metrics=self.metrics)
        self.threads = threads
        self.allow_fallback = allow_fallback
        self.validate_inputs = validate_inputs
        self.fallback_error: CompilerError | None = None
        if predictor is not None:
            # Pre-built executor (an AOT artifact load, typically): serve
            # it through the shared cache so a fingerprint-identical
            # registration — loaded or compiled — shares one slot, but
            # never invoke the compiler.
            self.schedule = predictor.schedule
            self.objective = getattr(predictor, "objective", "regression")
            self.fingerprint = predictor.fingerprint
            self.cache_key = artifact_cache_key(
                getattr(predictor, "backend_name", self.schedule.backend),
                predictor.fingerprint,
            )
            if getattr(predictor, "cacheable", True):
                self.predictor, self.cache_hit = self.cache.get_or_compile(
                    self.cache_key, lambda: predictor
                )
            else:
                # Executors that own live resources (worker pools, shared
                # memory) must not be coalesced across registrations or
                # evicted/revived by the LRU — their lifecycle belongs to
                # exactly one owner.
                self.predictor, self.cache_hit = predictor, False
        else:
            self.schedule = schedule or Schedule()
            self.objective = forest.objective
            self.fingerprint = model_fingerprint(forest, self.schedule)
            # Backend-qualified: the same (forest, schedule) compiled under
            # two backends must not collide on one cache slot.
            self.cache_key = predictor_cache_key(forest, self.schedule)
            self.predictor, self.cache_hit = self.cache.get_or_compile(
                self.cache_key, self._compile
            )
        if self.name is None:
            self.name = self.fingerprint[:12]
        self._batcher: MicroBatcher | None = None
        if batching is not None:
            self._batcher = MicroBatcher(
                self._run_raw, policy=batching, metrics=self.metrics,
                name=f"repro-batcher-{self.fingerprint[:8]}",
            )

    # ------------------------------------------------------------------
    # Compilation (invoked at most once per fingerprint via the cache)
    # ------------------------------------------------------------------
    def _compile(self):
        self.metrics.record_compile()
        label = self.name or self.fingerprint[:12]
        try:
            predictor = compile_model(
                self.forest, self.schedule, validate_inputs=self.validate_inputs
            )
        except CompilerError as exc:
            if not self.allow_fallback:
                raise
            self.fallback_error = exc
            self.metrics.record_fallback()
            flight.record(
                "fallback",
                model=label,
                fingerprint=self.fingerprint[:12],
                error=str(exc),
            )
            try:
                lir = _lower_only(self.forest, self.schedule)
                return InterpreterPredictor(self.forest, lir, self.validate_inputs)
            except CompilerError:
                # Even lowering failed: serve the reference semantics.
                return ReferencePredictor(self.forest, self.schedule, self.validate_inputs)
        trace = getattr(predictor, "trace", None)
        flight.record(
            "compile",
            model=label,
            fingerprint=self.fingerprint[:12],
            backend=self.schedule.backend,
            precision=self.schedule.precision,
            duration_ms=(
                round(trace.total_seconds * 1e3, 3) if trace is not None else None
            ),
        )
        return predictor

    @property
    def used_fallback(self) -> bool:
        """Whether this session serves through a degraded executor."""
        return getattr(self.predictor, "is_fallback", False)

    # ------------------------------------------------------------------
    # Hot swap (background tuning)
    # ------------------------------------------------------------------
    def swap_predictor(self, predictor, schedule: Schedule | None = None):
        """Atomically switch this session to ``predictor``; returns the old one.

        The swap is one attribute rebind: requests already inside
        ``raw_predict`` finish on the predictor they captured, later
        requests see the new one — no request is dropped or served by a
        half-updated session. ``schedule`` (when given) updates the
        session's schedule and fingerprint to match, and the swap is
        counted in metrics.
        """
        old = self.predictor
        if schedule is not None:
            if self.forest is None:
                raise ServingError(
                    "cannot re-schedule an artifact-backed session (no forest)"
                )
            self.schedule = schedule
            self.fingerprint = model_fingerprint(self.forest, schedule)
            self.cache_key = predictor_cache_key(self.forest, schedule)
        self.predictor = predictor
        self.fallback_error = None
        self.metrics.record_hot_swap()
        return old

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _run_raw(self, rows: np.ndarray) -> np.ndarray:
        """Execute one (possibly coalesced) batch of raw margins."""
        start = time.perf_counter()
        out = self.predictor.raw_predict(rows, threads=self.threads)
        self.metrics.record_kernel_time(time.perf_counter() - start)
        return out

    def raw_predict(self, rows: np.ndarray) -> np.ndarray:
        """Raw margins, through the micro-batcher when one is configured.

        When this session has a tracer and the request is sampled, the
        whole call is covered by a span tree: ``admission`` (input
        coercion), then either ``queue_wait``/``assemble``/``kernel``
        (batched, recorded by the batcher worker) or ``kernel`` (direct),
        then ``aggregate`` (scatter/wake-up/bookkeeping). The stages are
        contiguous marks, so their durations sum to the recorded request
        latency by construction.
        """
        start = time.perf_counter()
        trace = (
            self._tracer.maybe_trace(self.name, started_s=start)
            if self._tracer is not None
            else None
        )
        rows = np.asarray(rows)
        num_rows = rows.shape[0] if rows.ndim == 2 else 0
        if trace is not None:
            trace.rows = num_rows
            trace.stage("admission")
        try:
            if self._batcher is not None:
                out = self._batcher.predict(rows, trace=trace)
            else:
                out = self._run_raw(rows)
                if trace is not None:
                    trace.stage("kernel")
        except BaseException as exc:
            self.metrics.record_error()
            flight.record("error", model=self.name, rows=num_rows, error=str(exc))
            if trace is not None:
                self._tracer.record(trace.finish(error=str(exc)))
            raise
        if trace is not None:
            trace.stage("aggregate")
        elapsed = time.perf_counter() - start
        self.metrics.record_request(num_rows, elapsed)
        if trace is not None:
            self._tracer.record(trace.finish())
        if self._slow_request_s is not None and elapsed >= self._slow_request_s:
            flight.record(
                "slow_request",
                model=self.name,
                rows=num_rows,
                latency_ms=round(elapsed * 1e3, 3),
                trace_id=trace.trace_id if trace is not None else None,
            )
        return out

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Objective-transformed predictions (probabilities for classifiers)."""
        raw = self.raw_predict(rows)
        if self.objective == "binary:logistic":
            return sigmoid(raw)
        if self.objective == "multiclass":
            return softmax(raw)
        return raw

    def submit(self, rows: np.ndarray):
        """Async raw-margin request; requires a batching policy."""
        if self._batcher is None:
            raise ServingError("session was created without a batching policy")
        return self._batcher.submit(rows)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._batcher is not None:
            self._batcher.close()
            self._batcher = None

    def __enter__(self) -> "InferenceSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        kind = type(self.predictor).__name__
        return (
            f"InferenceSession(fingerprint={self.fingerprint[:12]}, "
            f"executor={kind}, cache_hit={self.cache_hit}, "
            f"fallback={self.used_fallback})"
        )
