"""Production serving layer over the compiler (the deployment north star).

The paper compiles a model once and amortizes that cost over millions of
batch-inference calls; this package supplies the runtime that realizes the
amortization in a live system:

* :class:`~repro.serve.cache.PredictorCache` — compiled predictors keyed by
  a stable model+schedule fingerprint, bounded LRU, one compile per key even
  under concurrent registration.
* :class:`~repro.serve.batching.MicroBatcher` — concurrent requests coalesce
  into micro-batches on a bounded queue and run through the row-blocked
  parallel path.
* :class:`~repro.serve.session.InferenceSession` — one served model:
  compile-once, predict-many, interpreter fallback on codegen failure.
* :class:`~repro.serve.server.ModelServer` — named multi-model registry
  sharing one cache and one metrics surface.
* :mod:`repro.serve.workers` — the scale-out tier: tree-sharded
  multi-process serving over shared-memory model buffers
  (:class:`~repro.serve.workers.ShardedPredictor`), pluggable partial-sum
  combiners, and an SLO-aware asyncio admission front end
  (:class:`~repro.serve.workers.AsyncModelFrontend`).

Quickstart::

    from repro.serve import ModelServer, ServerConfig, BatchingPolicy

    server = ModelServer(ServerConfig(batching=BatchingPolicy()))
    server.register("ranker", forest)
    probs = server.predict("ranker", rows)
    print(server.metrics_snapshot())

Multi-worker quickstart::

    server.register("big", forest, workers=2, shards=4,
                    slo=SLOPolicy(target_p99_s=0.05, max_inflight=64))
    probs = server.predict("big", rows)   # sharded under the hood
"""

from repro.serve.batching import BatchingPolicy, MicroBatcher
from repro.serve.cache import DEFAULT_PREDICTOR_CACHE_CAP, PredictorCache
from repro.serve.fallback import InterpreterPredictor, ReferencePredictor
from repro.serve.metrics import LatencyWindow, ServingMetrics
from repro.serve.server import ModelServer, ServerConfig
from repro.serve.session import InferenceSession
from repro.serve.workers import (
    AsyncModelFrontend,
    Combiner,
    SLOPolicy,
    ShardPlan,
    ShardedPredictor,
    WorkerPool,
    build_sharded_predictor,
    get_combiner,
    list_combiners,
    plan_shards,
    register_combiner,
    shard_forest,
)

__all__ = [
    "AsyncModelFrontend",
    "BatchingPolicy",
    "Combiner",
    "DEFAULT_PREDICTOR_CACHE_CAP",
    "InferenceSession",
    "InterpreterPredictor",
    "LatencyWindow",
    "MicroBatcher",
    "ModelServer",
    "PredictorCache",
    "ReferencePredictor",
    "SLOPolicy",
    "ServerConfig",
    "ServingMetrics",
    "ShardPlan",
    "ShardedPredictor",
    "WorkerPool",
    "build_sharded_predictor",
    "get_combiner",
    "list_combiners",
    "plan_shards",
    "register_combiner",
    "shard_forest",
]
