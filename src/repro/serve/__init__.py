"""Production serving layer over the compiler (the deployment north star).

The paper compiles a model once and amortizes that cost over millions of
batch-inference calls; this package supplies the runtime that realizes the
amortization in a live system:

* :class:`~repro.serve.cache.PredictorCache` — compiled predictors keyed by
  a stable model+schedule fingerprint, bounded LRU, one compile per key even
  under concurrent registration.
* :class:`~repro.serve.batching.MicroBatcher` — concurrent requests coalesce
  into micro-batches on a bounded queue and run through the row-blocked
  parallel path.
* :class:`~repro.serve.session.InferenceSession` — one served model:
  compile-once, predict-many, interpreter fallback on codegen failure.
* :class:`~repro.serve.server.ModelServer` — named multi-model registry
  sharing one cache and one metrics surface.

Quickstart::

    from repro.serve import ModelServer, ServerConfig, BatchingPolicy

    server = ModelServer(ServerConfig(batching=BatchingPolicy()))
    server.register("ranker", forest)
    probs = server.predict("ranker", rows)
    print(server.metrics_snapshot())
"""

from repro.serve.batching import BatchingPolicy, MicroBatcher
from repro.serve.cache import DEFAULT_PREDICTOR_CACHE_CAP, PredictorCache
from repro.serve.fallback import InterpreterPredictor, ReferencePredictor
from repro.serve.metrics import LatencyWindow, ServingMetrics
from repro.serve.server import ModelServer, ServerConfig
from repro.serve.session import InferenceSession

__all__ = [
    "BatchingPolicy",
    "DEFAULT_PREDICTOR_CACHE_CAP",
    "InferenceSession",
    "InterpreterPredictor",
    "LatencyWindow",
    "MicroBatcher",
    "ModelServer",
    "PredictorCache",
    "ReferencePredictor",
    "ServerConfig",
    "ServingMetrics",
]
