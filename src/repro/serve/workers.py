"""Multi-process sharded serving: one model, many workers, shared buffers.

This is the scale-out tier above :class:`~repro.serve.session.InferenceSession`:

* **Shared buffers** — the parent compiles the model once and exports its
  buffers into ``multiprocessing.shared_memory`` segments
  (:mod:`repro.backend.shm`); forked workers attach zero-copy, read-only
  views, so N workers cost one model footprint, not N.
* **Tree sharding** — very large ensembles are split into contiguous,
  node-count-balanced tree ranges (:func:`plan_shards`); each shard is
  compiled as its own sub-forest with ``base_score=0`` so its raw output
  is a *partial sum* of leaf margins. Workers each own a subset of
  shards; the parent scatters a request to every worker and combines the
  partials.
* **Pluggable combiners** — partial aggregation is a seam
  (:func:`register_combiner`): ``sum`` (the exact ensemble semantics,
  applied in shard order so the result is deterministic), ``mean``,
  ``max_margin`` and ``top{k}`` open ensemble-selection workloads on the
  same compiled kernels.
* **Async admission** — :class:`AsyncModelFrontend` fronts a
  :class:`~repro.serve.server.ModelServer` with an asyncio interface that
  sheds load against per-model :class:`SLOPolicy` targets (inflight bound
  + live p99) *before* a request joins the queue, recording every
  rejection in metrics and the flight recorder.

Determinism: each shard executes the exact bytes the parent compiled
(same kernel source, same buffers), and the ``sum`` combiner folds the
partials in ascending shard order onto ``base_score`` — so a sharded
prediction is bitwise-identical to running the same shard plan
sequentially in one process (:meth:`ShardedPredictor.local_raw_predict`),
regardless of worker count, interleaving or which worker ran which shard.
Relative to the *unsharded* kernel the shard boundaries reassociate the
float tree-sum, so agreement there is to accumulation-order tolerance
(bitwise again in the ``num_shards=1`` case, which compiles the identical
kernel).
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import multiprocessing as mp
import queue as queue_mod
import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.backend.shm import SharedModelHandle, attach_shared, export_shared
from repro.config import Schedule
from repro.errors import ServingError
from repro.forest.ensemble import Forest, sigmoid, softmax
from repro.observe import events as flight

#: how long WorkerPool waits for a forked worker to attach and report ready
SPAWN_TIMEOUT_S = 30.0


# ----------------------------------------------------------------------
# Leaf combiners: how per-shard partial sums become one prediction
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Combiner:
    """One way of folding per-shard partial margins into a prediction.

    ``fn(partials, base_score)`` receives the shards' raw outputs in
    ascending shard order (all the same shape — ``(n,)`` or ``(n, C)``)
    and returns the combined array. ``objective_transform`` marks
    combiners whose output is still an ensemble margin (so ``predict``
    may apply sigmoid/softmax); selection-style combiners keep raw
    margins.
    """

    name: str
    fn: Callable[[list[np.ndarray], float], np.ndarray]
    objective_transform: bool = True


def _combine_sum(partials: list[np.ndarray], base_score: float) -> np.ndarray:
    # Fold in ascending shard order onto the base score: the one
    # deterministic order every execution mode shares, making sharded
    # output independent of worker scheduling.
    out = np.full_like(partials[0], base_score)
    for partial in partials:
        np.add(out, partial, out=out)
    return out


def _combine_mean(partials: list[np.ndarray], base_score: float) -> np.ndarray:
    acc = np.zeros_like(partials[0])
    for partial in partials:
        np.add(acc, partial, out=acc)
    return base_score + acc / len(partials)


def _combine_max_margin(partials: list[np.ndarray], base_score: float) -> np.ndarray:
    acc = partials[0].copy()
    for partial in partials[1:]:
        np.maximum(acc, partial, out=acc)
    return base_score + acc


def _make_top_k(k: int) -> Combiner:
    def _combine(partials: list[np.ndarray], base_score: float) -> np.ndarray:
        out = _combine_sum(partials, base_score)
        if out.ndim != 2 or out.shape[1] <= k:
            if out.ndim != 2:
                raise ServingError(
                    f"top{k} combiner requires multiclass output, got shape {out.shape}"
                )
            return out
        # Keep each row's k largest class margins; suppress the rest to
        # -inf so a downstream softmax concentrates on the selected set.
        cut = np.partition(out, -k, axis=1)[:, -k][:, None]
        return np.where(out >= cut, out, -np.inf)

    return Combiner(f"top{k}", _combine, objective_transform=False)


_COMBINERS: dict[str, Combiner] = {}


def register_combiner(combiner: Combiner) -> Combiner:
    """Add a combiner to the registry (name collisions are an error)."""
    if combiner.name in _COMBINERS:
        raise ServingError(f"combiner {combiner.name!r} is already registered")
    _COMBINERS[combiner.name] = combiner
    return combiner


register_combiner(Combiner("sum", _combine_sum))
register_combiner(Combiner("mean", _combine_mean))
register_combiner(Combiner("max_margin", _combine_max_margin, objective_transform=False))


def get_combiner(name: str | Combiner) -> Combiner:
    """Resolve a combiner by name (``top{k}`` patterns are synthesized)."""
    if isinstance(name, Combiner):
        return name
    combiner = _COMBINERS.get(name)
    if combiner is not None:
        return combiner
    if name.startswith("top") and name[3:].isdigit() and int(name[3:]) >= 1:
        return _make_top_k(int(name[3:]))
    raise ServingError(
        f"unknown combiner {name!r}; registered: {list_combiners()} "
        f"(plus 'top<k>' patterns)"
    )


def list_combiners() -> list[str]:
    return sorted(_COMBINERS)


# ----------------------------------------------------------------------
# Shard planning: contiguous, node-count-balanced tree ranges
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardPlan:
    """Contiguous tree ranges: shard ``i`` owns ``[boundaries[i], boundaries[i+1])``."""

    boundaries: tuple[int, ...]

    @property
    def num_shards(self) -> int:
        return len(self.boundaries) - 1

    def ranges(self) -> list[tuple[int, int]]:
        return [
            (self.boundaries[i], self.boundaries[i + 1])
            for i in range(self.num_shards)
        ]

    def describe(self) -> dict:
        return {"num_shards": self.num_shards, "boundaries": list(self.boundaries)}


def plan_shards(forest: Forest, num_shards: int) -> ShardPlan:
    """Split the forest into contiguous tree ranges of ~equal node count.

    Node count is the work proxy (it bounds both traversal steps and
    buffer bytes); boundaries land where the node-count prefix crosses
    each ideal fraction, and every shard keeps at least one tree.
    """
    if num_shards < 1:
        raise ServingError("num_shards must be >= 1")
    if num_shards > forest.num_trees:
        raise ServingError(
            f"cannot split {forest.num_trees} trees into {num_shards} shards"
        )
    weights = [tree.num_nodes for tree in forest.trees]
    total = sum(weights)
    boundaries = [0]
    prefix = 0
    next_tree = 0
    for shard in range(1, num_shards):
        target = total * shard / num_shards
        # Advance until the prefix crosses the target, but leave enough
        # trees for the remaining shards to get one each.
        limit = forest.num_trees - (num_shards - shard)
        while next_tree < limit and (prefix < target or next_tree <= boundaries[-1]):
            prefix += weights[next_tree]
            next_tree += 1
        boundaries.append(max(next_tree, boundaries[-1] + 1))
    boundaries.append(forest.num_trees)
    return ShardPlan(tuple(boundaries))


def shard_forest(
    forest: Forest, plan: ShardPlan, *, embed_base: bool = False
) -> list[Forest]:
    """Materialize the plan as sub-forests whose raw output is a partial sum.

    Sub-forests carry ``base_score=0`` (the combiner applies the base
    exactly once) and shallow-copied trees — the :class:`Forest`
    constructor renumbers ``tree_id`` on the objects it is given, and the
    parent forest's numbering must survive sharding.

    ``embed_base=True`` (used by the ``sum`` combiner) folds the base
    score into shard 0 instead, and the combiner folds from zero: with
    one shard the sub-forest is then content-identical to the parent, so
    the degenerate case compiles the *same* kernel as the unsharded
    predictor and matches it bitwise.
    """
    shards = []
    for index, (start, end) in enumerate(plan.ranges()):
        trees = [copy.copy(tree) for tree in forest.trees[start:end]]
        shards.append(
            Forest(
                trees,
                num_features=forest.num_features,
                objective=forest.objective,
                base_score=forest.base_score if embed_base and index == 0 else 0.0,
                num_classes=forest.num_classes,
            )
        )
    return shards


# ----------------------------------------------------------------------
# The worker process
# ----------------------------------------------------------------------

def _worker_main(worker_id: int, manifests: dict, req_q, res_q, untrack: bool) -> None:
    """Entry point of one shard worker process.

    Attaches every assigned shard's shared-memory manifest, reports
    readiness, then serves ``(req_id, shard_ids, rows)`` messages until a
    ``None`` sentinel. Replies never raise out of the loop: per-request
    failures travel back as ``(req_id, worker_id, None, error_string)``.
    """
    executors = {}
    try:
        for shard_id, manifest in manifests.items():
            executors[shard_id] = attach_shared(manifest, untrack=untrack)
    except BaseException as exc:  # noqa: BLE001 - report, don't traceback-spam
        res_q.put(("__init_error__", worker_id, None, f"{type(exc).__name__}: {exc}"))
        return
    res_q.put(("__ready__", worker_id, None, None))
    while True:
        item = req_q.get()
        if item is None:
            break
        req_id, shard_ids, rows = item
        try:
            partials = [
                (shard_id, executors[shard_id].raw_predict(rows))
                for shard_id in shard_ids
            ]
            res_q.put((req_id, worker_id, partials, None))
        except BaseException as exc:  # noqa: BLE001 - deliver to the caller
            res_q.put((req_id, worker_id, None, f"{type(exc).__name__}: {exc}"))
    for executor in executors.values():
        executor.close()


class _Pending:
    __slots__ = ("expected", "partials", "error", "event")

    def __init__(self, expected: set[int]) -> None:
        self.expected = expected
        self.partials: dict[int, np.ndarray] = {}
        self.error: str | None = None
        self.event = threading.Event()


class WorkerPool:
    """Parent-side manager of the shard worker processes.

    Scatters requests over per-worker queues, gathers per-shard partials
    through one result queue (a collector thread resolves them to waiting
    callers), and keeps the tier alive: a worker found dead at dispatch
    time is respawned (``respawn=True``) and the event recorded in the
    flight recorder. Requests outstanding on a dying worker fail by
    ``request_timeout_s`` rather than hanging.
    """

    def __init__(
        self,
        shard_manifests: list[dict],
        num_workers: int,
        *,
        start_method: str | None = None,
        request_timeout_s: float = 30.0,
        respawn: bool = True,
        name: str = "repro-shard",
    ) -> None:
        if num_workers < 1:
            raise ServingError("num_workers must be >= 1")
        if not shard_manifests:
            raise ServingError("worker pool needs at least one shard manifest")
        if not (request_timeout_s > 0):
            raise ServingError("request_timeout_s must be > 0")
        # More workers than shards would idle; replication is the
        # combiner/shard planner's job, not the pool's.
        self.num_workers = min(num_workers, len(shard_manifests))
        self.num_shards = len(shard_manifests)
        self.request_timeout_s = request_timeout_s
        self.respawn = respawn
        self.name = name
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        # Spawned workers run their own resource tracker, which must not
        # claim (and exit-unlink) segments the parent owns; forked workers
        # share the parent's tracker and must leave it registered.
        self._untrack = start_method != "fork"
        self._manifests = list(shard_manifests)
        self._assignment = {
            w: [s for s in range(self.num_shards) if s % self.num_workers == w]
            for w in range(self.num_workers)
        }
        self._req_qs = [self._ctx.Queue() for _ in range(self.num_workers)]
        self._res_q = self._ctx.Queue()
        self._procs: list = [None] * self.num_workers
        self._dispatched = [0] * self.num_workers
        self._respawns = [0] * self.num_workers
        self._req_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._closed = False
        try:
            for w in range(self.num_workers):
                self._spawn(w)
            self._await_ready(self.num_workers)
        except BaseException:
            self._terminate_all()
            raise
        self._collector = threading.Thread(
            target=self._collect, name=f"{name}-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> None:
        manifests = {s: self._manifests[s] for s in self._assignment[worker_id]}
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, manifests, self._req_qs[worker_id], self._res_q, self._untrack),
            name=f"{self.name}-w{worker_id}",
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc
        flight.record(
            "worker_spawn",
            pool=self.name,
            worker=worker_id,
            pid=proc.pid,
            shards=self._assignment[worker_id],
        )

    def _await_ready(self, count: int) -> None:
        deadline = time.monotonic() + SPAWN_TIMEOUT_S
        seen = 0
        while seen < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServingError(
                    f"shard workers failed to start within {SPAWN_TIMEOUT_S}s"
                )
            try:
                tag, worker_id, _, err = self._res_q.get(timeout=remaining)
            except queue_mod.Empty:
                continue
            if tag == "__init_error__":
                raise ServingError(f"shard worker {worker_id} failed to attach: {err}")
            if tag == "__ready__":
                seen += 1

    def _ensure_alive(self, worker_id: int) -> None:
        proc = self._procs[worker_id]
        if proc is not None and proc.is_alive():
            return
        flight.record(
            "worker_dead",
            pool=self.name,
            worker=worker_id,
            pid=getattr(proc, "pid", None),
            exitcode=getattr(proc, "exitcode", None),
        )
        if not self.respawn:
            raise ServingError(
                f"shard worker {worker_id} is dead (exitcode "
                f"{getattr(proc, 'exitcode', None)}) and respawn is disabled"
            )
        self._respawns[worker_id] += 1
        # A worker killed while blocked in ``req_q.get()`` dies *holding*
        # the queue's reader lock, poisoning the queue for any successor —
        # so the respawned worker gets a fresh queue. Messages stranded in
        # the old one belong to requests that fail by their own timeout.
        stale = self._req_qs[worker_id]
        self._req_qs[worker_id] = self._ctx.Queue()
        try:
            stale.cancel_join_thread()
            stale.close()
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass
        self._spawn(worker_id)
        # Readiness is confirmed by the collector draining its __ready__
        # message; requests queued meanwhile wait in the worker's queue.

    def _terminate_all(self) -> None:
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=2.0)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def execute(
        self, rows: np.ndarray, timeout: float | None = None
    ) -> dict[int, np.ndarray]:
        """Run ``rows`` through every shard; returns ``{shard_id: partial}``."""
        if self._closed:
            raise ServingError("worker pool is closed")
        req_id = next(self._req_ids)
        pending = _Pending(set(range(self.num_shards)))
        with self._lock:
            self._pending[req_id] = pending
        try:
            for worker_id, shard_ids in self._assignment.items():
                self._ensure_alive(worker_id)
                self._req_qs[worker_id].put((req_id, shard_ids, rows))
                self._dispatched[worker_id] += 1
        except BaseException:
            with self._lock:
                self._pending.pop(req_id, None)
            raise
        if not pending.event.wait(timeout if timeout is not None else self.request_timeout_s):
            with self._lock:
                self._pending.pop(req_id, None)
            raise ServingError(
                f"sharded request {req_id} timed out after "
                f"{timeout if timeout is not None else self.request_timeout_s}s "
                f"({len(pending.partials)}/{self.num_shards} shards replied)"
            )
        if pending.error is not None:
            raise ServingError(f"shard worker failed: {pending.error}")
        return pending.partials

    def _collect(self) -> None:
        while True:
            try:
                msg = self._res_q.get(timeout=0.2)
            except (queue_mod.Empty, OSError, EOFError):
                if self._closed:
                    return
                continue
            tag, worker_id, partials, err = msg
            if tag in ("__ready__", "__init_error__"):
                # A respawned worker reporting in (or failing to); init
                # errors surface on the next request via _ensure_alive.
                continue
            with self._lock:
                pending = self._pending.get(tag)
                if pending is None:
                    continue  # a timed-out request's late reply
                if err is not None:
                    pending.error = err
                    self._pending.pop(tag, None)
                    pending.event.set()
                    continue
                for shard_id, partial in partials:
                    pending.partials[shard_id] = partial
                if set(pending.partials) >= pending.expected:
                    self._pending.pop(tag, None)
                    pending.event.set()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Per-worker liveness/assignment/dispatch counters (gauge food)."""
        workers = {}
        for w in range(self.num_workers):
            proc = self._procs[w]
            workers[str(w)] = {
                "pid": getattr(proc, "pid", None),
                "alive": bool(proc is not None and proc.is_alive()),
                "shards": list(self._assignment[w]),
                "dispatched": self._dispatched[w],
                "respawns": self._respawns[w],
            }
        return {
            "num_workers": self.num_workers,
            "num_shards": self.num_shards,
            "start_method": self.start_method,
            "workers": workers,
        }

    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        failure = ServingError("worker pool closed")
        with self._lock:
            pending, self._pending = dict(self._pending), {}
        for item in pending.values():
            item.error = str(failure)
            item.event.set()
        for req_q in self._req_qs:
            try:
                req_q.put_nowait(None)
            except (queue_mod.Full, OSError, ValueError):  # pragma: no cover
                pass
        for worker_id, proc in enumerate(self._procs):
            if proc is None:
                continue
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            flight.record(
                "worker_exit",
                pool=self.name,
                worker=worker_id,
                exitcode=proc.exitcode,
            )
        for req_q in self._req_qs + [self._res_q]:
            try:
                req_q.cancel_join_thread()
                req_q.close()
            except (OSError, ValueError):  # pragma: no cover
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# The sharded predictor
# ----------------------------------------------------------------------

class ShardedPredictor:
    """Predictor-protocol facade over a shard plan and (optionally) a pool.

    ``num_workers == 0`` is the degenerate in-process mode: the same
    compiled shard executors run sequentially on the caller's thread —
    the bitwise reference every multi-worker configuration must match.
    Owns live resources (processes, shared memory), so it is marked
    ``cacheable = False``: the predictor cache must never coalesce or
    evict it, and exactly one owner calls :meth:`close`.
    """

    backend_name = "sharded"
    is_artifact = False
    cacheable = False

    def __init__(
        self,
        forest: Forest,
        schedule: Schedule,
        plan: ShardPlan,
        shard_predictors: list,
        combiner: Combiner,
        pool: WorkerPool | None,
        handles: list[SharedModelHandle],
        embed_base: bool = False,
    ) -> None:
        self.forest = forest
        self.schedule = schedule
        self.plan = plan
        self.combiner = combiner
        self.num_features = forest.num_features
        self.num_classes = forest.num_classes
        self.base_score = forest.base_score
        # With the base embedded in shard 0 (sum combiner) the fold
        # starts from zero; otherwise the combiner applies the base once.
        self.combine_base = 0.0 if embed_base else forest.base_score
        self.objective = forest.objective
        self._shard_predictors = shard_predictors
        self._pool = pool
        self._handles = handles
        self._closed = False
        digest = hashlib.sha256()
        for predictor in shard_predictors:
            digest.update(predictor.fingerprint.encode())
        digest.update(repr(plan.boundaries).encode())
        digest.update(combiner.name.encode())
        self.fingerprint = digest.hexdigest()

    # -- predictor protocol -------------------------------------------
    @property
    def num_workers(self) -> int:
        return self._pool.num_workers if self._pool is not None else 0

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def raw_predict(self, rows: np.ndarray, threads: int | None = None) -> np.ndarray:
        """Combined raw margins (``threads`` is accepted for protocol
        compatibility; parallelism here is processes, not row blocks)."""
        if self._closed:
            raise ServingError("sharded predictor is closed")
        rows = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
        if self._pool is None:
            partials = [p.raw_predict(rows) for p in self._shard_predictors]
        else:
            by_shard = self._pool.execute(rows)
            partials = [by_shard[s] for s in range(self.plan.num_shards)]
        return self.combiner.fn(partials, self.combine_base)

    def local_raw_predict(self, rows: np.ndarray) -> np.ndarray:
        """The same shard plan executed sequentially in this process —
        the bitwise reference for every multi-worker configuration."""
        rows = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
        partials = [p.raw_predict(rows) for p in self._shard_predictors]
        return self.combiner.fn(partials, self.combine_base)

    def predict(self, rows: np.ndarray) -> np.ndarray:
        raw = self.raw_predict(rows)
        if self.combiner.objective_transform:
            if self.objective == "binary:logistic":
                return sigmoid(raw)
            if self.objective == "multiclass":
                return softmax(raw)
        return raw

    def memory_bytes(self) -> int:
        """One shared copy of every shard's buffers (not per-worker)."""
        if self._handles:
            return sum(handle.nbytes() for handle in self._handles)
        return sum(p.memory_bytes() for p in self._shard_predictors)

    def scratch_nbytes(self) -> int:
        return 0

    def worker_stats(self) -> dict:
        if self._pool is None:
            return {"num_workers": 0, "num_shards": self.plan.num_shards, "workers": {}}
        return self._pool.stats()

    def describe(self) -> dict:
        return {
            "backend": self.backend_name,
            "combiner": self.combiner.name,
            "num_workers": self.num_workers,
            **self.plan.describe(),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
        for handle in self._handles:
            handle.unlink()

    def __enter__(self) -> "ShardedPredictor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedPredictor(shards={self.plan.num_shards}, "
            f"workers={self.num_workers}, combiner={self.combiner.name!r}, "
            f"fingerprint={self.fingerprint[:12]})"
        )


def build_sharded_predictor(
    forest: Forest,
    schedule: Schedule | None = None,
    *,
    num_workers: int = 2,
    num_shards: int | None = None,
    combiner: str | Combiner = "sum",
    validate_inputs: bool = True,
    start_method: str | None = None,
    request_timeout_s: float = 30.0,
    name: str = "repro-shard",
) -> ShardedPredictor:
    """Compile, shard and (for ``num_workers >= 1``) fork the serving tier.

    Every shard is compiled in the parent under ``schedule``, exported to
    shared memory, and attached read-only by the workers — the compiler
    never runs in a child. ``num_workers=0`` builds the in-process
    degenerate case (no processes, no shared memory).
    """
    from repro.api import compile_model  # lazy: api imports serve for sessions

    if num_workers < 0:
        raise ServingError("num_workers must be >= 0")
    schedule = schedule or Schedule()
    if num_shards is None:
        num_shards = max(1, num_workers) if num_workers else 1
    num_shards = min(num_shards, forest.num_trees)
    plan = plan_shards(forest, num_shards)
    resolved = get_combiner(combiner)
    embed_base = resolved.name == "sum"
    shard_predictors = [
        compile_model(sub, schedule, validate_inputs=validate_inputs)
        for sub in shard_forest(forest, plan, embed_base=embed_base)
    ]
    flight.record(
        "shard_plan",
        pool=name,
        num_shards=plan.num_shards,
        num_workers=num_workers,
        boundaries=list(plan.boundaries),
        combiner=resolved.name,
    )
    handles: list[SharedModelHandle] = []
    pool: WorkerPool | None = None
    if num_workers >= 1:
        try:
            handles = [export_shared(p) for p in shard_predictors]
            pool = WorkerPool(
                [handle.manifest for handle in handles],
                num_workers,
                start_method=start_method,
                request_timeout_s=request_timeout_s,
                name=name,
            )
        except BaseException:
            for handle in handles:
                handle.unlink()
            raise
    return ShardedPredictor(
        forest, schedule, plan, shard_predictors, resolved, pool, handles,
        embed_base=embed_base,
    )


# ----------------------------------------------------------------------
# SLO-aware asyncio front end
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SLOPolicy:
    """Per-model admission targets for :class:`AsyncModelFrontend`.

    ``max_inflight`` bounds concurrently admitted requests;
    ``target_p99_s`` sheds load while the model's live p99 (over the
    frontend's own per-model latency window) exceeds the target *and*
    other requests are inflight — a lone request is always admitted so
    the window keeps refreshing as load drains.
    """

    target_p99_s: float | None = None
    max_inflight: int | None = None
    min_samples: int = 16

    def __post_init__(self) -> None:
        if self.target_p99_s is not None and not (self.target_p99_s > 0):
            raise ServingError("target_p99_s must be > 0")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ServingError("max_inflight must be >= 1")
        if self.min_samples < 1:
            raise ServingError("min_samples must be >= 1")


class _ModelAdmission:
    """Frontend-side view of one model: inflight count + latency window."""

    __slots__ = ("policy", "inflight", "latencies")

    def __init__(self, policy: SLOPolicy) -> None:
        from repro.serve.metrics import LatencyWindow

        self.policy = policy
        self.inflight = 0
        self.latencies = LatencyWindow(512)


class AsyncModelFrontend:
    """Asyncio admission layer in front of a :class:`ModelServer`.

    ``await frontend.predict(name, rows)`` either admits the request —
    running the (blocking) server predict on a thread-pool executor — or
    sheds it with :class:`~repro.errors.ServingError` when the model's
    :class:`SLOPolicy` says the tier cannot hold its latency target.
    Rejections are counted (``admission_rejects``) and recorded as
    ``admission_reject`` flight events; they are deliberate load shedding,
    not errors.
    """

    def __init__(self, server, *, max_threads: int = 8) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self.server = server
        self._executor = ThreadPoolExecutor(
            max_workers=max_threads, thread_name_prefix="repro-async-frontend"
        )
        self._lock = threading.Lock()
        self._models: dict[str, _ModelAdmission] = {}

    def set_slo(self, name: str, policy: SLOPolicy | None) -> None:
        """Set (or clear, with ``None``) one model's admission policy."""
        with self._lock:
            if policy is None:
                self._models.pop(name, None)
            else:
                self._models[name] = _ModelAdmission(policy)

    def slo_policy(self, name: str) -> SLOPolicy | None:
        with self._lock:
            entry = self._models.get(name)
            return entry.policy if entry is not None else None

    def _admit(self, name: str) -> _ModelAdmission | None:
        """Admission decision under the lock; raises to shed."""
        with self._lock:
            entry = self._models.get(name)
            if entry is None:
                # Fall back to the policy recorded at register(..., slo=...)
                # time, instantiating the frontend-side window lazily.
                policy = getattr(self.server, "slo_policy", lambda _n: None)(name)
                if policy is None:
                    return None
                entry = self._models[name] = _ModelAdmission(policy)
            policy = entry.policy
            reason = None
            if policy.max_inflight is not None and entry.inflight >= policy.max_inflight:
                reason = "max_inflight"
            elif (
                policy.target_p99_s is not None
                and entry.inflight >= 1
                and len(entry.latencies) >= policy.min_samples
            ):
                p99 = entry.latencies.percentile(99)
                if p99 is not None and p99 > policy.target_p99_s:
                    reason = "p99_over_target"
            if reason is None:
                entry.inflight += 1
                return entry
        self.server.metrics.record_admission_reject()
        flight.record(
            "admission_reject",
            model=name,
            reason=reason,
            inflight=entry.inflight,
            target_p99_s=policy.target_p99_s,
        )
        raise ServingError(f"request to {name!r} rejected by admission control ({reason})")

    def _finish(self, entry: _ModelAdmission | None, elapsed: float) -> None:
        if entry is None:
            return
        with self._lock:
            entry.inflight -= 1
            entry.latencies.record(elapsed)

    async def predict(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Admission-controlled, executor-offloaded ``server.predict``."""
        import asyncio

        entry = self._admit(name)
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        try:
            return await loop.run_in_executor(
                self._executor, self.server.predict, name, rows
            )
        finally:
            self._finish(entry, time.perf_counter() - start)

    async def raw_predict(self, name: str, rows: np.ndarray) -> np.ndarray:
        import asyncio

        entry = self._admit(name)
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        try:
            return await loop.run_in_executor(
                self._executor, self.server.raw_predict, name, rows
            )
        finally:
            self._finish(entry, time.perf_counter() - start)

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "AsyncModelFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
