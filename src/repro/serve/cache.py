"""Compiled-predictor cache for the serving layer.

The JIT already shares *code objects* across models that lower to identical
source (:mod:`repro.backend.jit`); this cache extends sharing one level up:
whole compiled executors are keyed by
:func:`~repro.backend.jit.predictor_cache_key` (the backend name plus a
stable hash of forest structure + schedule), so re-registering an
isomorphic model skips the entire HIR→MIR→LIR pipeline, while the same
model compiled under two backends keeps two distinct slots. Executors
loaded from AOT artifacts share the same keyspace via
:func:`~repro.backend.jit.artifact_cache_key`, so a warm worker that both
compiled a model and loaded its artifact holds one copy, not two.

Concurrency contract: the cache is safe to use from many threads, and a
compile for a given key runs at most once — concurrent requesters for the
same key block on the leader's in-flight compile and then share its result
(counted as cache hits, since they paid no compile). Distinct keys compile
in parallel; the map lock is never held during a compile.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from repro.serve.metrics import ServingMetrics

#: Default bound on resident compiled predictors.
DEFAULT_PREDICTOR_CACHE_CAP = 64


class _InFlight:
    """One leader compiles; followers wait on the event and share the result."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class PredictorCache:
    """Bounded, thread-safe LRU of compiled predictors keyed by fingerprint."""

    def __init__(
        self,
        capacity: int = DEFAULT_PREDICTOR_CACHE_CAP,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics or ServingMetrics()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._inflight: dict[str, _InFlight] = {}

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def get_or_compile(self, key: str, compile_fn: Callable[[], object]) -> tuple[object, bool]:
        """Return ``(predictor, was_hit)`` for ``key``, compiling at most once.

        ``compile_fn`` is only invoked by the thread that wins the race for
        an absent key; every other concurrent caller blocks until the
        leader finishes and then shares the same object (or re-raises the
        leader's exception).
        """
        while True:
            with self._lock:
                value = self._entries.get(key)
                if value is not None:
                    self._entries.move_to_end(key)
                    self.metrics.record_cache(hit=True)
                    return value, True
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
            if leader:
                break
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            # The leader's result may already have been evicted under
            # pathological capacity pressure; loop to re-check the map.
            with self._lock:
                value = self._entries.get(key)
                if value is not None:
                    self._entries.move_to_end(key)
                    self.metrics.record_cache(hit=True)
                    return value, True
            # Entry evicted between the leader's insert and our lookup:
            # fall through and compete to compile it again.

        try:
            value = compile_fn()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._inflight.pop(key, None)
        # Wake followers the moment the map is consistent; metrics recording
        # stays off the critical path so a slow (or throwing) metrics sink
        # cannot extend how long followers block on the event.
        flight.event.set()
        self.metrics.record_cache(hit=False)
        if evicted:
            self.metrics.record_eviction(evicted)
        return value, False

    # ------------------------------------------------------------------
    # Introspection / management
    # ------------------------------------------------------------------
    def get(self, key: str) -> object | None:
        """Peek without compiling (still refreshes recency on hit)."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: str, value: object) -> None:
        """Insert an already-compiled predictor (background tuning winners).

        Applies the same LRU bound as :meth:`get_or_compile`; evictions are
        counted in metrics. Waiters coalesced on an in-flight compile for
        the same key are unaffected — they share the leader's result.
        """
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            self.metrics.record_eviction(evicted)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def values(self) -> list[object]:
        """Resident predictors (for footprint accounting; no recency bump)."""
        with self._lock:
            return list(self._entries.values())

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return f"PredictorCache(size={len(self)}, capacity={self.capacity})"
