"""Degraded execution paths for the serving layer.

When code generation or the JIT fails for a model, the server must keep
answering — Section VI's correctness contract (compiled output ≡ reference
semantics) gives us two progressively simpler executors to fall back on:

* :class:`InterpreterPredictor` — the LIR lowering succeeded but codegen/JIT
  failed: run the reference interpreter over the exact lowered buffers.
  Slow, but bit-compatible with what the kernel would have produced.
* :class:`ReferencePredictor` — even lowering failed: evaluate the plain
  ``Forest`` semantics tree by tree.

Both expose the same surface the compiled :class:`~repro.backend.predictor.
Predictor` does (``raw_predict``/``predict`` with an optional ``threads``
override), so sessions swap them in without branching at call sites.
"""

from __future__ import annotations

import numpy as np

from repro.backend.interpreter import interpret_lir
from repro.config import Schedule
from repro.errors import ExecutionError
from repro.forest.ensemble import Forest, sigmoid, softmax
from repro.lir.ir import LIRModule


class _FallbackBase:
    """Shared input checking + objective transform for fallback executors."""

    #: distinguishes fallback executors from compiled predictors in metrics/tests
    is_fallback = True

    def __init__(self, forest: Forest, schedule: Schedule, validate_inputs: bool = True) -> None:
        self.forest = forest
        self.schedule = schedule
        self.validate_inputs = validate_inputs

    def _check(self, rows: np.ndarray) -> np.ndarray:
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.forest.num_features:
            raise ExecutionError(
                f"rows must be (n, {self.forest.num_features}), got {rows.shape}"
            )
        if self.validate_inputs and np.isnan(rows).any():
            raise ExecutionError(
                "NaN inputs are unsupported: speculative tile evaluation "
                "requires totally ordered features"
            )
        return rows

    def raw_predict(self, rows: np.ndarray, threads: int | None = None) -> np.ndarray:
        raise NotImplementedError

    def predict(self, rows: np.ndarray, threads: int | None = None) -> np.ndarray:
        raw = self.raw_predict(rows, threads=threads)
        if self.forest.objective == "binary:logistic":
            return sigmoid(raw)
        if self.forest.objective == "multiclass":
            return softmax(raw)
        return raw


class InterpreterPredictor(_FallbackBase):
    """Serve predictions through the LIR reference interpreter."""

    def __init__(self, forest: Forest, lir: LIRModule, validate_inputs: bool = True) -> None:
        super().__init__(forest, lir.schedule, validate_inputs)
        self.lir = lir

    def raw_predict(self, rows: np.ndarray, threads: int | None = None) -> np.ndarray:
        rows = self._check(rows)
        out = interpret_lir(self.lir, rows)
        return out[:, 0] if self.lir.num_classes == 1 else out

    def __repr__(self) -> str:
        return f"InterpreterPredictor(trees={self.forest.num_trees})"


class ReferencePredictor(_FallbackBase):
    """Serve predictions through the plain ``Forest`` traversal."""

    def __init__(self, forest: Forest, schedule: Schedule | None = None,
                 validate_inputs: bool = True) -> None:
        super().__init__(forest, schedule or Schedule(), validate_inputs)

    def raw_predict(self, rows: np.ndarray, threads: int | None = None) -> np.ndarray:
        rows = self._check(rows)
        return self.forest.raw_predict(rows)

    def __repr__(self) -> str:
        return f"ReferencePredictor(trees={self.forest.num_trees})"
