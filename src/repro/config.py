"""Compiler schedules: the optimization configuration space of Table II.

A :class:`Schedule` bundles every knob the paper explores — tile size,
tiling algorithm, loop order, padding/unrolling, walk interleaving, the
leaf-bias thresholds ⟨alpha, beta⟩ — plus the in-memory layout choice of
Section V-B and the parallelization degree of Section IV-C. Schedules are
plain frozen dataclasses: the autotuner enumerates them, and every pipeline
stage reads its decisions from the one schedule attached to the module being
compiled (the paper's "annotation" mechanism).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace

from repro.errors import ScheduleError

TILINGS = ("basic", "probability", "hybrid", "optimal")
LOOP_ORDERS = ("one-tree", "one-row")
LAYOUTS = ("array", "sparse")
TRAVERSALS = ("tiled", "quickscorer")
SCRATCH_MODES = ("arena", "alloc")


@dataclass(frozen=True)
class PrecisionInfo:
    """Element widths and dtypes implied by one ``Schedule.precision`` value.

    This table is the single source of truth for how a precision choice
    sizes model buffers and scratch arenas: the element dtype of
    threshold/leaf buffers and lane temporaries, the feature-index dtype,
    the dtype chunk matmuls accumulate in, and whether the mode is an
    integer-quantized one (rank-coded thresholds + fixed-point leaves,
    see :mod:`repro.lir.quantize`). Sizes are stored as plain ints so this
    leaf module never imports numpy.
    """

    #: dtype of thresholds, leaf values, and per-lane walk temporaries
    element_dtype: str
    #: dtype of the per-lane feature-index buffer
    findex_dtype: str
    #: dtype the per-chunk ``vals @ onehot`` accumulation runs in
    acc_dtype: str
    #: True for integer-quantized modes (int16/int8)
    quantized: bool
    #: sizeof(element_dtype) in bytes
    element_size: int
    #: sizeof(findex_dtype) in bytes
    findex_size: int
    #: sizeof(acc_dtype) in bytes
    acc_size: int


#: precision name -> widths/dtypes (see :class:`PrecisionInfo`). Quantized
#: modes accumulate leaf *codes* exactly in a float64 accumulator (integer
#: values below 2**53 are exact in a double, and BLAS does the chunk
#: matmul an order of magnitude faster than NumPy's integer fallback) and
#: rescale once at the boundary; their feature indices narrow to int16
#: (the compiler validates ``num_features`` fits).
PRECISION_TABLE = {
    "float64": PrecisionInfo("float64", "int64", "float64", False, 8, 8, 8),
    "float32": PrecisionInfo("float32", "int32", "float32", False, 4, 4, 4),
    "int16": PrecisionInfo("int16", "int16", "float64", True, 2, 2, 8),
    "int8": PrecisionInfo("int8", "int16", "float64", True, 1, 2, 8),
}
PRECISIONS = tuple(PRECISION_TABLE)
#: the integer-quantized subset of :data:`PRECISIONS`
QUANTIZED_PRECISIONS = tuple(p for p, i in PRECISION_TABLE.items() if i.quantized)


@dataclass(frozen=True)
class Schedule:
    """One point in the optimization space.

    Attributes
    ----------
    tile_size:
        Nodes per tile (Table II explores 1, 2, 4, 8). Size 1 disables
        tiling-derived vectorization across the tile dimension.
    tiling:
        ``"basic"`` (Algorithm 2 everywhere), ``"probability"``
        (Algorithm 1 everywhere), ``"hybrid"`` (Algorithm 1 only for
        leaf-biased trees — the paper's evaluated policy), or
        ``"optimal"`` (the dynamic-programming solver the paper mentions
        but does not implement; exact on the expected-walk objective).
    loop_order:
        ``"one-tree"`` walks one tree (group) for all rows before the next;
        ``"one-row"`` walks all trees for a row before the next row.
    pad_and_unroll:
        Pad almost-balanced tiled trees with dummy tiles to uniform depth and
        fully unroll their walks (Sections III-F, IV-B).
    pad_max_slack:
        Maximum (max - min) leaf-tile depth for a tree to count as "almost
        balanced" and be padded.
    peel_walk:
        Peel the walk loop up to the depth of the shallowest leaf so the
        peeled prologue skips leaf checks (Section IV-B).
    interleave:
        Unroll-and-jam factor: how many tree walks are advanced together
        (Section IV-A). 1 disables interleaving.
    layout:
        In-memory representation of tiled trees: ``"array"`` or ``"sparse"``
        (Section V-B).
    alpha, beta:
        Leaf-bias thresholds for hybrid tiling (Section III-C).
    parallel:
        Number of cores for the row-loop parallelization of Section IV-C;
        1 means serial.
    row_block:
        Rows processed per kernel invocation; 0 processes the entire batch
        at once. (Blocking matters for the cache behaviour studied in VI-E.)
    reorder:
        Group trees that can share traversal code (Section III-F).
    compact_walks:
        Guarded walk loops compact to the active (row, tree) set each step
        — the vectorized analog of the scalar walk's early exit. Disabled,
        finished lanes idle under a mask until the slowest lane terminates
        (an ablation knob; see ``repro.experiments.ablations``).
    """

    tile_size: int = 8
    tiling: str = "hybrid"
    loop_order: str = "one-tree"
    pad_and_unroll: bool = True
    pad_max_slack: int = 2
    peel_walk: bool = True
    interleave: int = 8
    layout: str = "sparse"
    alpha: float = 0.075
    beta: float = 0.9
    parallel: int = 1
    row_block: int = 0
    reorder: bool = True
    compact_walks: bool = True
    #: walk implementation: ``"tiled"`` is the paper's tile-walk pipeline;
    #: ``"quickscorer"`` compiles the QuickScorer bitvector strategy instead
    #: (Section VII names it as an integrable alternative traversal).
    #: QuickScorer ignores the tiling-related knobs and caps trees at 64
    #: leaves.
    traversal: str = "tiled"
    #: element width of the compiled model buffers and input rows (the
    #: paper's element-width discussion): ``"float64"`` keeps reference
    #: numerics; ``"float32"`` halves threshold/feature/leaf buffer
    #: footprint and memory traffic and narrows the feature-index buffer to
    #: int32, at ~1e-7 relative rounding of the emitted margins.
    #: ``"int16"`` / ``"int8"`` are the integer-only quantized modes
    #: (InTreeger direction): thresholds become per-feature rank codes —
    #: routing is *exactly* the float64 routing, see
    #: :mod:`repro.lir.quantize` — and leaves become fixed-point codes with
    #: one per-forest scale, so the whole walk runs on integer compares and
    #: integer gathers with a single rescale at the boundary.
    precision: str = "float64"
    #: temporary-buffer policy of the emitted kernel: ``"arena"`` writes
    #: every walk-step temporary into a preallocated per-thread scratch
    #: arena via ``out=`` (the register/fixed-buffer residency of the
    #: paper's generated SIMD loop); ``"alloc"`` emits the legacy
    #: fresh-temporary-per-op statements (kept as an ablation/benchmark
    #: reference).
    scratch: str = "arena"
    #: compile kernel profiling counters *into* the generated source (walk
    #: steps, LUT lookups, masked lanes, scratch bytes — see
    #: :mod:`repro.observe.profile`). Off by default: with ``False`` the
    #: instrumentation is absent from the emitted code entirely (not
    #: branched over), so the production hot path is untouched. Profiling
    #: never changes predictions — only counts what the kernel did.
    profile: bool = False
    #: run the cross-level structural verifiers of :mod:`repro.verify`
    #: after each lowering stage: HIR (tiling validity, padding coverage,
    #: reorder permutation, probability mass), MIR (loop nest covers every
    #: (tree, row) pair exactly once, chunking exhaustive, peel/unroll
    #: legality), LIR (buffer/LUT shape consistency, reserved all-zeros
    #: dummy LUT row, child indices in bounds, arena spec large enough).
    #: Each verifier runs inside its own trace span and raises
    #: :class:`~repro.errors.VerificationError` with a precise diagnostic
    #: on the first violated invariant. Off by default: with ``False`` no
    #: verifier code runs at all and the emitted kernel is byte-identical
    #: to an unverified build — verification never changes what is
    #: compiled, only whether the compiler double-checks itself.
    verify: bool = False
    #: which registered code-generation backend turns the lowered LIR into
    #: an executable (:mod:`repro.backend.registry`): ``"numpy_jit"`` is
    #: the in-process NumPy source + ``compile()`` path; ``"aot_export"``
    #: builds the same kernel but supports serializing it to a
    #: self-contained artifact (:mod:`repro.backend.aot`). Excluded from
    #: ``repr`` on purpose: :func:`~repro.backend.jit.model_fingerprint`
    #: hashes the schedule repr, and the backend choice never changes the
    #: compiled semantics — executors compiled under different backends are
    #: distinguished one level up by the backend-qualified predictor cache
    #: key (:func:`~repro.backend.jit.predictor_cache_key`).
    backend: str = field(default="numpy_jit", repr=False)
    #: profile-guided hot/cold tree splitting (:mod:`repro.pgo`): ``None``
    #: disables it; ``"auto"`` derives a per-group hot-depth cutoff from
    #: static leaf statistics; an int ``>= 1`` pins the cutoff explicitly
    #: (in tile levels — serving passes the cutoff measured from live
    #: profile counters here). The hot prefix of every tree is walked
    #: check-free over compact contiguous prefix buffers before the cold
    #: tail runs the ordinary walk; the split is output-invariant by
    #: construction (same comparisons, same routing, same accumulation
    #: order). Excluded from ``repr`` like ``backend`` so default model
    #: fingerprints stay byte-identical; predictors compiled with
    #: different pgo values are distinguished by the qualified cache key
    #: (:func:`~repro.backend.jit.predictor_cache_key`). Only the
    #: ``"tiled"`` traversal honours it; quickscorer ignores it.
    pgo: int | str | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not (1 <= self.tile_size <= 16):
            raise ScheduleError(f"tile_size must be in [1, 16], got {self.tile_size}")
        if self.tiling not in TILINGS:
            raise ScheduleError(f"tiling must be one of {TILINGS}, got {self.tiling!r}")
        if self.loop_order not in LOOP_ORDERS:
            raise ScheduleError(f"loop_order must be one of {LOOP_ORDERS}")
        if self.layout not in LAYOUTS:
            raise ScheduleError(f"layout must be one of {LAYOUTS}")
        if self.interleave < 1:
            raise ScheduleError("interleave factor must be >= 1")
        if self.parallel < 1:
            raise ScheduleError("parallel degree must be >= 1")
        if not (0 < self.alpha <= 1) or not (0 < self.beta <= 1):
            raise ScheduleError("alpha and beta must be in (0, 1]")
        if self.row_block < 0:
            raise ScheduleError("row_block must be >= 0")
        if self.pad_max_slack < 0:
            raise ScheduleError("pad_max_slack must be >= 0")
        if self.traversal not in TRAVERSALS:
            raise ScheduleError(f"traversal must be one of {TRAVERSALS}")
        if self.precision not in PRECISIONS:
            raise ScheduleError(f"precision must be one of {PRECISIONS}")
        if self.scratch not in SCRATCH_MODES:
            raise ScheduleError(f"scratch must be one of {SCRATCH_MODES}")
        if not isinstance(self.backend, str) or not self.backend:
            raise ScheduleError(
                f"backend must be a non-empty string, got {self.backend!r}"
            )
        if self.pgo is not None and not (
            self.pgo == "auto"
            or (
                isinstance(self.pgo, int)
                and not isinstance(self.pgo, bool)
                and self.pgo >= 1
            )
        ):
            raise ScheduleError(
                f'pgo must be None, "auto", or an int >= 1, got {self.pgo!r}'
            )
        # Resolve the backend name against the process-wide registry now,
        # not at compile time: a schedule naming an unregistered backend is
        # structurally invalid, exactly like an unknown tiling. Imported
        # lazily — config is a leaf module the whole compiler depends on,
        # while the registry sits in repro.backend.
        from repro.backend.registry import require_backend

        require_backend(self.backend)

    @classmethod
    def scalar_baseline(cls) -> "Schedule":
        """The unoptimized configuration the paper's speedups are measured
        against: tile size 1, one row at a time, no reordering/padding/
        interleaving (Section VI, "scalar baseline")."""
        return cls(
            tile_size=1,
            tiling="basic",
            loop_order="one-row",
            pad_and_unroll=False,
            peel_walk=False,
            interleave=1,
            layout="array",
            reorder=False,
        )

    def with_(self, **updates) -> "Schedule":
        """A copy of this schedule with some fields replaced."""
        return replace(self, **updates)

    def to_dict(self) -> dict:
        """Plain-JSON representation (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Schedule":
        """Rebuild a schedule from :meth:`to_dict` output.

        Unknown keys raise :class:`ScheduleError` — a persisted schedule
        written by a different version of the knob set must be discarded,
        not silently reinterpreted.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScheduleError(f"unknown schedule fields: {', '.join(unknown)}")
        return cls(**data)
