"""Ensembles of decision trees.

A :class:`Forest` is the unit the compiler consumes: an ordered list of
:class:`~repro.forest.tree.DecisionTree` plus the metadata needed to turn raw
leaf sums into predictions (base score, objective transform, number of output
classes for multiclass models).
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.errors import ModelError
from repro.forest.tree import DecisionTree

#: Supported prediction transforms applied to the summed leaf values.
OBJECTIVES = ("regression", "binary:logistic", "multiclass")


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise softmax for 2-D score matrices."""
    shifted = x - x.max(axis=1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=1, keepdims=True)


class Forest:
    """An ordered ensemble of decision trees.

    Parameters
    ----------
    trees:
        The member trees. For multiclass models each tree's ``class_id``
        selects the output column it contributes to.
    num_features:
        Width of input rows. Every tree's feature indices must be < this.
    objective:
        One of :data:`OBJECTIVES`. ``raw_predict`` always returns the raw
        margin (sum of leaf values + base score); ``predict`` additionally
        applies the objective transform.
    base_score:
        Constant added to every raw prediction (per class).
    num_classes:
        Number of output classes; 1 for regression and binary models.
    """

    def __init__(
        self,
        trees: Sequence[DecisionTree],
        num_features: int,
        objective: str = "regression",
        base_score: float = 0.0,
        num_classes: int = 1,
    ) -> None:
        if objective not in OBJECTIVES:
            raise ModelError(f"unknown objective {objective!r}; expected one of {OBJECTIVES}")
        if num_classes < 1:
            raise ModelError("num_classes must be >= 1")
        if objective == "multiclass" and num_classes < 2:
            raise ModelError("multiclass objective requires num_classes >= 2")
        if objective != "multiclass" and num_classes != 1:
            raise ModelError(f"objective {objective!r} requires num_classes == 1")
        self.trees = list(trees)
        if not self.trees:
            raise ModelError("forest must contain at least one tree")
        self.num_features = int(num_features)
        self.objective = objective
        self.base_score = float(base_score)
        self.num_classes = int(num_classes)
        for i, tree in enumerate(self.trees):
            tree.tree_id = i
            internal = tree.internal_nodes()
            if internal.size and int(tree.feature[internal].max()) >= self.num_features:
                raise ModelError(
                    f"tree {i} references feature "
                    f"{int(tree.feature[internal].max())} but num_features={num_features}"
                )
            if not (0 <= tree.class_id < self.num_classes):
                raise ModelError(f"tree {i} has class_id {tree.class_id} out of range")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_trees(self) -> int:
        """Number of member trees."""
        return len(self.trees)

    @property
    def max_depth(self) -> int:
        """Maximum node depth across all trees."""
        return max(tree.max_depth for tree in self.trees)

    @property
    def total_nodes(self) -> int:
        """Total node count across all trees."""
        return sum(tree.num_nodes for tree in self.trees)

    def class_ids(self) -> np.ndarray:
        """Per-tree class id array."""
        return np.asarray([t.class_id for t in self.trees], dtype=np.int32)

    # ------------------------------------------------------------------
    # Reference prediction semantics
    # ------------------------------------------------------------------
    def _check_rows(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ModelError(f"rows must be 2-D, got shape {rows.shape}")
        if rows.shape[1] != self.num_features:
            raise ModelError(
                f"rows have {rows.shape[1]} features, model expects {self.num_features}"
            )
        return rows

    def raw_predict(self, rows: np.ndarray) -> np.ndarray:
        """Raw margins: base score plus the sum of tree predictions.

        Returns shape ``(n,)`` when ``num_classes == 1`` and ``(n, num_classes)``
        otherwise. This is the semantics every compiled predictor must match
        bit-for-bit (up to float accumulation order).
        """
        rows = self._check_rows(rows)
        out = np.full((rows.shape[0], self.num_classes), self.base_score, dtype=np.float64)
        for tree in self.trees:
            out[:, tree.class_id] += tree.predict(rows)
        return out[:, 0] if self.num_classes == 1 else out

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Objective-transformed predictions (probabilities for classifiers)."""
        raw = self.raw_predict(rows)
        if self.objective == "binary:logistic":
            return sigmoid(raw)
        if self.objective == "multiclass":
            return softmax(raw)
        return raw

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialize to plain Python containers."""
        return {
            "num_features": self.num_features,
            "objective": self.objective,
            "base_score": self.base_score,
            "num_classes": self.num_classes,
            "trees": [tree.to_dict() for tree in self.trees],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Forest":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trees=[DecisionTree.from_dict(t) for t in data["trees"]],
            num_features=data["num_features"],
            objective=data.get("objective", "regression"),
            base_score=data.get("base_score", 0.0),
            num_classes=data.get("num_classes", 1),
        )

    def save(self, path: str) -> None:
        """Write the forest as JSON to ``path``."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f)

    @classmethod
    def load(cls, path: str) -> "Forest":
        """Read a forest previously written by :meth:`save`."""
        with open(path) as f:
            return cls.from_dict(json.load(f))

    def __repr__(self) -> str:
        return (
            f"Forest(trees={self.num_trees}, features={self.num_features}, "
            f"classes={self.num_classes}, objective={self.objective!r})"
        )
