"""Incremental construction of :class:`~repro.forest.tree.DecisionTree`.

The builder allocates node ids in creation order and materializes the parallel
arrays once :meth:`TreeBuilder.build` is called. It supports both top-down
construction (create the root first, then attach children) and construction
from a nested-dict description, which is convenient in tests.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ModelError
from repro.forest.tree import LEAF, NO_NODE, DecisionTree


class TreeBuilder:
    """Builds a :class:`DecisionTree` node by node.

    Example
    -------
    >>> b = TreeBuilder()
    >>> root = b.internal(feature=0, threshold=0.5)
    >>> _ = b.leaf(value=1.0, parent=root, side="left")
    >>> _ = b.leaf(value=2.0, parent=root, side="right")
    >>> tree = b.build()
    >>> tree.num_nodes
    3
    """

    def __init__(self) -> None:
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []
        self._probability: list[float] = []
        self._has_probability = False

    def _new_node(
        self, feature: int, threshold: float, value: float, probability: float | None
    ) -> int:
        node = len(self._feature)
        self._feature.append(feature)
        self._threshold.append(threshold)
        self._left.append(NO_NODE)
        self._right.append(NO_NODE)
        self._value.append(value)
        if probability is not None:
            self._has_probability = True
        self._probability.append(probability if probability is not None else 0.0)
        return node

    def _attach(self, node: int, parent: int | None, side: str | None) -> None:
        if parent is None:
            if node != 0:
                raise ModelError("only the first node may omit a parent")
            return
        if side not in ("left", "right"):
            raise ModelError(f"side must be 'left' or 'right', got {side!r}")
        slot = self._left if side == "left" else self._right
        if slot[parent] != NO_NODE:
            raise ModelError(f"{side} child of node {parent} already set")
        slot[parent] = node

    def internal(
        self,
        feature: int,
        threshold: float,
        parent: int | None = None,
        side: str | None = None,
        probability: float | None = None,
    ) -> int:
        """Add an internal node; returns its id."""
        node = self._new_node(int(feature), float(threshold), 0.0, probability)
        self._attach(node, parent, side)
        return node

    def leaf(
        self,
        value: float,
        parent: int | None = None,
        side: str | None = None,
        probability: float | None = None,
    ) -> int:
        """Add a leaf node; returns its id."""
        node = self._new_node(LEAF, 0.0, float(value), probability)
        self._attach(node, parent, side)
        return node

    def build(self, class_id: int = 0, tree_id: int = 0) -> DecisionTree:
        """Materialize the tree. Raises :class:`ModelError` if incomplete."""
        for node, (left, right) in enumerate(zip(self._left, self._right)):
            internal = self._feature[node] != LEAF
            if internal and (left == NO_NODE or right == NO_NODE):
                raise ModelError(f"internal node {node} is missing a child")
            if not internal and (left != NO_NODE or right != NO_NODE):
                raise ModelError(f"leaf node {node} has children")
        return DecisionTree(
            feature=np.asarray(self._feature),
            threshold=np.asarray(self._threshold),
            left=np.asarray(self._left),
            right=np.asarray(self._right),
            value=np.asarray(self._value),
            node_probability=(
                np.asarray(self._probability) if self._has_probability else None
            ),
            class_id=class_id,
            tree_id=tree_id,
        )

    @classmethod
    def from_nested(cls, spec: dict[str, Any], class_id: int = 0, tree_id: int = 0) -> DecisionTree:
        """Build from a nested-dict spec.

        Internal nodes are ``{"feature": i, "threshold": t, "left": ..., "right": ...}``
        and leaves are ``{"value": v}``. Either kind may carry ``"probability"``.
        """
        builder = cls()

        def emit(node_spec: dict[str, Any], parent: int | None, side: str | None) -> None:
            prob = node_spec.get("probability")
            if "value" in node_spec:
                builder.leaf(node_spec["value"], parent=parent, side=side, probability=prob)
                return
            node = builder.internal(
                node_spec["feature"],
                node_spec["threshold"],
                parent=parent,
                side=side,
                probability=prob,
            )
            emit(node_spec["left"], node, "left")
            emit(node_spec["right"], node, "right")

        emit(spec, None, None)
        return builder.build(class_id=class_id, tree_id=tree_id)
