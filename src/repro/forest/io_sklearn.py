"""Import forests from scikit-learn style arrays.

scikit-learn exposes fitted trees through parallel arrays
(``children_left``, ``children_right``, ``feature``, ``threshold``,
``value``), using the predicate ``x[feature] <= threshold`` for the left
branch. Our canonical predicate is strict (``x < t``); imported thresholds
are nudged to the next representable float so the two predicates agree on
every representable input.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ModelParseError
from repro.forest.ensemble import Forest
from repro.forest.tree import LEAF, NO_NODE, DecisionTree


def tree_from_arrays(
    children_left: np.ndarray,
    children_right: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    value: np.ndarray,
    inclusive_threshold: bool = True,
    class_id: int = 0,
    tree_id: int = 0,
) -> DecisionTree:
    """Build a :class:`DecisionTree` from sklearn-style parallel arrays.

    Parameters
    ----------
    children_left, children_right:
        Child ids; sklearn uses -1 for leaves (same as our sentinel).
    feature, threshold:
        Split parameters; ``feature`` is ignored at leaves.
    value:
        Leaf predictions. sklearn stores shape ``(n_nodes, 1, 1)`` for
        regressors; any array squeezable to 1-D per node is accepted.
    inclusive_threshold:
        When True (sklearn semantics, ``x <= t`` goes left), thresholds are
        converted to the strict form used throughout this library by taking
        ``nextafter(t, +inf)``.
    """
    children_left = np.asarray(children_left, dtype=np.int64)
    children_right = np.asarray(children_right, dtype=np.int64)
    feature = np.asarray(feature, dtype=np.int64).copy()
    threshold = np.asarray(threshold, dtype=np.float64).copy()
    value = np.asarray(value, dtype=np.float64)
    value = value.reshape(value.shape[0], -1)[:, 0].copy()
    n = children_left.shape[0]
    if any(a.shape[0] != n for a in (children_right, feature, threshold, value)):
        raise ModelParseError("sklearn arrays have inconsistent lengths")
    is_leaf = children_left == NO_NODE
    feature[is_leaf] = LEAF
    value[~is_leaf] = 0.0
    if inclusive_threshold:
        internal = ~is_leaf
        threshold[internal] = np.nextafter(threshold[internal], np.inf)
    if 0 < n and is_leaf[0] and n > 1:
        raise ModelParseError("root marked as leaf but tree has multiple nodes")
    return DecisionTree(
        feature=feature,
        threshold=threshold,
        left=children_left,
        right=children_right,
        value=value,
        class_id=class_id,
        tree_id=tree_id,
    )


def forest_from_arrays(
    trees: Sequence[dict[str, np.ndarray]],
    num_features: int,
    objective: str = "regression",
    base_score: float = 0.0,
    num_classes: int = 1,
    inclusive_threshold: bool = True,
    scale: float | None = None,
) -> Forest:
    """Build a :class:`Forest` from a sequence of sklearn-style array dicts.

    Each element must provide the keys accepted by :func:`tree_from_arrays`.
    ``scale`` (e.g. ``1 / n_estimators`` for a RandomForestRegressor that
    averages its members) multiplies every leaf value.
    """
    built = []
    for i, spec in enumerate(trees):
        class_id = spec.get("class_id", i % num_classes if num_classes > 1 else 0)
        tree = tree_from_arrays(
            spec["children_left"],
            spec["children_right"],
            spec["feature"],
            spec["threshold"],
            spec["value"],
            inclusive_threshold=inclusive_threshold,
            class_id=int(class_id),
            tree_id=i,
        )
        if scale is not None:
            tree.value = tree.value * scale
        built.append(tree)
    return Forest(
        built,
        num_features=num_features,
        objective=objective,
        base_score=base_score,
        num_classes=num_classes,
    )
