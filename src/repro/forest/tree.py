"""Array-backed binary decision tree.

A tree is stored as parallel arrays indexed by node id. Node 0 is always the
root. Internal nodes carry a feature index and a threshold; leaves carry a
prediction value. The predicate at an internal node is ``x[feature] < threshold``
(true -> left child, false -> right child), following the paper's convention.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.errors import ModelError

#: Sentinel child index meaning "no child" (the node is a leaf).
NO_NODE: int = -1

#: Sentinel feature index stored for leaf nodes.
LEAF: int = -1


class DecisionTree:
    """A binary decision tree stored as parallel per-node arrays.

    Parameters
    ----------
    feature:
        int array; ``feature[n]`` is the feature index tested at node ``n``,
        or :data:`LEAF` for leaves.
    threshold:
        float array; threshold tested at internal nodes (ignored for leaves).
    left, right:
        int arrays of child ids, :data:`NO_NODE` for leaves. A node must have
        either both children (internal) or neither (leaf).
    value:
        float array; prediction value at leaves (ignored for internal nodes).
    node_probability:
        optional float array; empirical probability that a walk visits each
        node, as measured on training data. ``None`` until populated by
        :func:`repro.forest.statistics.populate_node_probabilities`.
    class_id:
        output class this tree contributes to (multiclass ensembles train one
        tree per class per boosting round); 0 for regression/binary models.
    tree_id:
        position of this tree in its ensemble, for diagnostics.
    """

    __slots__ = (
        "feature",
        "threshold",
        "left",
        "right",
        "value",
        "node_probability",
        "class_id",
        "tree_id",
    )

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        node_probability: np.ndarray | None = None,
        class_id: int = 0,
        tree_id: int = 0,
    ) -> None:
        self.feature = np.asarray(feature, dtype=np.int32)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.left = np.asarray(left, dtype=np.int32)
        self.right = np.asarray(right, dtype=np.int32)
        self.value = np.asarray(value, dtype=np.float64)
        if node_probability is not None:
            node_probability = np.asarray(node_probability, dtype=np.float64)
        self.node_probability = node_probability
        self.class_id = int(class_id)
        self.tree_id = int(tree_id)
        self.validate()

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes (internal + leaves)."""
        return int(self.feature.shape[0])

    @property
    def root(self) -> int:
        """Node id of the root (always 0)."""
        return 0

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` is a leaf."""
        return self.left[node] == NO_NODE

    def leaves(self) -> np.ndarray:
        """Ids of all leaf nodes, in ascending id order."""
        return np.nonzero(self.left == NO_NODE)[0]

    def internal_nodes(self) -> np.ndarray:
        """Ids of all internal nodes, in ascending id order."""
        return np.nonzero(self.left != NO_NODE)[0]

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes."""
        return int(np.count_nonzero(self.left == NO_NODE))

    def children(self, node: int) -> tuple[int, int]:
        """``(left, right)`` child ids of ``node`` (``NO_NODE`` for leaves)."""
        return int(self.left[node]), int(self.right[node])

    def parents(self) -> np.ndarray:
        """Parent id for each node (``NO_NODE`` for the root)."""
        parent = np.full(self.num_nodes, NO_NODE, dtype=np.int32)
        internal = self.internal_nodes()
        parent[self.left[internal]] = internal
        parent[self.right[internal]] = internal
        return parent

    def depths(self) -> np.ndarray:
        """Depth of each node; the root has depth 0."""
        depth = np.zeros(self.num_nodes, dtype=np.int32)
        for node in self.iter_preorder():
            if not self.is_leaf(node):
                depth[self.left[node]] = depth[node] + 1
                depth[self.right[node]] = depth[node] + 1
        return depth

    @property
    def max_depth(self) -> int:
        """Depth of the deepest node."""
        return int(self.depths().max())

    def iter_preorder(self, start: int = 0) -> Iterator[int]:
        """Yield node ids in pre-order starting from ``start``."""
        stack = [start]
        while stack:
            node = stack.pop()
            yield node
            if not self.is_leaf(node):
                stack.append(int(self.right[node]))
                stack.append(int(self.left[node]))

    def iter_level_order(self, start: int = 0) -> Iterator[int]:
        """Yield node ids in level (breadth-first) order from ``start``."""
        from collections import deque

        queue = deque([start])
        while queue:
            node = queue.popleft()
            yield node
            if not self.is_leaf(node):
                queue.append(int(self.left[node]))
                queue.append(int(self.right[node]))

    def subtree_nodes(self, start: int) -> list[int]:
        """All node ids in the subtree rooted at ``start`` (pre-order)."""
        return list(self.iter_preorder(start))

    def structure_signature(self) -> tuple:
        """A hashable key identifying the tree *shape* (ignoring parameters).

        Two trees with the same signature are isomorphic as binary trees; the
        tree-reordering pass groups trees by this key so they can share
        traversal code (Section III-F).
        """
        sig: list[int] = []
        for node in self.iter_preorder():
            sig.append(0 if self.is_leaf(node) else 1)
        return tuple(sig)

    # ------------------------------------------------------------------
    # Prediction (reference semantics)
    # ------------------------------------------------------------------
    def predict_row(self, row: np.ndarray) -> float:
        """Walk the tree for a single input row; reference implementation."""
        node = 0
        while self.left[node] != NO_NODE:
            if row[self.feature[node]] < self.threshold[node]:
                node = int(self.left[node])
            else:
                node = int(self.right[node])
        return float(self.value[node])

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized reference prediction for a 2-D batch of rows."""
        rows = np.asarray(rows, dtype=np.float64)
        n = rows.shape[0]
        node = np.zeros(n, dtype=np.int32)
        active = self.left[node] != NO_NODE
        while active.any():
            idx = np.nonzero(active)[0]
            cur = node[idx]
            go_left = rows[idx, self.feature[cur]] < self.threshold[cur]
            node[idx] = np.where(go_left, self.left[cur], self.right[cur])
            active = self.left[node] != NO_NODE
        return self.value[node]

    def leaf_for_row(self, row: np.ndarray) -> int:
        """Id of the leaf reached by ``row``."""
        node = 0
        while self.left[node] != NO_NODE:
            if row[self.feature[node]] < self.threshold[node]:
                node = int(self.left[node])
            else:
                node = int(self.right[node])
        return node

    def leaves_for_rows(self, rows: np.ndarray) -> np.ndarray:
        """Leaf id reached by each row of a 2-D batch (vectorized)."""
        rows = np.asarray(rows, dtype=np.float64)
        node = np.zeros(rows.shape[0], dtype=np.int32)
        active = self.left[node] != NO_NODE
        while active.any():
            idx = np.nonzero(active)[0]
            cur = node[idx]
            go_left = rows[idx, self.feature[cur]] < self.threshold[cur]
            node[idx] = np.where(go_left, self.left[cur], self.right[cur])
            active = self.left[node] != NO_NODE
        return node

    # ------------------------------------------------------------------
    # Validation and serialization
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ModelError` if violated.

        Invariants: all arrays share one length; node 0 exists; every node has
        either two children or none; every non-root node has exactly one
        parent; the child graph is acyclic and spans all nodes from the root.
        """
        n = self.feature.shape[0]
        if n == 0:
            raise ModelError("tree has no nodes")
        for name in ("threshold", "left", "right", "value"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ModelError(f"array {name!r} has shape {arr.shape}, expected ({n},)")
        if self.node_probability is not None and self.node_probability.shape != (n,):
            raise ModelError("node_probability has wrong shape")
        has_left = self.left != NO_NODE
        has_right = self.right != NO_NODE
        if not np.array_equal(has_left, has_right):
            bad = int(np.nonzero(has_left != has_right)[0][0])
            raise ModelError(f"node {bad} has exactly one child; trees must be full binary")
        internal = np.nonzero(has_left)[0]
        kids = np.concatenate([self.left[internal], self.right[internal]])
        if kids.size:
            if kids.min() < 0 or kids.max() >= n:
                raise ModelError("child index out of range")
            if 0 in kids:
                raise ModelError("root (node 0) appears as a child")
            counts = np.bincount(kids, minlength=n)
            if (counts > 1).any():
                bad = int(np.nonzero(counts > 1)[0][0])
                raise ModelError(f"node {bad} has multiple parents")
            if int(counts.sum()) != n - 1:
                raise ModelError("tree is not connected: some nodes unreachable from root")
        elif n != 1:
            raise ModelError("tree with no internal nodes must be a single leaf")
        if (self.feature[internal] < 0).any():
            raise ModelError("internal node has negative feature index")
        # Reachability / acyclicity: each non-root node has exactly one parent
        # and there are n-1 edges, so the child graph is a tree rooted at 0.

    def to_dict(self) -> dict[str, Any]:
        """Serialize to plain Python containers (JSON compatible)."""
        out: dict[str, Any] = {
            "feature": self.feature.tolist(),
            "threshold": self.threshold.tolist(),
            "left": self.left.tolist(),
            "right": self.right.tolist(),
            "value": self.value.tolist(),
            "class_id": self.class_id,
            "tree_id": self.tree_id,
        }
        if self.node_probability is not None:
            out["node_probability"] = self.node_probability.tolist()
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DecisionTree":
        """Inverse of :meth:`to_dict`."""
        return cls(
            feature=np.asarray(data["feature"]),
            threshold=np.asarray(data["threshold"]),
            left=np.asarray(data["left"]),
            right=np.asarray(data["right"]),
            value=np.asarray(data["value"]),
            node_probability=(
                np.asarray(data["node_probability"]) if "node_probability" in data else None
            ),
            class_id=data.get("class_id", 0),
            tree_id=data.get("tree_id", 0),
        )

    def __repr__(self) -> str:
        return (
            f"DecisionTree(tree_id={self.tree_id}, nodes={self.num_nodes}, "
            f"leaves={self.num_leaves}, depth={self.max_depth})"
        )
