"""Leaf-probability statistics used by probability-based tiling.

The paper (Section III-B2, Figure 3) observes that in many models a small
fraction of leaves covers most of the training inputs ("leaf-biased" trees)
and exploits this with probability-based tiling. This module computes:

* per-node visit probabilities from training data
  (:func:`populate_node_probabilities`);
* the fraction of leaves a tree needs to cover a fraction ``beta`` of training
  rows (:func:`leaf_bias_fractions`) and the leaf-bias test with thresholds
  ``(alpha, beta)`` (:func:`is_leaf_biased`);
* the full statistical profile behind Figure 3
  (:func:`coverage_profile`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.forest.ensemble import Forest
from repro.forest.tree import DecisionTree


def leaf_probabilities(
    tree: DecisionTree, rows: np.ndarray, weights: np.ndarray | None = None
) -> np.ndarray:
    """Empirical probability of reaching each node, estimated from ``rows``.

    Returns a per-node array: for leaves it is the (weighted) fraction of
    rows that end at that leaf; for internal nodes it is the sum over leaves
    in the subtree (i.e. the probability a walk passes through the node),
    matching footnote 6 of the paper.
    """
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim != 2 or rows.shape[0] == 0:
        raise ModelError("rows must be a non-empty 2-D array")
    hit_leaves = tree.leaves_for_rows(rows)
    counts = np.bincount(
        hit_leaves, weights=weights, minlength=tree.num_nodes
    ).astype(np.float64)
    total = rows.shape[0] if weights is None else float(np.sum(weights))
    prob = counts / total
    # Propagate upward: process nodes in reverse level order so children are
    # done before parents.
    order = list(tree.iter_level_order())
    for node in reversed(order):
        if not tree.is_leaf(node):
            prob[node] = prob[tree.left[node]] + prob[tree.right[node]]
    return prob


def populate_node_probabilities(
    forest: Forest, rows: np.ndarray, weights: np.ndarray | None = None
) -> None:
    """Attach empirical node probabilities to every tree of ``forest`` in place."""
    for tree in forest.trees:
        tree.node_probability = leaf_probabilities(tree, rows, weights=weights)


def uniform_node_probabilities(tree: DecisionTree) -> np.ndarray:
    """Analytic fallback: probability 2^-depth(n) at each branch (no data needed)."""
    prob = np.zeros(tree.num_nodes, dtype=np.float64)
    prob[0] = 1.0
    for node in tree.iter_preorder():
        if not tree.is_leaf(node):
            prob[tree.left[node]] = prob[node] / 2.0
            prob[tree.right[node]] = prob[node] / 2.0
    return prob


def leaf_fraction_for_coverage(tree: DecisionTree, beta: float) -> float:
    """Smallest fraction of leaves whose probabilities sum to >= ``beta``.

    Requires ``tree.node_probability`` to be populated.
    """
    if tree.node_probability is None:
        raise ModelError("node probabilities not populated; call populate_node_probabilities")
    leaves = tree.leaves()
    probs = np.sort(tree.node_probability[leaves])[::-1]
    total = probs.cumsum()
    needed = int(np.searchsorted(total, beta - 1e-12) + 1)
    needed = min(needed, leaves.size)
    return needed / leaves.size


def leaf_bias_fractions(forest: Forest, beta: float) -> np.ndarray:
    """Per-tree fraction of leaves needed to cover ``beta`` of training rows."""
    return np.asarray(
        [leaf_fraction_for_coverage(tree, beta) for tree in forest.trees], dtype=np.float64
    )


def is_leaf_biased(tree: DecisionTree, alpha: float, beta: float) -> bool:
    """Leaf-bias test of Section III-C.

    A tree is leaf-biased for thresholds ``(alpha, beta)`` when a fraction
    ``<= alpha`` of its leaves covers a fraction ``>= beta`` of the training
    inputs. Probability-based tiling is applied only to such trees.
    """
    return leaf_fraction_for_coverage(tree, beta) <= alpha


def count_leaf_biased(forest: Forest, alpha: float, beta: float) -> int:
    """Number of leaf-biased trees in the forest (Table I last column)."""
    return sum(is_leaf_biased(tree, alpha, beta) for tree in forest.trees)


@dataclass(frozen=True)
class CoverageProfile:
    """The data behind one line of Figure 3.

    For a coverage target ``f``: ``leaf_fractions[i]`` is an x-coordinate
    (fraction of leaves) and ``tree_fractions[i]`` the fraction of trees in
    the model that can cover a fraction ``f`` of all training inputs using at
    most that fraction of their leaves.
    """

    coverage: float
    leaf_fractions: np.ndarray
    tree_fractions: np.ndarray


def coverage_profile(
    forest: Forest, coverage: float, grid: np.ndarray | None = None
) -> CoverageProfile:
    """Compute a Figure-3 line: cumulative distribution of per-tree leaf need.

    Parameters
    ----------
    forest:
        Ensemble with populated node probabilities.
    coverage:
        The fraction ``f`` of training inputs to cover (e.g. 0.9).
    grid:
        X-axis points (fractions of leaves); defaults to 100 log-spaced points
        between 0.5% and 100%.
    """
    if grid is None:
        grid = np.logspace(np.log10(0.005), 0.0, 100)
    needs = leaf_bias_fractions(forest, coverage)
    tree_fractions = np.asarray(
        [(needs <= x).mean() for x in grid], dtype=np.float64
    )
    return CoverageProfile(
        coverage=coverage,
        leaf_fractions=np.asarray(grid, dtype=np.float64),
        tree_fractions=tree_fractions,
    )
