"""Decision-tree ensemble data model.

This subpackage is the substrate every compiler stage consumes: an explicit,
array-backed representation of binary decision trees (:class:`DecisionTree`),
ensembles of them (:class:`Forest`), builders, loaders for common serialized
formats, and the leaf-probability statistics that drive probability-based
tiling (Section III-C of the paper).

The canonical node predicate is ``x[feature] < threshold``: when true the walk
moves to the *left* child, otherwise to the *right* child, matching the
paper's convention (footnote 1).
"""

from repro.forest.builder import TreeBuilder
from repro.forest.ensemble import Forest
from repro.forest.io_lightgbm import parse_lightgbm_text
from repro.forest.io_sklearn import forest_from_arrays
from repro.forest.io_xgboost import forest_from_xgboost_json, forest_to_xgboost_json
from repro.forest.statistics import (
    CoverageProfile,
    coverage_profile,
    is_leaf_biased,
    leaf_bias_fractions,
    populate_node_probabilities,
)
from repro.forest.tree import LEAF, NO_NODE, DecisionTree

__all__ = [
    "LEAF",
    "NO_NODE",
    "CoverageProfile",
    "DecisionTree",
    "Forest",
    "TreeBuilder",
    "coverage_profile",
    "forest_from_arrays",
    "forest_from_xgboost_json",
    "forest_to_xgboost_json",
    "is_leaf_biased",
    "leaf_bias_fractions",
    "parse_lightgbm_text",
    "populate_node_probabilities",
]
