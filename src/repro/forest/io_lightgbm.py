"""Parser for the LightGBM text model format.

LightGBM's ``Booster.save_model`` writes a plain-text file with a header
(``num_class=...``, ``max_feature_idx=...``, ``objective=...``) followed by
one ``Tree=<i>`` section per tree. Each section stores the tree as parallel
arrays over *internal* nodes (``split_feature``, ``threshold``,
``left_child``, ``right_child``, ``decision_type``) and a ``leaf_value``
array; child ids use the LightGBM convention that a non-negative id is an
internal node and ``~id`` (i.e. ``-(id)-1``) is leaf ``id``.

LightGBM's default numerical decision is ``x <= t`` goes left; thresholds are
converted to this library's strict ``x < t`` convention with ``nextafter``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelParseError
from repro.forest.ensemble import Forest
from repro.forest.tree import LEAF, NO_NODE, DecisionTree


def _parse_section(lines: list[str]) -> dict[str, str]:
    """Parse ``key=value`` lines into a dict (last occurrence wins)."""
    out: dict[str, str] = {}
    for line in lines:
        line = line.strip()
        if not line or "=" not in line:
            continue
        key, _, val = line.partition("=")
        out[key.strip()] = val.strip()
    return out


def _floats(text: str) -> np.ndarray:
    if not text.strip():
        return np.empty(0)
    return np.asarray([float(token) for token in text.split()], dtype=np.float64)


def _ints(text: str) -> np.ndarray:
    return _floats(text).astype(np.int64)


def _tree_from_section(fields: dict[str, str], class_id: int, tree_id: int) -> DecisionTree:
    num_leaves = int(fields.get("num_leaves", "0"))
    if num_leaves < 1:
        raise ModelParseError(f"tree {tree_id}: bad num_leaves")
    leaf_value = _floats(fields.get("leaf_value", ""))
    if leaf_value.shape[0] != num_leaves:
        raise ModelParseError(f"tree {tree_id}: leaf_value length mismatch")
    if num_leaves == 1:
        return DecisionTree(
            feature=np.asarray([LEAF]),
            threshold=np.asarray([0.0]),
            left=np.asarray([NO_NODE]),
            right=np.asarray([NO_NODE]),
            value=np.asarray([leaf_value[0]]),
            class_id=class_id,
            tree_id=tree_id,
        )
    num_internal = num_leaves - 1
    split_feature = _ints(fields.get("split_feature", ""))
    threshold = _floats(fields.get("threshold", ""))
    left_child = _ints(fields.get("left_child", ""))
    right_child = _ints(fields.get("right_child", ""))
    for name, arr in (
        ("split_feature", split_feature),
        ("threshold", threshold),
        ("left_child", left_child),
        ("right_child", right_child),
    ):
        if arr.shape[0] != num_internal:
            raise ModelParseError(f"tree {tree_id}: {name} length mismatch")

    # Re-number: internal node i -> i, leaf j -> num_internal + j.
    def remap(child: int) -> int:
        return int(child) if child >= 0 else num_internal + (~int(child))

    n = num_internal + num_leaves
    feature = np.full(n, LEAF, dtype=np.int64)
    thresh = np.zeros(n, dtype=np.float64)
    left = np.full(n, NO_NODE, dtype=np.int64)
    right = np.full(n, NO_NODE, dtype=np.int64)
    value = np.zeros(n, dtype=np.float64)
    feature[:num_internal] = split_feature
    # LightGBM routes x <= t left; convert to strict x < t.
    thresh[:num_internal] = np.nextafter(threshold, np.inf)
    left[:num_internal] = [remap(c) for c in left_child]
    right[:num_internal] = [remap(c) for c in right_child]
    value[num_internal:] = leaf_value
    # Our DecisionTree requires the root at index 0; LightGBM's is already 0.
    return DecisionTree(
        feature=feature,
        threshold=thresh,
        left=left,
        right=right,
        value=value,
        class_id=class_id,
        tree_id=tree_id,
    )


def parse_lightgbm_text(text: str, num_features: int | None = None) -> Forest:
    """Parse a LightGBM text model into a :class:`Forest`.

    Parameters
    ----------
    text:
        Contents of a file written by ``Booster.save_model``.
    num_features:
        Override for the feature count; defaults to ``max_feature_idx + 1``
        from the header.
    """
    blocks = text.split("Tree=")
    header = _parse_section(blocks[0].splitlines())
    if num_features is None:
        if "max_feature_idx" not in header:
            raise ModelParseError("header missing max_feature_idx and no override given")
        num_features = int(header["max_feature_idx"]) + 1
    num_classes = int(header.get("num_class", "1"))
    objective_text = header.get("objective", "regression")
    if num_classes > 1:
        objective = "multiclass"
    elif objective_text.startswith("binary"):
        objective = "binary:logistic"
    else:
        objective = "regression"
    if len(blocks) < 2:
        raise ModelParseError("model text contains no trees")
    trees = []
    for i, block in enumerate(blocks[1:]):
        fields = _parse_section(block.splitlines()[1:])  # first line is the tree index
        class_id = i % num_classes if num_classes > 1 else 0
        trees.append(_tree_from_section(fields, class_id=class_id, tree_id=i))
    return Forest(
        trees,
        num_features=num_features,
        objective=objective,
        num_classes=num_classes,
    )
