"""Loader/saver for the XGBoost JSON *dump* format.

``xgboost.Booster.get_dump(dump_format="json")`` produces one JSON document
per tree, each a nested object with keys ``nodeid``, ``split`` (feature name
``f<idx>`` or bare index), ``split_condition`` (threshold), ``yes``/``no``
(child node ids; XGBoost routes ``x < t`` to ``yes``) and ``children``; leaves
have ``leaf``. This module converts between that format and :class:`Forest`.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import ModelParseError
from repro.forest.ensemble import Forest
from repro.forest.tree import LEAF, NO_NODE, DecisionTree


def _feature_index(split: Any) -> int:
    """Parse an XGBoost split identifier (``"f12"``, ``"12"`` or ``12``)."""
    if isinstance(split, int):
        return split
    text = str(split)
    if text.startswith("f"):
        text = text[1:]
    try:
        return int(text)
    except ValueError as exc:
        raise ModelParseError(f"cannot parse feature index from split {split!r}") from exc


def tree_from_xgboost_dict(spec: dict[str, Any], class_id: int = 0, tree_id: int = 0) -> DecisionTree:
    """Convert one XGBoost dump tree (nested dict) into a :class:`DecisionTree`.

    Node ids are re-numbered into pre-order; XGBoost's own ``nodeid`` values
    are not preserved (they are only meaningful within the dump).
    """
    feature: list[int] = []
    threshold: list[float] = []
    left: list[int] = []
    right: list[int] = []
    value: list[float] = []

    def emit(node: dict[str, Any]) -> int:
        my_id = len(feature)
        if "leaf" in node:
            feature.append(LEAF)
            threshold.append(0.0)
            left.append(NO_NODE)
            right.append(NO_NODE)
            value.append(float(node["leaf"]))
            return my_id
        try:
            fidx = _feature_index(node["split"])
            thresh = float(node["split_condition"])
            children = {child["nodeid"]: child for child in node["children"]}
            yes_child = children[node["yes"]]
            no_child = children[node["no"]]
        except (KeyError, TypeError) as exc:
            raise ModelParseError(f"malformed XGBoost node: {node!r}") from exc
        feature.append(fidx)
        threshold.append(thresh)
        left.append(NO_NODE)
        right.append(NO_NODE)
        value.append(0.0)
        # XGBoost: x < t goes to "yes"; our convention: x < t goes left.
        left[my_id] = emit(yes_child)
        right[my_id] = emit(no_child)
        return my_id

    emit(spec)
    return DecisionTree(
        feature=np.asarray(feature),
        threshold=np.asarray(threshold),
        left=np.asarray(left),
        right=np.asarray(right),
        value=np.asarray(value),
        class_id=class_id,
        tree_id=tree_id,
    )


def forest_from_xgboost_json(
    dumps: list[str] | list[dict[str, Any]] | str,
    num_features: int,
    objective: str = "regression",
    base_score: float = 0.0,
    num_classes: int = 1,
) -> Forest:
    """Build a :class:`Forest` from XGBoost JSON tree dumps.

    Parameters
    ----------
    dumps:
        A list of JSON strings (one per tree, as returned by ``get_dump``),
        a list of already-parsed dicts, or a single JSON string encoding a
        list of trees.
    num_features, objective, base_score, num_classes:
        Ensemble metadata (the dump format does not carry it). For
        multiclass models trees are assigned classes round-robin
        (``tree i -> class i % num_classes``), which is XGBoost's layout.
    """
    if isinstance(dumps, str):
        try:
            dumps = json.loads(dumps)
        except json.JSONDecodeError as exc:
            raise ModelParseError(f"invalid JSON: {exc}") from exc
    if not isinstance(dumps, list) or not dumps:
        raise ModelParseError("expected a non-empty list of tree dumps")
    trees = []
    for i, item in enumerate(dumps):
        if isinstance(item, str):
            try:
                item = json.loads(item)
            except json.JSONDecodeError as exc:
                raise ModelParseError(f"tree {i}: invalid JSON: {exc}") from exc
        class_id = i % num_classes if num_classes > 1 else 0
        trees.append(tree_from_xgboost_dict(item, class_id=class_id, tree_id=i))
    return Forest(
        trees,
        num_features=num_features,
        objective=objective,
        base_score=base_score,
        num_classes=num_classes,
    )


def tree_to_xgboost_dict(tree: DecisionTree, node: int = 0) -> dict[str, Any]:
    """Convert a :class:`DecisionTree` (sub)tree back to XGBoost dump form."""
    if tree.is_leaf(node):
        return {"nodeid": node, "leaf": float(tree.value[node])}
    left, right = tree.children(node)
    return {
        "nodeid": node,
        "split": f"f{int(tree.feature[node])}",
        "split_condition": float(tree.threshold[node]),
        "yes": left,
        "no": right,
        "children": [tree_to_xgboost_dict(tree, left), tree_to_xgboost_dict(tree, right)],
    }


def forest_to_xgboost_json(forest: Forest) -> str:
    """Serialize a forest as a JSON list of XGBoost-dump trees."""
    return json.dumps([tree_to_xgboost_dict(tree) for tree in forest.trees])
