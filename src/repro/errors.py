"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch one base class. Subclasses are grouped by pipeline stage: model
construction/validation, compilation (per IR level), and runtime execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelError(ReproError):
    """A decision tree or ensemble is structurally invalid."""


class ModelParseError(ModelError):
    """A serialized model (XGBoost JSON, LightGBM text, ...) could not be parsed."""


class CompilerError(ReproError):
    """Base class for errors raised while lowering or optimizing the IR."""


class TilingError(CompilerError):
    """A tiling does not satisfy the validity constraints of Section III-B1."""


class LoweringError(CompilerError):
    """An IR operation could not be lowered to the next abstraction level."""


class LayoutError(CompilerError):
    """A tiled tree could not be materialized into an in-memory layout."""


class QuantizationError(LoweringError):
    """A model cannot be quantized to the requested integer precision.

    Raised by :func:`repro.lir.quantize.build_quantization` when a model
    exceeds the capacity of the target code dtype — more distinct
    thresholds on one feature than the dtype can rank-code, too many
    features for the narrowed index buffers — or contains non-finite leaf
    values that fixed-point leaf codes cannot represent. The message names
    the offending feature/limit and the precision that would fit.
    """


class CodegenError(CompilerError):
    """Generated source failed to compile or validate."""


class ScheduleError(CompilerError):
    """A compiler schedule (optimization configuration) is inconsistent."""


class BackendError(CompilerError):
    """A code-generation backend could not be resolved or registered.

    Raised by the :mod:`repro.backend.registry` for an unknown
    ``Schedule(backend=...)`` name, a duplicate registration, or a backend
    object that does not satisfy the :class:`~repro.backend.registry.Backend`
    interface. The message always lists the registered backend names so a
    typo is diagnosable from the exception alone.
    """


class ArtifactError(BackendError):
    """An AOT artifact is unreadable, corrupted, or version-incompatible.

    Raised by :func:`repro.backend.aot.load_artifact` when a serialized
    model artifact fails validation: missing files, a content hash that no
    longer matches (corruption/truncation), or a format version this
    build does not understand. Artifacts are rejected whole — a loader
    never guesses at partially-valid state.
    """


class VerificationError(CompilerError):
    """A lowered module violates a cross-level IR invariant.

    Raised by the :mod:`repro.verify` structural verifiers (HIR/MIR/LIR)
    when a lowering produced an inconsistent module — a broken tiling, a
    loop nest that misses trees, an out-of-bounds child pointer, a
    corrupted LUT. The message always names the level, the object (group/
    lane/tile) and the violated invariant.
    """


class ExecutionError(ReproError):
    """A compiled predictor failed at inference time."""


class ServingError(ReproError):
    """The serving layer rejected or could not complete a request.

    Raised for serving-policy failures — an unknown model name, a full or
    closed micro-batch queue, a submit timeout — as opposed to compiler or
    kernel failures, which keep their own classes (and are absorbed by the
    interpreter fallback when ``repro.serve`` is allowed to degrade).
    """
