"""Profile-guided hot/cold tree splitting (``Schedule(pgo=...)``).

Treebeard's schedules decide *statically* how a walk is realized; this
module closes the loop with where walks actually spend their steps, in the
spirit of "Register Your Forests" (arXiv 2404.06846): the top levels of a
tree are visited by (virtually) every walk, so they deserve the densest
possible layout, while the long tail below the shallowest leaf is
conditional and stays on the generic guarded path.

The *hot-depth cutoff* ``h`` of a tree group is the number of tile levels
compiled as the hot prefix. Three sources produce it:

* ``Schedule(pgo=h)`` — an explicit cutoff, typically measured from live
  serving profiles (:func:`measured_hot_depth` over
  :meth:`~repro.observe.profile.ProfileRecorder.aggregate`);
* ``Schedule(pgo="auto")`` — a static estimate from the tiled trees'
  expected walk length (leaf statistics when populated, structure
  otherwise);
* ``None`` — disabled (the default; fingerprints and kernels are
  byte-identical to pre-PGO builds).

Whatever the source, the cutoff is clipped per group to the *legal* range
``[1, min_leaf_depth - 1]``: every tile at depth below the shallowest leaf
is internal, so the hot prefix needs no leaf checks, no hop handling and no
negative child bases — it is a straight check-free peel over compact
contiguous prefix buffers. Groups where no legal cutoff exists (depth-0
groups, ``min_leaf_depth <= 1``) simply opt out.

Why a *prefix* buffer works without any index translation: both layouts
number tiles in level order (the sparse flattening is a breadth-first
queue; the array layout's positional slots grow with depth), so the tiles
at depth ``< h`` occupy a contiguous prefix of each lane's buffers and
keep their full-layout indices. The hot walk therefore reads small
cache-resident arrays, and the state it leaves behind after ``h`` steps
seeds the cold tail directly — same comparisons, same routing, same
accumulation order, hence bitwise-identical output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: widest hot interleave chunk: the hot prefix is uniform check-free code,
#: so far more walks can be jammed than in the guarded cold tail — capped
#: so the hot working set stays cache-resident.
HOT_CHUNK_CAP = 64


def hot_chunk_width(cold_width: int, num_trees: int) -> int:
    """Lane count of the hot prefix chunk loop.

    The hot phase has no termination checks and no compaction, so one
    dispatch can cover many more lanes than the cold tail's interleave
    width; 8x the cold width (capped at :data:`HOT_CHUNK_CAP` and the
    group size) amortizes the per-step dispatch overhead that dominates
    this backend.
    """
    return max(1, min(num_trees, 8 * max(1, cold_width), HOT_CHUNK_CAP))


@dataclass(frozen=True)
class HotDepthDecision:
    """How the per-group hot depths of one compilation were chosen."""

    #: ``"explicit"`` | ``"profile"`` | ``"static"`` | ``"disabled"``
    source: str
    #: the requested global cutoff before per-group legality clipping
    cutoff: int
    #: mean walk steps per (row, tree) behind the cutoff, when measured
    mean_steps: float | None = None
    #: group_id -> legal hot depth (0 = group opted out)
    per_group: dict[int, int] = field(default_factory=dict)

    def describe(self) -> str:
        active = {g: h for g, h in self.per_group.items() if h > 0}
        return (
            f"pgo[{self.source}] cutoff={self.cutoff} "
            f"hot_groups={active or '{}'}"
        )


def legal_hot_depth(depth: int, min_leaf_depth: int, cutoff: int) -> int:
    """Clip ``cutoff`` into a group's legal hot range; 0 disables.

    Legality: ``1 <= h < min_leaf_depth``. Depths below the shallowest
    leaf contain only internal tiles, so the hot prefix is check-free by
    construction; uniform padded groups have ``min_leaf_depth == depth``,
    which guarantees a non-empty cold tail (the final leaf step).
    """
    if depth <= 0 or min_leaf_depth <= 1 or cutoff < 1:
        return 0
    return min(int(cutoff), min_leaf_depth - 1)


def measured_hot_depth(
    counters: dict, num_walking_trees: int
) -> tuple[int | None, float | None]:
    """``(cutoff, mean_steps)`` from live profile aggregates.

    ``walk_steps`` counts one per active (row, tree) lane element per
    advance, so ``walk_steps / (rows * walking_trees)`` is the mean number
    of tile evaluations a walk performs — its expected leaf-tile depth.
    The final step lands *on* the leaf, so the levels every walk passes
    through as internal tiles number one less: ``floor(mean) - 1``
    (floored at 1). Returns ``(None, None)`` when the profile is empty.
    """
    rows = int(counters.get("rows", 0) or 0)
    steps = int(counters.get("walk_steps", 0) or 0)
    if rows <= 0 or steps <= 0 or num_walking_trees <= 0:
        return None, None
    mean = steps / (rows * num_walking_trees)
    return max(1, int(math.floor(mean)) - 1), mean


def static_hot_depth(tiled_trees, tree_indices) -> int:
    """Static cutoff for one group from its members' leaf statistics.

    Uses :meth:`~repro.hir.tiling.tile.TiledTree.expected_walk_length`
    (the probability-weighted expected leaf-tile depth) when node
    probabilities are populated; trees without statistics fall back to
    their shallowest-leaf depth — the levels *every* walk provably
    traverses.
    """
    estimates = []
    for idx in tree_indices:
        tiled = tiled_trees[idx]
        expected = tiled.expected_walk_length()
        estimates.append(
            expected if expected > 0 else float(tiled.min_leaf_depth)
        )
    if not estimates:
        return 0
    mean = sum(estimates) / len(estimates)
    return max(1, int(math.floor(mean)) - 1)


def resolve_hot_depths(schedule, groups, tiled_trees) -> HotDepthDecision:
    """Per-group hot depths for ``schedule.pgo`` over the HIR groups.

    Only the tiled traversal participates; quickscorer schedules (and
    ``pgo=None``) yield an all-zero decision, leaving the pipeline
    untouched.
    """
    pgo = schedule.pgo
    if pgo is None or schedule.traversal != "tiled":
        return HotDepthDecision(
            source="disabled",
            cutoff=0,
            per_group={g.group_id: 0 for g in groups},
        )
    per_group: dict[int, int] = {}
    if isinstance(pgo, int):
        for group in groups:
            per_group[group.group_id] = legal_hot_depth(
                group.depth, group.min_leaf_depth, pgo
            )
        return HotDepthDecision(
            source="explicit", cutoff=int(pgo), per_group=per_group
        )
    # "auto": independent static estimate per group
    cutoff = 0
    for group in groups:
        est = static_hot_depth(tiled_trees, group.tree_indices)
        cutoff = max(cutoff, est)
        per_group[group.group_id] = legal_hot_depth(
            group.depth, group.min_leaf_depth, est
        )
    return HotDepthDecision(source="static", cutoff=cutoff, per_group=per_group)


# ----------------------------------------------------------------------
# Introspection over lowered modules (serving gauges, flight events)
# ----------------------------------------------------------------------

def walking_trees(lir) -> int:
    """Trees in non-trivial groups — the denominator of the measured mean."""
    return sum(g.num_trees for g in lir.groups if not g.trivial)


def prefix_bytes(lir) -> dict:
    """Byte-level hot/full tile-buffer accounting of a lowered module.

    ``hot_bytes`` is the footprint of the compact prefix buffers the hot
    phase actually walks; ``full_bytes`` the corresponding full tile
    buffers — the shrink the split buys its cache residency with. Zeros
    when the module carries no hot split.
    """
    from repro.config import PRECISION_TABLE

    info = PRECISION_TABLE[lir.schedule.precision]
    hot = full = 0
    hot_depth = 0
    for group in lir.groups:
        split = getattr(group, "hot", None)
        if group.trivial or split is None:
            continue
        k, tiles, width = group.layout.thresholds.shape
        # th + fi + sid (+ cb for sparse, + nd mask when present) per tile
        per_tile = width * (info.element_size + info.findex_size) + 8
        if group.layout.kind == "sparse":
            per_tile += 8
        hot += k * split.tiles * per_tile
        full += k * tiles * per_tile
        hot_depth = max(hot_depth, split.depth)
    return {
        "hot_depth": hot_depth,
        "hot_bytes": int(hot),
        "full_bytes": int(full),
        "shrink": round(1.0 - hot / full, 4) if full else 0.0,
    }
