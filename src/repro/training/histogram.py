"""Quantile binning and histogram-based split finding.

The tree grower never looks at raw feature values: each feature is quantized
once into at most ``max_bins`` bins (cut points at empirical quantiles), and
split search reduces to prefix sums over per-bin gradient/hessian histograms.
This is the same strategy as XGBoost's ``hist`` and LightGBM's core algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class BinnedMatrix:
    """A dataset quantized for histogram training.

    Attributes
    ----------
    codes:
        ``(n_rows, n_features)`` uint16 bin indices.
    cuts:
        Per-feature array of cut points; bin ``b`` holds values
        ``cuts[b-1] < x <= cuts[b]`` (bin 0 holds ``x <= cuts[0]``).
    num_bins:
        Per-feature number of distinct bins (``len(cuts) + 1``).
    """

    codes: np.ndarray
    cuts: list[np.ndarray]
    num_bins: np.ndarray

    @property
    def num_rows(self) -> int:
        return self.codes.shape[0]

    @property
    def num_features(self) -> int:
        return self.codes.shape[1]

    def threshold_for(self, feature: int, split_bin: int) -> float:
        """Strict threshold realizing the split "bin <= split_bin goes left".

        Rows with ``x <= cuts[split_bin]`` go left, so the strict predicate
        ``x < t`` needs ``t = nextafter(cuts[split_bin], +inf)``.
        """
        return float(np.nextafter(self.cuts[feature][split_bin], np.inf))


def bin_dataset(X: np.ndarray, max_bins: int = 64) -> BinnedMatrix:
    """Quantize each feature of ``X`` into at most ``max_bins`` quantile bins."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] == 0:
        raise ModelError("X must be a non-empty 2-D array")
    if not (2 <= max_bins <= 65535):
        raise ModelError("max_bins must be in [2, 65535]")
    n, f = X.shape
    codes = np.empty((n, f), dtype=np.uint16)
    cuts: list[np.ndarray] = []
    num_bins = np.empty(f, dtype=np.int64)
    quantiles = np.linspace(0, 1, max_bins + 1)[1:-1]
    for j in range(f):
        col = X[:, j]
        candidates = np.unique(np.quantile(col, quantiles))
        # Drop cut points that cannot separate anything (>= max value).
        candidates = candidates[candidates < col.max()] if candidates.size else candidates
        cuts.append(candidates)
        codes[:, j] = np.searchsorted(candidates, col, side="left").astype(np.uint16)
        num_bins[j] = candidates.size + 1
    return BinnedMatrix(codes=codes, cuts=cuts, num_bins=num_bins)


@dataclass(frozen=True)
class SplitDecision:
    """The best split found for one tree node (or a no-split signal)."""

    feature: int
    split_bin: int
    gain: float
    threshold: float

    @property
    def is_valid(self) -> bool:
        return self.feature >= 0


NO_SPLIT = SplitDecision(feature=-1, split_bin=-1, gain=0.0, threshold=0.0)


def build_histograms(
    binned: BinnedMatrix, rows: np.ndarray, grad: np.ndarray, hess: np.ndarray, max_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(feature, bin) gradient and hessian sums for the rows of one node.

    Returns two ``(n_features, max_bins)`` arrays. Implemented with a single
    flattened ``bincount`` per statistic so the cost is one pass over the
    node's cells.
    """
    f = binned.num_features
    sub = binned.codes[rows]  # (m, f)
    flat = (np.arange(f, dtype=np.int64)[None, :] * max_bins + sub).ravel()
    gw = np.broadcast_to(grad[rows][:, None], sub.shape).ravel()
    hw = np.broadcast_to(hess[rows][:, None], sub.shape).ravel()
    ghist = np.bincount(flat, weights=gw, minlength=f * max_bins).reshape(f, max_bins)
    hhist = np.bincount(flat, weights=hw, minlength=f * max_bins).reshape(f, max_bins)
    return ghist, hhist


def find_best_split(
    ghist: np.ndarray,
    hhist: np.ndarray,
    binned: BinnedMatrix,
    reg_lambda: float,
    min_gain: float,
    min_child_weight: float,
    feature_mask: np.ndarray | None = None,
) -> SplitDecision:
    """Scan histogram prefix sums for the gain-maximizing (feature, bin) split.

    Gain follows XGBoost: ``GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)`` (halved
    constant omitted — it does not change the argmax).
    """
    g_total = ghist.sum(axis=1, keepdims=True)
    h_total = hhist.sum(axis=1, keepdims=True)
    gl = np.cumsum(ghist, axis=1)
    hl = np.cumsum(hhist, axis=1)
    gr = g_total - gl
    hr = h_total - hl
    # Zero-hessian prefixes divide by zero when reg_lambda == 0; those
    # entries are masked out below, so silence the vector warnings.
    with np.errstate(divide="ignore", invalid="ignore"):
        parent = (g_total**2) / (h_total + reg_lambda)
        gain = gl**2 / (hl + reg_lambda) + gr**2 / (hr + reg_lambda) - parent
    gain = np.nan_to_num(gain, nan=-np.inf, posinf=-np.inf, neginf=-np.inf)
    # A split at bin b is legal only if b < num_bins[f]-1 (there is a cut
    # point) and both children carry enough hessian weight.
    bins = np.arange(ghist.shape[1])[None, :]
    legal = bins < (binned.num_bins[:, None] - 1)
    legal &= (hl >= min_child_weight) & (hr >= min_child_weight)
    if feature_mask is not None:
        legal &= feature_mask[:, None]
    gain = np.where(legal, gain, -np.inf)
    best_flat = int(np.argmax(gain))
    feature, split_bin = divmod(best_flat, ghist.shape[1])
    best_gain = float(gain[feature, split_bin])
    if not np.isfinite(best_gain) or best_gain <= min_gain:
        return NO_SPLIT
    return SplitDecision(
        feature=int(feature),
        split_bin=int(split_bin),
        gain=best_gain,
        threshold=binned.threshold_for(int(feature), int(split_bin)),
    )
