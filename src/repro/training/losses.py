"""Loss functions for gradient boosting (first and second order statistics)."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.forest.ensemble import sigmoid, softmax


class SquaredLoss:
    """Mean squared error for regression: L = (pred - y)^2 / 2."""

    objective = "regression"
    num_outputs = 1

    def initial_score(self, y: np.ndarray) -> float:
        """Best constant predictor (the mean)."""
        return float(np.mean(y))

    def gradients(self, raw: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row gradient and hessian at the current raw scores."""
        return raw - y, np.ones_like(raw)


class LogisticLoss:
    """Binary cross-entropy on the logit scale; labels in {0, 1}."""

    objective = "binary:logistic"
    num_outputs = 1

    def initial_score(self, y: np.ndarray) -> float:
        """Log-odds of the base rate, clipped away from the degenerate cases."""
        p = float(np.clip(np.mean(y), 1e-6, 1 - 1e-6))
        return float(np.log(p / (1 - p)))

    def gradients(self, raw: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        p = sigmoid(raw)
        return p - y, np.maximum(p * (1 - p), 1e-12)


class SoftmaxLoss:
    """Multiclass cross-entropy; labels are integer class ids.

    ``gradients`` operates on a raw-score matrix of shape ``(n, num_classes)``
    and returns matrices of the same shape (one gradient column per class).
    """

    objective = "multiclass"

    def __init__(self, num_classes: int) -> None:
        if num_classes < 2:
            raise ModelError("SoftmaxLoss requires num_classes >= 2")
        self.num_classes = num_classes
        self.num_outputs = num_classes

    def initial_score(self, y: np.ndarray) -> float:
        """Zero initial margin per class (uniform prior)."""
        return 0.0

    def gradients(self, raw: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        p = softmax(raw)
        onehot = np.zeros_like(p)
        onehot[np.arange(y.shape[0]), y.astype(np.int64)] = 1.0
        grad = p - onehot
        hess = np.maximum(2.0 * p * (1 - p), 1e-12)
        return grad, hess


def get_loss(objective: str, num_classes: int = 1):
    """Look up a loss object by objective name."""
    if objective == "regression":
        return SquaredLoss()
    if objective == "binary:logistic":
        return LogisticLoss()
    if objective == "multiclass":
        return SoftmaxLoss(num_classes)
    raise ModelError(f"unknown objective {objective!r}")
