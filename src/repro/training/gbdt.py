"""Histogram-based gradient boosted decision trees.

``train_gbdt`` fits an ensemble with second-order boosting (XGBoost-style
gain and leaf weights) over quantile-binned features. It returns a
:class:`~repro.forest.ensemble.Forest`, the structure the Treebeard-style
compiler in this repository consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.forest.builder import TreeBuilder
from repro.forest.ensemble import Forest
from repro.forest.tree import DecisionTree
from repro.training.histogram import BinnedMatrix, bin_dataset, build_histograms, find_best_split
from repro.training.losses import get_loss


@dataclass
class GBDTParams:
    """Hyperparameters for :func:`train_gbdt`.

    Defaults roughly follow the Intel scikit-learn_bench settings the paper
    uses (learning rate 0.1, depth-limited trees).
    """

    num_rounds: int = 100
    max_depth: int = 6
    learning_rate: float = 0.1
    reg_lambda: float = 1.0
    min_gain: float = 0.0
    min_child_weight: float = 1.0
    max_bins: int = 64
    subsample: float = 1.0
    colsample: float = 1.0
    objective: str = "regression"
    num_classes: int = 1
    seed: int = 0
    extra: dict = field(default_factory=dict)


def _grow_tree(
    binned: BinnedMatrix,
    grad: np.ndarray,
    hess: np.ndarray,
    rows: np.ndarray,
    params: GBDTParams,
    rng: np.random.Generator,
) -> tuple[TreeBuilder, np.ndarray]:
    """Grow one depth-limited tree; returns the builder and per-row leaf ids.

    Growth is depth-wise: a frontier of (builder-slot, row-set, depth) items
    is expanded until no node can be split. Leaf values use the Newton step
    ``-G / (H + lambda)`` scaled by the learning rate.
    """
    builder = TreeBuilder()
    leaf_of_row = np.full(binned.num_rows, -1, dtype=np.int64)

    feature_mask = None
    if params.colsample < 1.0:
        f = binned.num_features
        keep = max(1, int(round(params.colsample * f)))
        chosen = rng.choice(f, size=keep, replace=False)
        feature_mask = np.zeros(f, dtype=bool)
        feature_mask[chosen] = True

    total_rows = rows.shape[0]

    def leaf_value(node_rows: np.ndarray) -> float:
        g = float(grad[node_rows].sum())
        h = float(hess[node_rows].sum())
        return -params.learning_rate * g / (h + params.reg_lambda)

    def probability(node_rows: np.ndarray) -> float:
        return node_rows.shape[0] / total_rows if total_rows else 0.0

    # Each frontier entry: (parent_id or None, side or None, row-set, depth).
    frontier: list[tuple[int | None, str | None, np.ndarray, int]] = [(None, None, rows, 0)]
    while frontier:
        parent, side, node_rows, depth = frontier.pop()
        decision = None
        if depth < params.max_depth and node_rows.shape[0] >= 2:
            ghist, hhist = build_histograms(binned, node_rows, grad, hess, params.max_bins)
            decision = find_best_split(
                ghist,
                hhist,
                binned,
                reg_lambda=params.reg_lambda,
                min_gain=params.min_gain,
                min_child_weight=params.min_child_weight,
                feature_mask=feature_mask,
            )
            if not decision.is_valid:
                decision = None
        if decision is None:
            node = builder.leaf(
                leaf_value(node_rows), parent=parent, side=side, probability=probability(node_rows)
            )
            leaf_of_row[node_rows] = node
            continue
        node = builder.internal(
            decision.feature,
            decision.threshold,
            parent=parent,
            side=side,
            probability=probability(node_rows),
        )
        goes_left = binned.codes[node_rows, decision.feature] <= decision.split_bin
        left_rows = node_rows[goes_left]
        right_rows = node_rows[~goes_left]
        if left_rows.size == 0 or right_rows.size == 0:
            raise ModelError("split produced an empty child; histogram/threshold mismatch")
        frontier.append((node, "right", right_rows, depth + 1))
        frontier.append((node, "left", left_rows, depth + 1))
    return builder, leaf_of_row


def train_gbdt(
    X: np.ndarray,
    y: np.ndarray,
    params: GBDTParams | None = None,
    sample_weight: np.ndarray | None = None,
) -> Forest:
    """Train a gradient-boosted forest on ``(X, y)``.

    For multiclass objectives one tree per class is trained per round (class
    ids assigned round-robin, matching XGBoost's layout). ``sample_weight``
    scales each row's gradient/hessian contribution — equivalent to
    duplicating rows, at one row's cost.
    """
    params = params or GBDTParams()
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ModelError("X must be (n, f) and y must be (n,) with matching n")
    if sample_weight is not None:
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        if sample_weight.shape != y.shape or (sample_weight <= 0).any():
            raise ModelError("sample_weight must be positive with shape (n,)")
    loss = get_loss(params.objective, params.num_classes)
    k = loss.num_outputs
    rng = np.random.default_rng(params.seed)
    binned = bin_dataset(X, max_bins=params.max_bins)
    n = X.shape[0]

    if sample_weight is None:
        base_score = loss.initial_score(y)
    elif params.objective == "regression":
        base_score = float(np.average(y, weights=sample_weight))
    elif params.objective == "binary:logistic":
        p = float(np.clip(np.average(y, weights=sample_weight), 1e-6, 1 - 1e-6))
        base_score = float(np.log(p / (1 - p)))
    else:
        base_score = 0.0
    raw = np.full((n, k), base_score, dtype=np.float64)
    trees: list[DecisionTree] = []
    for _round in range(params.num_rounds):
        if k == 1:
            grads, hesss = loss.gradients(raw[:, 0], y)
            grads = grads[:, None]
            hesss = hesss[:, None]
        else:
            grads, hesss = loss.gradients(raw, y)
        if sample_weight is not None:
            grads = grads * sample_weight[:, None]
            hesss = hesss * sample_weight[:, None]
        for cls in range(k):
            if params.subsample < 1.0:
                m = max(1, int(round(params.subsample * n)))
                rows = np.sort(rng.choice(n, size=m, replace=False))
            else:
                rows = np.arange(n)
            builder, leaf_of_row = _grow_tree(
                binned, grads[:, cls], hesss[:, cls], rows, params, rng
            )
            tree = builder.build(class_id=cls, tree_id=len(trees))
            trees.append(tree)
            # Update raw scores for all rows (including out-of-sample ones).
            raw[:, cls] += tree.predict(X)
    return Forest(
        trees,
        num_features=X.shape[1],
        objective=params.objective,
        base_score=base_score,
        num_classes=params.num_classes,
    )
