"""Random forest training on top of the histogram tree grower.

A bagged regression tree with variance-reduction splits is exactly a single
boosting round with squared loss, unit learning rate and no regularization
(leaf value = mean of targets in the leaf). The forest averages its members
by scaling each tree's leaves by ``1 / num_trees`` so the resulting
:class:`Forest` keeps the library-wide additive semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.forest.ensemble import Forest
from repro.training.gbdt import GBDTParams, _grow_tree
from repro.training.histogram import bin_dataset


@dataclass
class RandomForestParams:
    """Hyperparameters for :func:`train_random_forest`."""

    num_trees: int = 100
    max_depth: int = 8
    max_bins: int = 64
    bootstrap: bool = True
    colsample: float = 0.7
    min_child_weight: float = 1.0
    seed: int = 0


def train_random_forest(
    X: np.ndarray, y: np.ndarray, params: RandomForestParams | None = None
) -> Forest:
    """Train a bagged random forest regressor; returns an additive Forest."""
    params = params or RandomForestParams()
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ModelError("X must be (n, f) and y must be (n,) with matching n")
    rng = np.random.default_rng(params.seed)
    binned = bin_dataset(X, max_bins=params.max_bins)
    n = X.shape[0]
    # grad = -y with hess = 1 makes the Newton leaf value the mean of y.
    grad_full = -y
    hess_full = np.ones(n, dtype=np.float64)
    tree_params = GBDTParams(
        num_rounds=1,
        max_depth=params.max_depth,
        learning_rate=1.0,
        reg_lambda=0.0,
        min_child_weight=params.min_child_weight,
        max_bins=params.max_bins,
        colsample=params.colsample,
    )
    trees = []
    for i in range(params.num_trees):
        if params.bootstrap:
            rows = np.sort(rng.integers(0, n, size=n))
        else:
            rows = np.arange(n)
        builder, _ = _grow_tree(binned, grad_full, hess_full, rows, tree_params, rng)
        tree = builder.build(tree_id=i)
        tree.value = tree.value / params.num_trees
        trees.append(tree)
    return Forest(trees, num_features=X.shape[1], objective="regression")
