"""Small evaluation metrics used by tests and examples."""

from __future__ import annotations

import numpy as np


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def logloss(y_true: np.ndarray, p_pred: np.ndarray, eps: float = 1e-12) -> float:
    """Binary cross-entropy for probability predictions."""
    y_true = np.asarray(y_true, dtype=np.float64)
    p = np.clip(np.asarray(p_pred, dtype=np.float64), eps, 1 - eps)
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Classification accuracy. ``y_pred`` may be labels, probabilities
    (binary, thresholded at 0.5) or a class-probability matrix (argmax)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_pred.ndim == 2:
        labels = np.argmax(y_pred, axis=1)
    elif y_pred.dtype.kind == "f" and ((y_pred >= 0) & (y_pred <= 1)).all():
        labels = (y_pred >= 0.5).astype(np.int64)
    else:
        labels = y_pred
    return float(np.mean(labels == y_true))
