"""Training substrate: gradient-boosted trees and random forests.

The paper trains its benchmark models with XGBoost; this package provides an
offline, NumPy-only equivalent so that realistic ensembles (matched tree
counts, depths and leaf-probability skew) can be produced without network
access or native dependencies. The trainer is histogram-based (quantile
binning + second-order gain), the same family of algorithm XGBoost's ``hist``
method uses.
"""

from repro.training.gbdt import GBDTParams, train_gbdt
from repro.training.losses import LogisticLoss, SoftmaxLoss, SquaredLoss, get_loss
from repro.training.metrics import accuracy, logloss, rmse
from repro.training.random_forest import RandomForestParams, train_random_forest

__all__ = [
    "GBDTParams",
    "LogisticLoss",
    "RandomForestParams",
    "SoftmaxLoss",
    "SquaredLoss",
    "accuracy",
    "get_loss",
    "logloss",
    "rmse",
    "train_gbdt",
    "train_random_forest",
]
