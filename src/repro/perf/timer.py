"""Wall-clock measurement helpers for the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Measurement:
    """One timing result.

    ``seconds`` is the minimum over repeats (the standard low-noise
    estimator for compute-bound kernels); ``all_seconds`` keeps every
    repeat for dispersion reporting.
    """

    seconds: float
    all_seconds: tuple[float, ...]
    rows: int

    @property
    def per_row_us(self) -> float:
        """Microseconds per input row."""
        return self.seconds / max(self.rows, 1) * 1e6


def measure(
    fn: Callable[[], object],
    rows: int,
    repeats: int = 5,
    warmup: int = 1,
    min_time_s: float = 0.0,
) -> Measurement:
    """Time ``fn`` with warmup; returns the min over ``repeats``.

    ``min_time_s`` optionally extends each repeat by looping until the
    elapsed time passes the floor (for very fast kernels), normalizing the
    reported time by the loop count.
    """
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(max(1, repeats)):
        count = 0
        start = time.perf_counter()
        while True:
            fn()
            count += 1
            elapsed = time.perf_counter() - start
            if elapsed >= min_time_s or min_time_s <= 0.0:
                break
        times.append(elapsed / count)
    return Measurement(seconds=min(times), all_seconds=tuple(times), rows=rows)


def per_row_us(fn: Callable[[], object], rows: int, repeats: int = 5) -> float:
    """Shorthand: best-of-``repeats`` microseconds per row."""
    return measure(fn, rows=rows, repeats=repeats).per_row_us
