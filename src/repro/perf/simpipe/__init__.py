"""simpipe: a trace-driven microarchitectural cost model.

Reproduces the paper's Section VI-E analysis (Intel VTune top-down stall
breakdowns) without hardware counters: each code-generation variant —
*OneRow*, *OneTree*, *Vector*, *Interleaved*, and Treelite-style if-else —
is traced by actually walking the model on sample rows while feeding a
set-associative cache hierarchy and a 2-bit branch predictor; an in-order
pipeline model then attributes cycles to front-end stalls, memory-bound
back-end stalls, core-bound (dependency) back-end stalls, and retiring.

The absolute cycle counts are a model, not a measurement; what carries over
from the paper is the *attribution shape*: OneRow back-end bound, OneTree
recovering memory stalls, Vector cutting instructions, Interleaved cutting
core stalls, and Treelite front-end bound.
"""

from repro.perf.simpipe.branch import TwoBitPredictor
from repro.perf.simpipe.cache import Cache, MemoryHierarchy
from repro.perf.simpipe.pipeline import stall_breakdown
from repro.perf.simpipe.report import StallBreakdown
from repro.perf.simpipe.trace import (
    TraceStats,
    trace_interleaved,
    trace_one_row,
    trace_one_tree,
    trace_treelite,
    trace_vector,
    trace_variant,
)

__all__ = [
    "Cache",
    "MemoryHierarchy",
    "StallBreakdown",
    "TraceStats",
    "TwoBitPredictor",
    "stall_breakdown",
    "trace_interleaved",
    "trace_one_row",
    "trace_one_tree",
    "trace_treelite",
    "trace_variant",
    "trace_vector",
]
