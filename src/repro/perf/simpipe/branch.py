"""Branch prediction: a table of 2-bit saturating counters."""

from __future__ import annotations


class TwoBitPredictor:
    """Bimodal predictor: one 2-bit counter per branch-id slot.

    Counter states 0-1 predict not-taken, 2-3 predict taken. The table is
    direct-mapped on the branch id, so distinct branches alias when the
    working set exceeds the table — which is precisely what happens to
    if-else-expanded ensembles (every tree node is its own branch).
    """

    def __init__(self, table_size: int = 4096) -> None:
        self.table_size = table_size
        self._counters = [1] * table_size
        self.predictions = 0
        self.mispredictions = 0

    def record(self, branch_id: int, taken: bool) -> bool:
        """Predict + update for one dynamic branch; returns correctness."""
        slot = branch_id % self.table_size
        counter = self._counters[slot]
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            self._counters[slot] = min(3, counter + 1)
        else:
            self._counters[slot] = max(0, counter - 1)
        return correct

    @property
    def miss_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0
