"""Stall-breakdown reporting structures (VTune top-down analog)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StallBreakdown:
    """Cycle attribution for one traced variant on one machine.

    Categories follow the paper's Section VI-E narrative: *front-end*
    (instruction fetch/decode, including branch-misprediction refills, as
    the paper groups them for the Treelite analysis), *back-end memory*
    (data-cache misses), *back-end core* (dependency/port stalls), and
    *retiring* (useful work).
    """

    variant: str
    machine: str
    cycles_per_row: float
    instructions_per_row: float
    retiring: float
    frontend: float
    backend_memory: float
    backend_core: float

    @property
    def backend(self) -> float:
        return self.backend_memory + self.backend_core

    def row(self) -> dict:
        """Flat dict for tabular reporting."""
        return {
            "variant": self.variant,
            "machine": self.machine,
            "cycles/row": round(self.cycles_per_row, 1),
            "instrs/row": round(self.instructions_per_row, 1),
            "retiring%": round(100 * self.retiring, 1),
            "frontend%": round(100 * self.frontend, 1),
            "backend-mem%": round(100 * self.backend_memory, 1),
            "backend-core%": round(100 * self.backend_core, 1),
        }

    def __str__(self) -> str:
        return (
            f"{self.variant:12s} [{self.machine}] "
            f"cycles/row={self.cycles_per_row:9.1f} "
            f"retiring={self.retiring:5.1%} frontend={self.frontend:5.1%} "
            f"mem={self.backend_memory:5.1%} core={self.backend_core:5.1%}"
        )
