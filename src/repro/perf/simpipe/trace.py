"""Variant tracers: walk the model and feed the cache/branch models.

Each tracer executes the same inference the corresponding code-generation
variant would perform, in the same order, touching modeled addresses:

* rows live at ``ROWS_BASE`` (row-major float64),
* binary-tree nodes at ``TREES_BASE`` (24 B per node: threshold, feature,
  two child ids),
* tiled-tree tiles at ``TILES_BASE`` (``12 * n_t + 8`` B per tile:
  thresholds, feature indices, shape id, child pointer),
* the LUT at ``LUT_BASE``,
* generated code at ``CODE_BASE`` (used by the Treelite i-cache model).

The output :class:`TraceStats` aggregates retired instructions, vector-op
and gather counts, data-access latency from the cache hierarchy, branch
mispredictions, and i-cache miss latency; :mod:`repro.perf.simpipe.pipeline`
turns those into a stall breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forest.ensemble import Forest
from repro.hir.tiling.basic import basic_tiling
from repro.hir.tiling.shapes import shape_child_for_bits
from repro.hir.tiling.tile import TiledTree
from repro.perf.machine import MachineProfile
from repro.perf.simpipe.branch import TwoBitPredictor
from repro.perf.simpipe.cache import Cache, MemoryHierarchy

ROWS_BASE = 0x1000_0000
TREES_BASE = 0x2000_0000
TILES_BASE = 0x3000_0000
LUT_BASE = 0x3800_0000
CODE_BASE = 0x4000_0000

NODE_BYTES = 24
#: x86-ish bytes of code per if-else node (cmp + load + jcc + jmp)
CODE_BYTES_PER_NODE = 48

#: scalar instructions retired per binary-walk step (load feature index,
#: load threshold, load feature, compare, select child, loop bookkeeping)
SCALAR_STEP_INSTRS = 8
#: scalar-equivalent instructions per vectorized tile step (address math,
#: packbits, LUT index, child arithmetic, bookkeeping) — vector ops and
#: gathers are counted separately
VECTOR_STEP_INSTRS = 10


@dataclass
class TraceStats:
    """Aggregated events of one traced variant."""

    variant: str
    rows: int
    instructions: int = 0
    vector_ops: int = 0
    gather_lanes: int = 0
    mem_cycles: int = 0
    mem_accesses: int = 0
    l1_misses: int = 0
    dram_accesses: int = 0
    branches: int = 0
    mispredictions: int = 0
    icache_cycles: int = 0
    steps: int = 0
    #: independent walks advanced together (unroll-and-jam width)
    width: int = 1
    code_bytes: int = 0

    def per_row(self, value: float) -> float:
        return value / max(self.rows, 1)


def _reset_memory(mem: MemoryHierarchy) -> None:
    """Clear hit/miss counters while keeping cache contents (warm state)."""
    mem.l1.reset_counters()
    mem.l2.reset_counters()
    mem.dram_accesses = 0
    mem.total_accesses = 0


def _tree_bases(forest: Forest) -> list[int]:
    bases = [TREES_BASE]
    for tree in forest.trees:
        bases.append(bases[-1] + tree.num_nodes * NODE_BYTES)
    return bases


def _binary_step(
    stats: TraceStats,
    mem: MemoryHierarchy,
    predictor: TwoBitPredictor,
    tree,
    tree_base: int,
    node: int,
    row: np.ndarray,
    row_addr: int,
    branch_base: int,
) -> int:
    """One binary-walk step: node fetch, feature fetch, branch."""
    stats.steps += 1
    stats.instructions += SCALAR_STEP_INSTRS
    stats.mem_cycles += mem.access_range(tree_base + node * NODE_BYTES, NODE_BYTES)
    stats.mem_accesses += 1
    feature = int(tree.feature[node])
    stats.mem_cycles += mem.access(row_addr + feature * 8)
    stats.mem_accesses += 1
    go_left = row[feature] < tree.threshold[node]
    stats.branches += 1
    if not predictor.record(branch_base + node, bool(go_left)):
        stats.mispredictions += 1
    return int(tree.left[node]) if go_left else int(tree.right[node])


def _scalar_trace(forest: Forest, rows: np.ndarray, machine: MachineProfile,
                  one_tree: bool, warm: bool = True) -> TraceStats:
    mem = MemoryHierarchy.for_machine(machine)
    predictor = TwoBitPredictor()
    bases = _tree_bases(forest)
    num_features = forest.num_features

    def run(stats: TraceStats) -> None:
        def walk(t: int, i: int) -> None:
            tree = forest.trees[t]
            row = rows[i]
            row_addr = ROWS_BASE + i * num_features * 8
            node = 0
            while tree.left[node] != -1:
                node = _binary_step(
                    stats, mem, predictor, tree, bases[t], node, row, row_addr, bases[t]
                )
            stats.mem_cycles += mem.access(bases[t] + node * NODE_BYTES)
            stats.mem_accesses += 1
            stats.instructions += 2  # leaf load + accumulate

        if one_tree:
            for t in range(forest.num_trees):
                for i in range(rows.shape[0]):
                    walk(t, i)
        else:
            for i in range(rows.shape[0]):
                for t in range(forest.num_trees):
                    walk(t, i)

    variant = "OneTree" if one_tree else "OneRow"
    if warm:
        # Warm pass: populate caches/predictor so compulsory misses on the
        # small traced sample do not swamp the steady-state behaviour.
        run(TraceStats(variant=variant, rows=rows.shape[0]))
        _reset_memory(mem)
    stats = TraceStats(variant=variant, rows=rows.shape[0])
    run(stats)
    stats.l1_misses = mem.l1.misses
    stats.dram_accesses = mem.dram_accesses
    return stats


def trace_one_row(forest: Forest, rows: np.ndarray, machine: MachineProfile) -> TraceStats:
    """Scalar code, one row at a time over all trees (paper's *OneRow*)."""
    return _scalar_trace(forest, rows, machine, one_tree=False)


def trace_one_tree(forest: Forest, rows: np.ndarray, machine: MachineProfile) -> TraceStats:
    """Scalar code, one tree at a time over all rows (paper's *OneTree*)."""
    return _scalar_trace(forest, rows, machine, one_tree=True)


def _tiled_model(forest: Forest, tile_size: int) -> list[TiledTree]:
    return [
        TiledTree.from_tiling(tree, basic_tiling(tree, tile_size), tile_size)
        for tree in forest.trees
    ]


def _vector_trace(
    forest: Forest,
    rows: np.ndarray,
    machine: MachineProfile,
    tile_size: int,
    width: int,
    variant: str,
) -> TraceStats:
    """Tiled + vectorized walk; ``width`` jammed walks share the schedule."""
    mem = MemoryHierarchy.for_machine(machine)
    tiled_trees = _tiled_model(forest, tile_size)
    tile_bytes = 12 * tile_size + 8
    bases = [TILES_BASE]
    for tiled in tiled_trees:
        bases.append(bases[-1] + tiled.num_tiles * tile_bytes)
    num_features = forest.num_features
    lut_row_bytes = 1 << tile_size

    def run(stats: TraceStats) -> None:
        for t, tiled in enumerate(tiled_trees):
            tree = tiled.tree
            for i in range(rows.shape[0]):
                row = rows[i]
                row_addr = ROWS_BASE + i * num_features * 8
                tile = tiled.tiles[0]
                while not tile.is_leaf:
                    stats.steps += 1
                    stats.instructions += VECTOR_STEP_INSTRS
                    # Vector loads: thresholds + feature indices of the tile.
                    stats.vector_ops += 3  # two loads + one compare
                    stats.mem_cycles += mem.access_range(
                        bases[t] + tile.tile_id * tile_bytes, tile_bytes
                    )
                    stats.mem_accesses += 1
                    if tile.is_dummy:
                        bits = (1 << tile_size) - 1
                    else:
                        bits = 0
                        for pos, node in enumerate(tile.nodes):
                            # Feature gather: one lane per tile node.
                            stats.gather_lanes += 1
                            stats.mem_cycles += mem.access(
                                row_addr + int(tree.feature[node]) * 8
                            )
                            stats.mem_accesses += 1
                            if row[tree.feature[node]] < tree.threshold[node]:
                                bits |= 1 << pos
                        # Padding lanes still gather (speculative evaluation).
                        stats.gather_lanes += tile_size - len(tile.nodes)
                    # LUT lookup (hot; usually L1-resident).
                    shape_ord = 0 if tile.is_dummy else abs(hash(tile.shape)) % 64
                    stats.mem_cycles += mem.access(LUT_BASE + shape_ord * lut_row_bytes + bits)
                    stats.mem_accesses += 1
                    if tile.is_dummy:
                        child_index = 0
                    else:
                        child_index = shape_child_for_bits(tile.shape, bits)
                    tile = tiled.tiles[tile.children[child_index]]
                stats.instructions += 2  # leaf load + accumulate

    run(TraceStats(variant=variant, rows=rows.shape[0], width=width))
    _reset_memory(mem)
    stats = TraceStats(variant=variant, rows=rows.shape[0], width=width)
    run(stats)
    stats.l1_misses = mem.l1.misses
    stats.dram_accesses = mem.dram_accesses
    return stats


def trace_vector(
    forest: Forest, rows: np.ndarray, machine: MachineProfile, tile_size: int = 8
) -> TraceStats:
    """Tiled + vectorized, one tree at a time (paper's *Vector*)."""
    return _vector_trace(forest, rows, machine, tile_size, width=1, variant="Vector")


def trace_interleaved(
    forest: Forest,
    rows: np.ndarray,
    machine: MachineProfile,
    tile_size: int = 8,
    width: int = 8,
) -> TraceStats:
    """Tiled + vectorized + unroll-and-jam (paper's *Interleaved*).

    The event stream matches *Vector* (same loads, same work) minus the loop
    bookkeeping removed by unrolling; the pipeline model exploits ``width``
    independent chains when attributing dependency stalls.
    """
    stats = _vector_trace(forest, rows, machine, tile_size, width, "Interleaved")
    # Unrolling removes roughly a third of the dynamic instructions
    # (loop control + induction) — Section VI-E.
    stats.instructions = int(stats.instructions * 2 / 3)
    return stats


def trace_treelite(forest: Forest, rows: np.ndarray, machine: MachineProfile) -> TraceStats:
    """If-else expanded code: every node is its own branch + code block."""
    stats = TraceStats(variant="Treelite", rows=rows.shape[0])
    mem = MemoryHierarchy.for_machine(machine)
    icache = Cache(machine.icache_line_capacity, 8, 64)
    predictor = TwoBitPredictor()
    num_features = forest.num_features
    # Code layout: each node's compare/branch block, laid out per tree.
    code_bases = [CODE_BASE]
    for tree in forest.trees:
        code_bases.append(code_bases[-1] + tree.num_nodes * CODE_BYTES_PER_NODE)
    stats.code_bytes = code_bases[-1] - CODE_BASE
    miss_latency = machine.l2_latency  # decoded from L2 on i-cache miss

    def run(stats: TraceStats) -> None:
        for i in range(rows.shape[0]):
            row = rows[i]
            row_addr = ROWS_BASE + i * num_features * 8
            for t, tree in enumerate(forest.trees):
                node = 0
                while tree.left[node] != -1:
                    stats.steps += 1
                    stats.instructions += SCALAR_STEP_INSTRS
                    # Instruction fetch for this node's block.
                    if not icache.access(code_bases[t] + node * CODE_BYTES_PER_NODE):
                        stats.icache_cycles += miss_latency
                    # Thresholds are immediates in the code; only the feature
                    # value is a data access.
                    feature = int(tree.feature[node])
                    stats.mem_cycles += mem.access(row_addr + feature * 8)
                    stats.mem_accesses += 1
                    go_left = row[feature] < tree.threshold[node]
                    stats.branches += 1
                    if not predictor.record(
                        (code_bases[t] + node * CODE_BYTES_PER_NODE) // 16, bool(go_left)
                    ):
                        stats.mispredictions += 1
                    node = int(tree.left[node]) if go_left else int(tree.right[node])
                stats.instructions += 2

    code_bytes = stats.code_bytes
    run(TraceStats(variant="Treelite", rows=rows.shape[0]))
    _reset_memory(mem)
    icache.reset_counters()
    stats = TraceStats(variant="Treelite", rows=rows.shape[0], code_bytes=code_bytes)
    run(stats)
    stats.l1_misses = mem.l1.misses
    stats.dram_accesses = mem.dram_accesses
    return stats


VARIANTS = {
    "OneRow": trace_one_row,
    "OneTree": trace_one_tree,
    "Vector": trace_vector,
    "Interleaved": trace_interleaved,
    "Treelite": trace_treelite,
}


def trace_variant(
    name: str, forest: Forest, rows: np.ndarray, machine: MachineProfile, **kwargs
) -> TraceStats:
    """Dispatch a tracer by variant name (see :data:`VARIANTS`)."""
    return VARIANTS[name](forest, rows, machine, **kwargs)
