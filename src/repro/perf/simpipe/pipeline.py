"""In-order pipeline cost model: trace stats -> stall breakdown.

The model attributes cycles to four top-down buckets:

* **retiring** — instructions / issue width, plus vector-op and gather
  throughput (gathers cost ``gather_cost_per_lane`` per lane, the knob that
  separates the Intel-like and AMD-like profiles);
* **front-end** — i-cache miss latency plus branch-misprediction refills
  (grouped as the paper does for the Treelite analysis);
* **back-end memory** — data-access latency beyond the pipelined L1 hit
  cost, divided by the memory-level parallelism available (independent
  interleaved walks overlap their misses);
* **back-end core** — the exposed dependency chain of each walk step
  (address -> load -> compare -> select), less what the issue width can
  overlap, divided by the number of independent chains.

Coefficients are deliberately few and visible; this is a model for
reproducing the *attribution shape* of Section VI-E, not a cycle-accurate
simulator.
"""

from __future__ import annotations

from repro.perf.machine import MachineProfile
from repro.perf.simpipe.report import StallBreakdown
from repro.perf.simpipe.trace import TraceStats

#: non-load cycles on a walk step's critical path (address math, compare,
#: select) — the L1 hit latency is added on top
CHAIN_EXTRA_CYCLES = 3
#: memory-level parallelism the core extracts from one walk
BASE_MLP = 2


#: independent chains the scheduler can actually exploit (port/ROB limits)
MAX_EFFECTIVE_WIDTH = 4


def stall_breakdown(stats: TraceStats, machine: MachineProfile) -> StallBreakdown:
    """Attribute modeled cycles for ``stats`` on ``machine``."""
    width = min(max(1, stats.width), MAX_EFFECTIVE_WIDTH)

    retiring = stats.instructions / machine.issue_width
    retiring += stats.vector_ops
    retiring += stats.gather_lanes * machine.gather_cost_per_lane

    # Data-side stalls: latency beyond the pipelined L1-hit cost, overlapped
    # across independent walks.
    hidden = stats.mem_accesses * machine.l1_latency
    excess = max(0, stats.mem_cycles - hidden)
    mlp = BASE_MLP * width
    backend_memory = excess / mlp

    # Dependency stalls: each step's chain is serial within a walk; the
    # issue engine covers part of it, independent walks cover the rest.
    chain = machine.l1_latency + CHAIN_EXTRA_CYCLES
    per_step_issue = (stats.instructions / max(stats.steps, 1)) / machine.issue_width
    exposed = max(0.0, chain - per_step_issue)
    backend_core = stats.steps * exposed / width

    frontend = stats.icache_cycles + stats.mispredictions * machine.branch_miss_penalty

    total = retiring + frontend + backend_memory + backend_core
    total = max(total, 1e-9)
    return StallBreakdown(
        variant=stats.variant,
        machine=machine.name,
        cycles_per_row=stats.per_row(total),
        instructions_per_row=stats.per_row(stats.instructions),
        retiring=retiring / total,
        frontend=frontend / total,
        backend_memory=backend_memory / total,
        backend_core=backend_core / total,
    )
