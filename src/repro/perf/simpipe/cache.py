"""Set-associative LRU caches and a two-level memory hierarchy."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ReproError


class Cache:
    """A set-associative cache with true-LRU replacement.

    Only tag state is modeled (no data). ``access`` returns True on hit and
    installs the line on miss.
    """

    def __init__(self, size: int, assoc: int, line: int = 64) -> None:
        if size <= 0 or assoc <= 0 or line <= 0:
            raise ReproError("cache parameters must be positive")
        num_lines = size // line
        if num_lines % assoc != 0:
            raise ReproError("cache size / line size must be divisible by associativity")
        self.line = line
        self.assoc = assoc
        self.num_sets = num_lines // assoc
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Access one byte address; returns hit/miss and updates LRU state."""
        tag = addr // self.line
        index = tag % self.num_sets
        ways = self._sets[index]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = None
        if len(ways) > self.assoc:
            ways.popitem(last=False)
        return False

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass
class MemoryHierarchy:
    """L1 + L2 + DRAM; ``access`` returns the load-to-use latency in cycles."""

    l1: Cache
    l2: Cache
    l1_latency: int
    l2_latency: int
    mem_latency: int
    #: accesses that missed all the way to DRAM
    dram_accesses: int = 0
    total_accesses: int = 0

    @classmethod
    def for_machine(cls, machine) -> "MemoryHierarchy":
        """Build a hierarchy from a MachineProfile."""
        return cls(
            l1=Cache(machine.l1_size, machine.l1_assoc, machine.l1_line),
            l2=Cache(machine.l2_size, machine.l2_assoc, machine.l1_line),
            l1_latency=machine.l1_latency,
            l2_latency=machine.l2_latency,
            mem_latency=machine.mem_latency,
        )

    def access(self, addr: int) -> int:
        self.total_accesses += 1
        if self.l1.access(addr):
            return self.l1_latency
        if self.l2.access(addr):
            return self.l2_latency
        self.dram_accesses += 1
        return self.mem_latency

    def access_range(self, addr: int, size: int) -> int:
        """Access ``size`` bytes starting at ``addr``; returns total latency
        of the distinct lines touched (vector loads touch 1-2 lines)."""
        line = self.l1.line
        total = 0
        for a in range(addr - addr % line, addr + size, line):
            total += self.access(a)
        return total
