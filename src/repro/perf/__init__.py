"""Performance measurement and modeling.

``timer`` provides robust wall-clock measurement (min-of-repeats, per-row
normalization). ``machine`` defines the two machine profiles (Intel Rocket
Lake-like and AMD Ryzen-like) used by the microarchitectural model in
``simpipe``, which reproduces the paper's VTune-based stall analysis
(Section VI-E) with a trace-driven cache + branch-predictor + in-order
pipeline cost model.
"""

from repro.perf.machine import AMD_RYZEN_LIKE, INTEL_ROCKET_LAKE_LIKE, MachineProfile
from repro.perf.timer import Measurement, measure, per_row_us

__all__ = [
    "AMD_RYZEN_LIKE",
    "INTEL_ROCKET_LAKE_LIKE",
    "MachineProfile",
    "Measurement",
    "measure",
    "per_row_us",
]
