"""Machine profiles for the microarchitectural cost model.

The paper evaluates on an Intel Core i9-11900K (Rocket Lake) and an AMD
Ryzen 7 4700G and finds the best optimization parameters differ — most
notably because "the Intel machine has a much more efficient implementation
of the gather instruction" (Section VI-A). The profiles below encode the
parameters the :mod:`repro.perf.simpipe` model consumes; the numbers are
order-of-magnitude public figures, not measurements of the actual parts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineProfile:
    """Cost-model parameters for one CPU target.

    Attributes
    ----------
    name:
        Profile identifier.
    issue_width:
        Max instructions retired per cycle (in-order approximation).
    vector_width_bits:
        SIMD width; determines how many tile lanes one vector op covers.
    gather_cost_per_lane:
        Cycles per gathered element (Intel's AVX-512-era gather is much
        cheaper per lane than AMD Zen 2's microcoded one).
    l1_size, l1_assoc, l1_line, l1_latency:
        L1 data cache geometry and hit latency (cycles).
    l2_size, l2_assoc, l2_latency:
        L2 geometry and latency.
    mem_latency:
        Miss-to-DRAM latency in cycles.
    branch_miss_penalty:
        Pipeline refill cost of a mispredicted branch.
    icache_line_capacity:
        Instruction-cache capacity proxy (bytes of hot code before
        front-end misses start) — used for the Treelite-style analysis.
    cores:
        Physical core count for parallel scaling studies.
    """

    name: str
    issue_width: int = 4
    vector_width_bits: int = 256
    gather_cost_per_lane: float = 1.0
    l1_size: int = 48 * 1024
    l1_assoc: int = 12
    l1_line: int = 64
    l1_latency: int = 5
    l2_size: int = 512 * 1024
    l2_assoc: int = 8
    l2_latency: int = 13
    mem_latency: int = 220
    branch_miss_penalty: int = 17
    icache_line_capacity: int = 32 * 1024
    cores: int = 8

    @property
    def vector_lanes_f64(self) -> int:
        """Double-precision lanes per vector register."""
        return max(1, self.vector_width_bits // 64)


#: Intel Core i9-11900K (Rocket Lake)-like: AVX-512, fast gathers.
INTEL_ROCKET_LAKE_LIKE = MachineProfile(
    name="intel-rocket-lake-like",
    issue_width=5,
    vector_width_bits=512,
    gather_cost_per_lane=0.8,
    l1_size=48 * 1024,
    l1_assoc=12,
    l1_latency=5,
    l2_size=512 * 1024,
    l2_assoc=8,
    l2_latency=13,
    mem_latency=220,
    branch_miss_penalty=17,
    cores=8,
)

#: AMD Ryzen 7 4700G (Zen 2)-like: AVX2, microcoded (slow) gathers.
AMD_RYZEN_LIKE = MachineProfile(
    name="amd-ryzen-like",
    issue_width=5,
    vector_width_bits=256,
    gather_cost_per_lane=2.5,
    l1_size=32 * 1024,
    l1_assoc=8,
    l1_latency=4,
    l2_size=512 * 1024,
    l2_assoc=8,
    l2_latency=12,
    mem_latency=240,
    branch_miss_penalty=16,
    cores=8,
)

PROFILES = {p.name: p for p in (INTEL_ROCKET_LAKE_LIKE, AMD_RYZEN_LIKE)}
