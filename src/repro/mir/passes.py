"""MIR optimization passes (Section IV).

Each pass takes and returns an :class:`~repro.mir.ir.MIRModule`, mutating the
loop nest in place and appending to ``pass_log``. ``run_mir_pipeline``
applies the standard ordering driven by the schedule.
"""

from __future__ import annotations

from repro.errors import LoweringError
from repro.hir.ir import HIRModule
from repro.mir.ir import MIRModule
from repro.observe.stats import mir_stats
from repro.observe.trace import CompilationTrace


def interleave_pass(mir: MIRModule, hir: HIRModule) -> MIRModule:
    """Tree-walk interleaving by unroll-and-jam (Section IV-A).

    The innermost tree loop is unrolled ``factor`` times and the resulting
    walks jammed into one interleaved walk, so independent walks can overlap
    (in the paper: hide dependency stalls; here: amortize per-step overhead
    across wider vector operations). The jam width is clipped to the group
    size — jamming more walks than there are trees is meaningless.
    """
    factor = mir.schedule.interleave
    for loop in mir.tree_loops:
        width = max(1, min(factor, loop.num_trees))
        loop.step = width
        loop.walk.width = width
    mir.pass_log.append(f"interleave(factor={factor})")
    return mir


def peel_and_unroll_pass(mir: MIRModule, hir: HIRModule) -> MIRModule:
    """Walk peeling and unrolling (Section IV-B).

    Uniform-depth (padded) groups get fully unrolled walks with no
    termination checks. Other groups get a peeled prologue: the first
    ``min_leaf_depth - 1`` steps cannot reach a leaf, so their termination
    checks are elided; the remaining steps run in a guarded loop.
    """
    groups = {g.group_id: g for g in hir.groups}
    for loop in mir.tree_loops:
        group = groups[loop.group_id]
        walk = loop.walk
        if mir.schedule.pad_and_unroll and group.uniform and group.depth > 0:
            walk.style = "unrolled"
            walk.depth = group.depth
            walk.peel = 0
        elif mir.schedule.peel_walk and group.min_leaf_depth > 1:
            walk.style = "peeled"
            walk.depth = group.depth
            walk.peel = group.min_leaf_depth - 1
        else:
            walk.style = "loop"
            walk.depth = group.depth
    mir.pass_log.append("peel_and_unroll")
    return mir


def hot_split_pass(mir: MIRModule, hir: HIRModule) -> MIRModule:
    """Profile-guided hot/cold walk splitting (``Schedule(pgo=...)``).

    Groups annotated with a hot depth by the HIR stage get their walks
    split: the first ``hot_depth`` steps run as a check-free phase over
    compact prefix buffers at a much wider jam width, then the ordinary
    walk style (loop / peeled / unrolled) finishes from the carried state.
    The split is orthogonal to the style — ``peel``/``depth`` keep their
    meaning, codegen simply starts the cold phase ``hot_depth`` levels in.
    """
    from repro.pgo import hot_chunk_width, legal_hot_depth

    groups = {g.group_id: g for g in hir.groups}
    for loop in mir.tree_loops:
        group = groups[loop.group_id]
        walk = loop.walk
        # Re-clip: HIR annotations are already legal, but clipping here
        # keeps the pass safe for hand-built modules in tests.
        hot = legal_hot_depth(group.depth, group.min_leaf_depth, group.hot_depth)
        walk.hot_depth = hot
        walk.hot_width = hot_chunk_width(walk.width, loop.num_trees) if hot else 0
    mir.pass_log.append("hot_split")
    return mir


def parallelize_pass(mir: MIRModule, hir: HIRModule) -> MIRModule:
    """Naive row-loop parallelization (Section IV-C).

    The loop over input rows is tiled by the core count and marked
    ``parallel.for``; each thread runs the full tree nest on its block.
    """
    threads = mir.schedule.parallel
    if threads > 1:
        mir.row_loop.num_threads = threads
    mir.pass_log.append(f"parallelize(threads={threads})")
    return mir


def verify_mir(mir: MIRModule, hir: HIRModule) -> None:
    """Structural sanity checks between passes; raises LoweringError."""
    seen = set()
    groups = {g.group_id: g for g in hir.groups}
    for loop in mir.tree_loops:
        if loop.group_id in seen:
            raise LoweringError(f"group {loop.group_id} appears in two tree loops")
        seen.add(loop.group_id)
        if loop.group_id not in groups:
            raise LoweringError(f"unknown group {loop.group_id}")
        group = groups[loop.group_id]
        if loop.num_trees != group.num_trees:
            raise LoweringError("tree loop trip count disagrees with its group")
        walk = loop.walk
        if walk.width > loop.num_trees:
            raise LoweringError("jam width exceeds group size")
        if walk.style == "unrolled" and not group.uniform:
            raise LoweringError("unrolled walk on a non-uniform-depth group")
        if walk.style == "peeled" and walk.peel >= group.min_leaf_depth:
            raise LoweringError("peel count reaches the shallowest leaf")
        if walk.hot_depth:
            if walk.hot_depth >= group.min_leaf_depth:
                raise LoweringError("hot depth reaches the shallowest leaf")
            if not (1 <= walk.hot_width <= loop.num_trees):
                raise LoweringError("hot jam width outside [1, num_trees]")
        elif walk.hot_width:
            raise LoweringError("hot jam width set without a hot depth")
    if seen != set(groups):
        raise LoweringError("some groups have no tree loop")


def run_mir_pipeline(
    mir: MIRModule, hir: HIRModule, trace: CompilationTrace | None = None
) -> MIRModule:
    """Apply the schedule-driven pass ordering with verification.

    Each pass runs inside its own trace span; the final span carries the
    post-pipeline loop-nest statistics (walk styles, widths, peel depths).
    """
    trace = trace or CompilationTrace()
    if hir.schedule.interleave > 1:
        with trace.span("interleave") as span:
            interleave_pass(mir, hir)
            span.stats["widths"] = [loop.walk.width for loop in mir.tree_loops]
    with trace.span("peel-and-unroll") as span:
        peel_and_unroll_pass(mir, hir)
        span.stats["styles"] = {
            loop.group_id: loop.walk.style for loop in mir.tree_loops
        }
    if any(g.hot_depth for g in hir.groups):
        with trace.span("hot-split") as span:
            hot_split_pass(mir, hir)
            span.stats["hot"] = {
                loop.group_id: (loop.walk.hot_depth, loop.walk.hot_width)
                for loop in mir.tree_loops
                if loop.walk.hot_depth
            }
    with trace.span("parallelize") as span:
        parallelize_pass(mir, hir)
        span.stats["threads"] = mir.row_loop.num_threads
    with trace.span("verify-mir") as span:
        verify_mir(mir, hir)
        span.stats.update(mir_stats(mir))
    return mir
