"""Mid-level IR node definitions.

The MIR for ``predictForest`` is a loop nest:

* :class:`RowLoop` — the batch loop over input rows, possibly blocked and
  possibly parallel (Section IV-C tiles it by the core count).
* :class:`TreeChunkLoop` — the loop over the trees of one code-sharing
  group, stepped by the interleave factor after unroll-and-jam
  (Section IV-A).
* :class:`WalkOp` — the abstract tree-walk operation. ``style`` records how
  the walk loop will be realized: a guarded loop, a peeled
  prologue + loop, or a fully unrolled sequence of ``traverseTile`` steps
  (Section IV-B); ``width`` is the number of tree walks jammed together.

The nest shape encodes the loop order of Section III-E: in ``one-tree``
order the row dimension is innermost (each walk processes the whole row
block before the next chunk of trees); in ``one-row`` order rows are
outermost and every tree is walked for a row before moving on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import Schedule

WALK_STYLES = ("loop", "peeled", "unrolled")


@dataclass
class WalkOp:
    """Walk ``width`` trees of one group for the current rows.

    Attributes
    ----------
    group_id:
        The tree group this walk belongs to.
    width:
        Number of tree walks advanced together (1 before the interleaving
        pass; the unroll-and-jam factor after it).
    style:
        ``"loop"`` — while-not-leaf with a termination check every step;
        ``"peeled"`` — the first ``peel`` steps skip termination checks
        (no leaf can be reached before the shallowest leaf depth);
        ``"unrolled"`` — exactly ``depth`` steps, no checks at all (only
        valid for uniform-depth padded groups).
    depth:
        Walk-step count for ``unrolled`` (and an upper bound otherwise).
    peel:
        Number of check-free prologue steps for ``peeled``.
    hot_depth:
        Profile-guided hot/cold cutoff: the first ``hot_depth`` steps of
        every walk run as a separate check-free phase over compact prefix
        buffers before the style above takes over (0 = no split).
    hot_width:
        Jam width of the hot phase — check-free code admits far wider
        chunks than the guarded cold tail (0 when ``hot_depth`` is 0).
    """

    group_id: int
    width: int = 1
    style: str = "loop"
    depth: int = 0
    peel: int = 0
    hot_depth: int = 0
    hot_width: int = 0

    def describe(self) -> str:
        detail = {
            "loop": f"while !isLeaf (depth<={self.depth})",
            "peeled": f"peel {self.peel} then while !isLeaf (depth<={self.depth})",
            "unrolled": f"{self.depth} traverseTile steps, no checks",
        }[self.style]
        if self.hot_depth > 0:
            detail = (
                f"hot prefix {self.hot_depth} steps x{self.hot_width}, then "
                + detail
            )
        return f"WalkDecisionTree[group={self.group_id} x{self.width}]: {detail}"


@dataclass
class TreeChunkLoop:
    """Loop over the trees of one group with step = interleave width."""

    group_id: int
    num_trees: int
    step: int
    walk: WalkOp

    def describe(self) -> str:
        return (
            f"for t in group {self.group_id} step {self.step} "
            f"({self.num_trees} trees)"
        )


@dataclass
class RowLoop:
    """The batch loop over input rows.

    ``block`` rows are processed per iteration (0 = the whole batch at
    once); ``num_threads > 1`` marks the loop as a ``parallel.for`` tiled by
    the core count, the naive strategy of Section IV-C.
    """

    block: int = 0
    num_threads: int = 1

    @property
    def parallel(self) -> bool:
        return self.num_threads > 1


@dataclass
class MIRModule:
    """The full mid-level IR for one compiled model."""

    schedule: Schedule
    loop_order: str
    row_loop: RowLoop
    tree_loops: list[TreeChunkLoop] = field(default_factory=list)
    #: names of the passes that ran, in order (for introspection/tests)
    pass_log: list[str] = field(default_factory=list)

    def dump(self) -> str:
        """Human-readable rendering of the loop nest (docs and debugging)."""
        lines = []
        hdr = "parallel.for" if self.row_loop.parallel else "for"
        block = self.row_loop.block or "batch"
        lines.append(f"{hdr} rows step {block} (threads={self.row_loop.num_threads}):")
        if self.loop_order == "one-row":
            lines.append("  for row in block:")
            indent = "    "
        else:
            indent = "  "
        for loop in self.tree_loops:
            lines.append(f"{indent}{loop.describe()}:")
            lines.append(f"{indent}  {loop.walk.describe()}")
            lines.append(f"{indent}  prediction += getLeafValue(...)")
        return "\n".join(lines)
