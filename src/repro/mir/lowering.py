"""HIR -> MIR lowering: build the initial loop nest.

The loop structure (order, blocking) was decided at the HIR level and is
communicated through the schedule, exactly as the paper lowers HIR
annotations into explicit MIR loop nests (Section II). The initial nest is
unoptimized: every walk has width 1 and a guarded loop; the MIR passes in
:mod:`repro.mir.passes` then rewrite it.
"""

from __future__ import annotations

from repro.hir.ir import HIRModule
from repro.mir.ir import MIRModule, RowLoop, TreeChunkLoop, WalkOp


def lower_hir_to_mir(hir: HIRModule) -> MIRModule:
    """Materialize the loop nest for ``hir`` per its schedule."""
    schedule = hir.schedule
    row_loop = RowLoop(block=schedule.row_block, num_threads=1)
    tree_loops = []
    for group in hir.groups:
        walk = WalkOp(group_id=group.group_id, width=1, style="loop", depth=group.depth)
        tree_loops.append(
            TreeChunkLoop(
                group_id=group.group_id,
                num_trees=group.num_trees,
                step=1,
                walk=walk,
            )
        )
    return MIRModule(
        schedule=schedule,
        loop_order=schedule.loop_order,
        row_loop=row_loop,
        tree_loops=tree_loops,
        pass_log=["lower_hir_to_mir"],
    )
