"""Mid-level IR: explicit loop nests over (tree, row) pairs.

At this level (Section IV of the paper) the order in which tree/row pairs
are walked is explicit, but memory layout is not: ``WalkOp`` still
"represents all valid ways to compute the prediction of a decision tree".
The passes here rewrite the loop nest — interleaving walks (unroll-and-jam),
peeling and unrolling walk loops, and tiling the row loop for
parallelization — and record their decisions on the IR for the LIR lowering
to consume.
"""

from repro.mir.ir import MIRModule, RowLoop, TreeChunkLoop, WalkOp
from repro.mir.lowering import lower_hir_to_mir
from repro.mir.passes import (
    interleave_pass,
    parallelize_pass,
    peel_and_unroll_pass,
    run_mir_pipeline,
)

__all__ = [
    "MIRModule",
    "RowLoop",
    "TreeChunkLoop",
    "WalkOp",
    "interleave_pass",
    "lower_hir_to_mir",
    "parallelize_pass",
    "peel_and_unroll_pass",
    "run_mir_pipeline",
]
