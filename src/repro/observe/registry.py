"""The unified observability registry.

One process-wide :class:`Registry` (:data:`registry`) aggregates every
observability surface behind a single ``snapshot()`` / ``export_json()``:

* ``kernel_pool``  — lifetime gauges of the shared kernel thread pool
* ``traces``       — the most recent compilation traces (bounded ring)
* ``profiles``     — aggregated kernel profiling counters of every live
  ``Schedule(profile=True)`` predictor
* ``tunes``        — the most recent autotuning runs (bounded ring):
  winner schedule, budget outcome, cost-model rank correlation
* ``backends``     — per-backend lifetime counters (compiles, artifact
  exports/loads, artifact code-cache hits) recorded by the backend
  registry dispatch and the AOT loader
* ``serving``      — the metrics snapshot of every live ``ModelServer``
  (servers register on construction, unregister on close)
* ``spans``        — the most recent sampled request span trees
  (:data:`repro.observe.spans.RING`, populated by servers running with
  ``ServerConfig(trace_sample > 0)``)
* ``events``       — the flight recorder: compiles, hot swaps, tune
  outcomes, fallbacks, errors, slow requests
  (:data:`repro.observe.events.recorder`)
* ``gauges``       — ad-hoc point-in-time providers registered by anyone

The snapshot's *top-level keys are a stable schema* (``SNAPSHOT_KEYS``,
checked in CI): dashboards and tests may rely on them existing in every
version. Values under ``serving``/``gauges`` are namespaced by registration
name. A provider that raises contributes an ``"<error: ...>"`` string
instead of poisoning the snapshot.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Callable

from repro.observe import events as _events
from repro.observe import profile as _profile
from repro.observe import spans as _spans
from repro.observe.trace import CompilationTrace, jsonable

#: stable top-level snapshot schema (guarded by tests + CI)
SNAPSHOT_KEYS = (
    "schema_version",
    "kernel_pool",
    "traces",
    "profiles",
    "tunes",
    "backends",
    "serving",
    "spans",
    "events",
    "gauges",
)

#: v5: two new top-level keys — ``spans`` (sampled request span trees from
#: the serving layer) and ``events`` (the flight recorder) — plus serving
#: snapshots gained ``histograms`` (queue wait / kernel time / latency /
#: batch size buckets) and the kernel pool gained task timing counters.
SCHEMA_VERSION = 5

#: recent compilation traces kept for the snapshot
TRACE_RING_CAPACITY = 32

#: recent autotuning runs kept for the snapshot
TUNE_RING_CAPACITY = 32


class Registry:
    """Thread-safe aggregation point for all observability providers."""

    def __init__(self, trace_capacity: int = TRACE_RING_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._serving: dict[str, Callable[[], dict]] = {}
        self._gauges: dict[str, Callable[[], object]] = {}
        self._traces: deque[dict] = deque(maxlen=trace_capacity)
        self._traces_recorded = 0
        self._tunes: deque[dict] = deque(maxlen=TUNE_RING_CAPACITY)
        self._tunes_recorded = 0
        self._backend_events: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_serving(self, name: str, provider: Callable[[], dict]) -> None:
        """Attach a serving-metrics snapshot provider under ``name``."""
        with self._lock:
            self._serving[name] = provider

    def register_gauge(self, name: str, provider: Callable[[], object]) -> None:
        """Attach an ad-hoc point-in-time gauge under ``name``."""
        with self._lock:
            self._gauges[name] = provider

    def unregister(self, name: str) -> None:
        """Remove a serving provider or gauge (missing names are a no-op)."""
        with self._lock:
            self._serving.pop(name, None)
            self._gauges.pop(name, None)

    def record_trace(self, trace: CompilationTrace) -> None:
        """Push one finished compilation trace into the bounded ring."""
        snapshot = trace.to_dict()
        with self._lock:
            self._traces.append(snapshot)
            self._traces_recorded += 1

    def record_tune(self, event: dict) -> None:
        """Push one finished autotuning run into the bounded ring."""
        with self._lock:
            self._tunes.append(jsonable(event))
            self._tunes_recorded += 1

    def record_backend_event(self, backend: str, event: str, n: int = 1) -> None:
        """Bump a lifetime counter for one backend (``compiles``,
        ``artifact_loads``, ``artifact_exports``, ...)."""
        with self._lock:
            counters = self._backend_events.setdefault(backend, {})
            counters[event] = counters.get(event, 0) + int(n)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One coherent view of every registered surface (stable keys)."""
        from repro.backend.parallel import pool_stats

        with self._lock:
            serving = dict(self._serving)
            gauges = dict(self._gauges)
            traces = list(self._traces)
            recorded = self._traces_recorded
            tunes = list(self._tunes)
            tunes_recorded = self._tunes_recorded
            backends = {
                name: dict(counters)
                for name, counters in self._backend_events.items()
            }
        return {
            "schema_version": SCHEMA_VERSION,
            "kernel_pool": _call_safe(pool_stats),
            "traces": {
                "recorded": recorded,
                "kept": len(traces),
                "recent": traces,
            },
            "profiles": _profile.aggregate_all(),
            "tunes": {
                "recorded": tunes_recorded,
                "kept": len(tunes),
                "recent": tunes,
            },
            "backends": backends,
            "serving": {name: _call_safe(fn) for name, fn in serving.items()},
            # The span ring and flight recorder are process-wide singletons
            # (servers write into them directly); the registry reads them at
            # snapshot time like any other provider.
            "spans": _call_safe(_spans.RING.snapshot),
            "events": _call_safe(_events.recorder.snapshot),
            "gauges": {name: _call_safe(fn) for name, fn in gauges.items()},
        }

    def export_json(self, indent: int | None = None) -> str:
        """The snapshot as a JSON document (always serializable)."""
        return json.dumps(jsonable(self.snapshot()), indent=indent)

    def clear(self) -> None:
        """Drop every registration and recorded trace (test hygiene)."""
        with self._lock:
            self._serving.clear()
            self._gauges.clear()
            self._traces.clear()
            self._traces_recorded = 0
            self._tunes.clear()
            self._tunes_recorded = 0
            self._backend_events.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Registry(serving={len(self._serving)}, gauges={len(self._gauges)}, "
                f"traces={len(self._traces)})"
            )


def _call_safe(fn: Callable[[], object]) -> object:
    try:
        return fn()
    except Exception as exc:
        return f"<error: {exc}>"


#: the process-wide registry every subsystem reports into
registry = Registry()
