"""Compilation tracing: nested timed spans over the lowering pipeline.

A :class:`CompilationTrace` records one tree of :class:`Span` objects per
compiled model — one span per pipeline stage (HIR tiling/padding/reorder,
each MIR pass, LIR lowering, codegen, JIT compile) with wall-clock duration
and a free-form ``stats`` dict the pass fills with structured IR statistics
(tile-shape histograms, padding overhead, buffer sizes, ...). The trace is
attached to the resulting :class:`~repro.backend.predictor.Predictor` and
recorded into :data:`repro.observe.registry` so the whole deployment's
recent compilations are visible from one snapshot.

Spans nest via the context-manager protocol::

    trace = CompilationTrace(label="my-model")
    with trace.span("hir") as hir_span:
        with trace.span("tiling") as s:
            ...
            s.stats["tiles_total"] = 123

Tracing is cheap (two ``perf_counter`` calls and a few dict writes per
span) relative to any real pipeline stage, so it is always on; there is no
"disabled" mode to keep the instrumentation honest.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Iterator


def jsonable(value: Any) -> Any:
    """Coerce ``value`` into plain JSON-serializable Python containers.

    NumPy scalars/arrays, tuples, sets and non-string dict keys all appear
    in IR statistics; the exporters funnel everything through here so
    ``json.dumps`` never sees a foreign type.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item") and not hasattr(value, "ndim"):
        return value.item()
    if hasattr(value, "ndim"):  # numpy array (or scalar with ndim)
        if getattr(value, "ndim") == 0:
            return value.item()
        return [jsonable(v) for v in value.tolist()]
    return str(value)


class Span:
    """One timed pipeline stage with structured statistics and children."""

    __slots__ = ("name", "started_s", "duration_s", "stats", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.started_s = time.perf_counter()
        self.duration_s: float = 0.0
        self.stats: dict[str, Any] = {}
        self.children: list["Span"] = []

    def close(self) -> None:
        self.duration_s = time.perf_counter() - self.started_s

    def find(self, name: str) -> "Span | None":
        """First descendant span (depth-first) named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1e3, 6),
            "stats": jsonable(self.stats),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, children={len(self.children)})"


class CompilationTrace:
    """The span tree of one ``compile_model`` run.

    The root span covers the whole pipeline; :meth:`span` opens a child of
    whichever span is currently open (a plain stack — compilation is
    single-threaded per model).
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.root = Span("compile")
        self._stack: list[Span] = [self.root]
        self._closed = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a nested timed span; closes (and times) it on exit."""
        span = Span(name)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.close()
            self._stack.pop()

    def finish(self) -> "CompilationTrace":
        """Close the root span (idempotent); total time is then final."""
        if not self._closed:
            self.root.close()
            self._closed = True
        return self

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return self.root.duration_s

    def find(self, name: str) -> Span | None:
        """Lookup a span by name anywhere in the tree (root included)."""
        if self.root.name == name:
            return self.root
        return self.root.find(name)

    def to_dict(self) -> dict:
        return {"label": self.label, **self.root.to_dict()}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def report(self) -> str:
        """Human-readable indented rendering with per-pass timings."""
        lines: list[str] = []
        if self.label:
            lines.append(f"compilation trace: {self.label}")

        def render(span: Span, depth: int) -> None:
            pad = "  " * depth
            lines.append(f"{pad}{span.name:<24s} {span.duration_s * 1e3:9.3f} ms")
            for key, value in span.stats.items():
                lines.append(f"{pad}  . {key} = {_fmt_stat(value)}")
            for child in span.children:
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CompilationTrace(label={self.label!r}, "
            f"total={self.total_seconds * 1e3:.3f}ms, "
            f"spans={sum(1 for _ in _walk(self.root))})"
        )


def _walk(span: Span) -> Iterator[Span]:
    yield span
    for child in span.children:
        yield from _walk(child)


def _fmt_stat(value: Any) -> str:
    text = repr(jsonable(value))
    return text if len(text) <= 100 else text[:97] + "..."
