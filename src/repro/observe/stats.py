"""Structured IR statistics for each pipeline level.

Each collector takes the module produced by one lowering level and returns
a plain dict of JSON-friendly numbers — the "why was this schedule fast"
features: tile-shape histograms and padding overhead at HIR, loop structure
at MIR, buffer and LUT byte sizes at LIR. ``compile_model`` attaches them
to the matching trace spans; :func:`repro.observe.explain` renders them as
a per-schedule decision report, and an autotuner can use them directly as
an observation space.

All collectors are read-only over the IR (duck-typed attribute access, no
imports of the IR modules) so they can run on any pipeline stage output
without import cycles.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence


def distribution(values: Sequence[float]) -> dict[str, float]:
    """Compact summary of a numeric distribution (min/mean/max/total)."""
    seq = [float(v) for v in values]
    if not seq:
        return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0, "total": 0.0}
    return {
        "count": len(seq),
        "min": min(seq),
        "mean": sum(seq) / len(seq),
        "max": max(seq),
        "total": sum(seq),
    }


# ----------------------------------------------------------------------
# HIR
# ----------------------------------------------------------------------

def tiling_stats(hir) -> dict[str, Any]:
    """Tile-shape histogram plus tree depth/leaf distributions.

    Depth "before" is the binary tree's node depth; "after" is the tiled
    tree's leaf-*tile* depth — their ratio is the walk-step compression the
    tiling bought. Dummy tiles are excluded here (padding owns them).
    """
    shape_hist: Counter[str] = Counter()
    tiles_per_tree: list[int] = []
    nodes_per_tile: list[int] = []
    depth_before: list[int] = []
    depth_after: list[int] = []
    leaves_per_tree: list[int] = []
    for tiled in hir.tiled_trees:
        real = [t for t in tiled.tiles if not t.is_dummy and not t.is_leaf]
        tiles_per_tree.append(len(real))
        for tile in real:
            shape_hist[_shape_label(tile.shape)] += 1
            nodes_per_tile.append(tile.num_nodes)
        depth_before.append(int(tiled.tree.max_depth))
        depth_after.append(max((t.depth for t in tiled.tiles if t.is_leaf), default=0))
        leaves_per_tree.append(int(tiled.tree.num_leaves))
    return {
        "tile_size": hir.schedule.tile_size,
        "tiling": hir.schedule.tiling,
        "num_trees": len(hir.tiled_trees),
        "tile_shape_hist": dict(shape_hist),
        "distinct_shapes": len(shape_hist),
        "tiles_per_tree": distribution(tiles_per_tree),
        "nodes_per_tile": distribution(nodes_per_tile),
        "tree_depth_before": distribution(depth_before),
        "leaf_tile_depth_after": distribution(depth_after),
        "leaves_per_tree": distribution(leaves_per_tree),
    }


def padding_stats(hir) -> dict[str, Any]:
    """Dummy-tile overhead introduced by pad-to-uniform-depth."""
    dummy = 0
    total = 0
    padded_trees = 0
    uniform_trees = 0
    for tiled in hir.tiled_trees:
        tree_dummy = sum(1 for t in tiled.tiles if t.is_dummy)
        dummy += tree_dummy
        total += len(tiled.tiles)
        if tree_dummy:
            padded_trees += 1
        if tiled.is_uniform_depth:
            uniform_trees += 1
    return {
        "enabled": bool(hir.schedule.pad_and_unroll),
        "dummy_tiles": dummy,
        "total_tiles": total,
        "dummy_fraction": (dummy / total) if total else 0.0,
        "trees_padded": padded_trees,
        "trees_uniform_depth": uniform_trees,
    }


def reorder_stats(hir) -> dict[str, Any]:
    """Code-sharing group structure after tree reordering."""
    groups = [
        {
            "group_id": g.group_id,
            "num_trees": g.num_trees,
            "depth": g.depth,
            "uniform": bool(g.uniform),
            "min_leaf_depth": g.min_leaf_depth,
        }
        for g in hir.groups
    ]
    return {
        "enabled": bool(hir.schedule.reorder),
        "num_groups": len(groups),
        "groups": groups,
    }


def hir_stats(hir) -> dict[str, Any]:
    """All HIR-level statistics in one dict (the ``explain`` view)."""
    return {
        "tiling": tiling_stats(hir),
        "padding": padding_stats(hir),
        "reorder": reorder_stats(hir),
        "lut_shape": list(hir.lut.shape),
    }


# ----------------------------------------------------------------------
# MIR
# ----------------------------------------------------------------------

def mir_stats(mir) -> dict[str, Any]:
    """Loop-nest structure after the MIR passes."""
    loops = [
        {
            "group_id": loop.group_id,
            "num_trees": loop.num_trees,
            "step": loop.step,
            "walk_style": loop.walk.style,
            "walk_width": loop.walk.width,
            "walk_depth": loop.walk.depth,
            "walk_peel": loop.walk.peel,
        }
        for loop in mir.tree_loops
    ]
    return {
        "loop_order": mir.loop_order,
        "row_block": mir.row_loop.block,
        "row_threads": mir.row_loop.num_threads,
        "num_tree_loops": len(loops),
        "tree_loops": loops,
        "pass_log": list(mir.pass_log),
    }


# ----------------------------------------------------------------------
# LIR
# ----------------------------------------------------------------------

def lir_stats(lir) -> dict[str, Any]:
    """Materialized buffer footprints: per-group bytes plus the LUT."""
    groups = []
    for g in lir.groups:
        layout = g.layout
        groups.append(
            {
                "group_id": g.group_id,
                "kind": layout.kind,
                "num_trees": g.num_trees,
                "trivial": bool(g.trivial),
                "nbytes": int(layout.nbytes()),
                "walk": g.walk.describe(),
            }
        )
    return {
        "layout": lir.schedule.layout,
        "precision": lir.schedule.precision,
        "num_groups": len(groups),
        "groups": groups,
        "model_bytes": int(lir.total_nbytes()),
        "lut_shape": list(lir.lut.shape),
        "lut_bytes": int(lir.lut.nbytes),
        "num_shapes": int(lir.lut.shape[0]),
        "has_dummy_shape": lir.dummy_shape_id is not None,
    }


def _shape_label(shape) -> str:
    """Stable compact label for a canonical tile-shape key."""
    if shape is None:
        return "leaf"
    if len(shape) == 0:
        return "dummy"
    return f"n{len(shape)}:" + ";".join(f"{l},{r}" for l, r in shape)
