"""Kernel profiling counters (``Schedule(profile=True)``).

When a schedule enables profiling, codegen emits counter increments into
the generated kernel source: each kernel invocation binds ``_C = _P.local()``
— its calling thread's :class:`ProfileCounters` — and bumps plain integer
fields as the walk executes. ``_P`` is the :class:`ProfileRecorder` living
in the kernel's JIT namespace, owned by the predictor.

Per-thread structs mean the hot path takes no locks: the shared kernel pool
runs row blocks on several threads, each incrementing its own counters, and
:meth:`ProfileRecorder.aggregate` merges them under a lock only when read.

With ``profile=False`` (the default) none of this exists in the generated
source — the instrumentation is compiled *out*, not branched over — so the
production hot path is untouched.

Counter semantics (all element counts are (row, tree) lane elements):

``kernel_calls``       ``predict_block`` invocations
``rows``               rows seen across invocations
``walk_steps``         tile-advance steps executed (one per active lane
                       element per step) — the paper's walk-length metric
``lut_lookups``        child-index LUT lookups (== tile evaluations)
``peeled_steps``       check-free prologue steps (per chunk, per depth)
``unrolled_steps``     unrolled straight-line steps (per chunk, per depth)
``loop_iterations``    guarded-loop iterations (per chunk)
``rows_masked``        lane elements that idled under the mask in
                       non-compacted guarded loops
``scratch_bytes``      bytes of scratch-arena views bound by the kernel
"""

from __future__ import annotations

import itertools
import threading
import weakref

COUNTER_FIELDS = (
    "kernel_calls",
    "rows",
    "walk_steps",
    "lut_lookups",
    "peeled_steps",
    "unrolled_steps",
    "loop_iterations",
    "rows_masked",
    "scratch_bytes",
)

_recorder_ids = itertools.count(1)

#: every live recorder, for the registry's global profile snapshot
_RECORDERS: "weakref.WeakSet[ProfileRecorder]" = weakref.WeakSet()
_RECORDERS_LOCK = threading.Lock()


class ProfileCounters:
    """One thread's counter struct; plain int fields, no locking."""

    __slots__ = COUNTER_FIELDS

    def __init__(self) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        return {name: int(getattr(self, name)) for name in COUNTER_FIELDS}

    def clear(self) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"ProfileCounters({body})"


class ProfileRecorder:
    """Per-predictor registry of per-thread :class:`ProfileCounters`.

    The generated kernel calls :meth:`local` once per invocation; the
    predictor (and the observability registry) read :meth:`aggregate`.
    Thread structs are kept strongly in ``_threads`` — the set is bounded
    by the kernel pool size, and keeping them preserves counts from pool
    threads that have since exited.
    """

    def __init__(self, label: str = "") -> None:
        # Labels are always suffixed with a process-unique id so two
        # predictors of the same model never collide in the registry.
        self.label = f"{label or 'profile'}#{next(_recorder_ids)}"
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._threads: list[ProfileCounters] = []
        with _RECORDERS_LOCK:
            _RECORDERS.add(self)

    def local(self) -> ProfileCounters:
        """The calling thread's counter struct (created on first use)."""
        counters = getattr(self._tls, "counters", None)
        if counters is None:
            counters = ProfileCounters()
            self._tls.counters = counters
            with self._lock:
                self._threads.append(counters)
        return counters

    def aggregate(self) -> dict[str, int]:
        """Sum of every thread's counters (taken under the lock)."""
        total = {name: 0 for name in COUNTER_FIELDS}
        with self._lock:
            threads = list(self._threads)
        for counters in threads:
            for name in COUNTER_FIELDS:
                total[name] += int(getattr(counters, name))
        return total

    def reset(self) -> None:
        """Zero every thread's counters (for before/after measurements)."""
        with self._lock:
            threads = list(self._threads)
        for counters in threads:
            counters.clear()

    @property
    def num_threads(self) -> int:
        with self._lock:
            return len(self._threads)

    def __repr__(self) -> str:
        agg = self.aggregate()
        return (
            f"ProfileRecorder({self.label!r}, threads={self.num_threads}, "
            f"walk_steps={agg['walk_steps']})"
        )


def aggregate_all() -> dict:
    """Registry snapshot of every live profiled predictor.

    Returns ``{"recorders": {label: counters}, "totals": counters}`` —
    empty when no predictor was compiled with ``profile=True``.
    """
    with _RECORDERS_LOCK:
        recorders = list(_RECORDERS)
    per_recorder: dict[str, dict[str, int]] = {}
    totals = {name: 0 for name in COUNTER_FIELDS}
    for recorder in sorted(recorders, key=lambda r: r.label):
        agg = recorder.aggregate()
        per_recorder[recorder.label] = agg
        for name in COUNTER_FIELDS:
            totals[name] += agg[name]
    return {"recorders": per_recorder, "totals": totals}
