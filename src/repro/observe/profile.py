"""Kernel profiling counters (``Schedule(profile=True)``).

When a schedule enables profiling, codegen emits counter increments into
the generated kernel source: each kernel invocation binds ``_C = _P.local()``
— its calling thread's :class:`ProfileCounters` — and bumps plain integer
fields as the walk executes. ``_P`` is the :class:`ProfileRecorder` living
in the kernel's JIT namespace, owned by the predictor.

Per-thread structs mean the hot path takes no locks: the shared kernel pool
runs row blocks on several threads, each incrementing its own counters, and
:meth:`ProfileRecorder.aggregate` merges them under a lock only when read.

With ``profile=False`` (the default) none of this exists in the generated
source — the instrumentation is compiled *out*, not branched over — so the
production hot path is untouched.

Counter semantics (all element counts are (row, tree) lane elements):

``kernel_calls``       ``predict_block`` invocations
``rows``               rows seen across invocations
``walk_steps``         tile-advance steps executed (one per active lane
                       element per step) — the paper's walk-length metric
``lut_lookups``        child-index LUT lookups (== tile evaluations)
``peeled_steps``       check-free prologue steps (per chunk, per depth)
``unrolled_steps``     unrolled straight-line steps (per chunk, per depth)
``loop_iterations``    guarded-loop iterations (per chunk)
``rows_masked``        lane elements that idled under the mask in
                       non-compacted guarded loops
``scratch_bytes``      bytes of scratch-arena views bound by the kernel
"""

from __future__ import annotations

import itertools
import threading
import weakref

COUNTER_FIELDS = (
    "kernel_calls",
    "rows",
    "walk_steps",
    "lut_lookups",
    "peeled_steps",
    "unrolled_steps",
    "loop_iterations",
    "rows_masked",
    "scratch_bytes",
)

_recorder_ids = itertools.count(1)

#: every live recorder, for the registry's global profile snapshot
_RECORDERS: "weakref.WeakSet[ProfileRecorder]" = weakref.WeakSet()
_RECORDERS_LOCK = threading.Lock()


class ProfileCounters:
    """One thread's counter struct; plain int fields, no locking."""

    __slots__ = COUNTER_FIELDS

    def __init__(self) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        return {name: int(getattr(self, name)) for name in COUNTER_FIELDS}

    def clear(self) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"ProfileCounters({body})"


class ProfileRecorder:
    """Per-predictor registry of per-thread :class:`ProfileCounters`.

    The generated kernel calls :meth:`local` once per invocation; the
    predictor (and the observability registry) read :meth:`aggregate`.
    Live thread structs are tracked as ``(weakref-to-thread, counters)``
    pairs; once a thread exits, its counts are folded into a single
    ``_retired`` total under the lock and the struct is dropped — a
    long-lived server under kernel-pool churn therefore holds at most
    one struct per *live* thread plus one retired total, instead of one
    struct per thread that ever existed.
    """

    def __init__(self, label: str = "") -> None:
        # Labels are always suffixed with a process-unique id so two
        # predictors of the same model never collide in the registry.
        self.label = f"{label or 'profile'}#{next(_recorder_ids)}"
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: live threads only: (weakref to owning thread, its struct)
        self._threads: list[tuple[weakref.ref, ProfileCounters]] = []
        #: folded counts of threads that have exited
        self._retired = ProfileCounters()
        self._retired_threads = 0
        with _RECORDERS_LOCK:
            _RECORDERS.add(self)

    def _prune_locked(self) -> None:
        """Fold exited threads into the retired total (lock must be held).

        A dead thread can no longer increment its struct, so folding is
        race-free; live entries are never touched.
        """
        live: list[tuple[weakref.ref, ProfileCounters]] = []
        for ref, counters in self._threads:
            thread = ref()
            if thread is not None and thread.is_alive():
                live.append((ref, counters))
                continue
            for name in COUNTER_FIELDS:
                setattr(
                    self._retired,
                    name,
                    getattr(self._retired, name) + int(getattr(counters, name)),
                )
            self._retired_threads += 1
        self._threads = live

    def local(self) -> ProfileCounters:
        """The calling thread's counter struct (created on first use)."""
        counters = getattr(self._tls, "counters", None)
        if counters is None:
            counters = ProfileCounters()
            self._tls.counters = counters
            with self._lock:
                self._prune_locked()
                self._threads.append(
                    (weakref.ref(threading.current_thread()), counters)
                )
        return counters

    def aggregate(self) -> dict[str, int]:
        """Sum of retired plus every live thread's counters."""
        with self._lock:
            self._prune_locked()
            total = self._retired.as_dict()
            threads = [counters for _, counters in self._threads]
        for counters in threads:
            for name in COUNTER_FIELDS:
                total[name] += int(getattr(counters, name))
        return total

    def reset(self) -> None:
        """Zero every thread's counters (for before/after measurements).

        The snapshot and the clears happen under one lock hold, so a
        kernel thread registering its fresh struct concurrently either
        lands before the clear (and is zeroed) or after (and starts from
        zero) — no pre-reset counts survive into the after-measurement.
        """
        with self._lock:
            self._retired.clear()
            for _, counters in self._threads:
                counters.clear()

    @property
    def num_threads(self) -> int:
        """Threads that ever contributed counters (live + retired)."""
        with self._lock:
            return len(self._threads) + self._retired_threads

    def __repr__(self) -> str:
        agg = self.aggregate()
        return (
            f"ProfileRecorder({self.label!r}, threads={self.num_threads}, "
            f"walk_steps={agg['walk_steps']})"
        )


def aggregate_all() -> dict:
    """Registry snapshot of every live profiled predictor.

    Returns ``{"recorders": {label: counters}, "totals": counters}`` —
    empty when no predictor was compiled with ``profile=True``.
    """
    with _RECORDERS_LOCK:
        recorders = list(_RECORDERS)
    per_recorder: dict[str, dict[str, int]] = {}
    totals = {name: 0 for name in COUNTER_FIELDS}
    for recorder in sorted(recorders, key=lambda r: r.label):
        agg = recorder.aggregate()
        per_recorder[recorder.label] = agg
        for name in COUNTER_FIELDS:
            totals[name] += agg[name]
    return {"recorders": per_recorder, "totals": totals}
