"""OpenMetrics/Prometheus text exposition of the observability registry.

:func:`render_openmetrics` turns one registry snapshot into a valid
OpenMetrics text document a fleet scraper (Prometheus, the OpenMetrics
reference parser, ``promtool``) can consume directly; ``python -m
repro.observe serve --port N`` serves it over HTTP and ``python -m
repro.observe metrics`` dumps it to stdout.

Naming and label conventions (pinned by tests + the CI schema check):

* every metric is prefixed ``repro_`` and namespaced by subsystem:
  ``repro_serving_*`` (per-server, labelled ``server="..."``),
  ``repro_kernel_pool_*``, ``repro_backend_*``, ``repro_kernel_profile``,
  ``repro_compile_traces`` / ``repro_tune_runs`` / ``repro_request_spans``
  / ``repro_flight_events`` (ring lifetime counters);
* counters carry the mandatory ``_total`` sample suffix, units are spelled
  in the name (``_seconds``, ``_bytes``, ``_rows``);
* histograms follow the bucket convention exactly: cumulative
  ``_bucket{le="..."}`` samples ending in ``le="+Inf"``, plus ``_sum`` and
  ``_count``;
* per-precision footprints are labelled ``precision="int8"`` etc., mirror
  of the ``bytes_by_precision`` serving gauge.

Providers that failed (``"<error: ...>"`` strings in the snapshot) are
skipped, never rendered — a broken gauge cannot corrupt the exposition.

:func:`parse_openmetrics` is a strict structural validator for the format
(used by the tests and the CI ``observe-smoke`` job, where no third-party
parser is available): it checks name/label syntax, TYPE-before-sample
ordering, family contiguity, counter ``_total`` suffixes, histogram
bucket cumulativity and the mandatory ``# EOF`` terminator.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.observe import events as _events
from repro.observe.registry import SCHEMA_VERSION, registry

#: the content type OpenMetrics scrapers negotiate
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: default port of ``python -m repro.observe serve``
DEFAULT_METRICS_PORT = 9464

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: serving counters exported one-to-one from the metrics snapshot
_SERVING_COUNTERS = (
    ("requests", "Predict requests observed."),
    ("rows", "Total rows predicted."),
    ("errors", "Predict requests that raised."),
    ("admission_rejects", "Requests turned away by SLO admission control."),
    ("compiles", "Full pipeline compilations performed."),
    ("cache_hits", "Predictor-cache hits."),
    ("cache_misses", "Predictor-cache misses."),
    ("cache_evictions", "Predictors dropped by the LRU bound."),
    ("fallbacks", "Requests/compiles degraded to a fallback executor."),
    ("batches", "Micro-batches executed."),
)

#: histogram name -> (metric suffix, help) — see ServingMetrics.histograms
_SERVING_HISTOGRAMS = {
    "latency_seconds": "Request latency in seconds.",
    "queue_wait_seconds": "Micro-batch queue wait in seconds.",
    "kernel_seconds": "Kernel execution time per batch in seconds.",
    "batch_rows": "Rows per executed micro-batch.",
}


class MetricFamily:
    """One exposition-format metric family under construction."""

    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name: str, mtype: str, help_text: str) -> None:
        self.name = name
        self.type = mtype
        self.help = help_text
        #: list of (suffix, labels dict, value)
        self.samples: list[tuple[str, dict, float]] = []

    def add(self, value, labels: dict | None = None, suffix: str = "") -> None:
        self.samples.append((suffix, dict(labels or {}), float(value)))

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.type}",
        ]
        for suffix, labels, value in self.samples:
            label_text = ""
            if labels:
                inner = ",".join(
                    f'{key}="{_escape_label(str(val))}"'
                    for key, val in labels.items()
                )
                label_text = "{" + inner + "}"
            lines.append(f"{self.name}{suffix}{label_text} {_format_value(value)}")
        return lines


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _le_text(bound) -> str:
    """Canonical ``le`` label text for a bucket bound."""
    if bound == float("inf") or bound == "+Inf":
        return "+Inf"
    return _format_value(float(bound))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_openmetrics(snapshot: dict | None = None) -> str:
    """The registry snapshot as one OpenMetrics text document."""
    snap = snapshot if snapshot is not None else registry.snapshot()
    families: list[MetricFamily] = []

    schema = MetricFamily(
        "repro_observe_schema_version", "gauge", "Registry snapshot schema version."
    )
    schema.add(snap.get("schema_version", SCHEMA_VERSION))
    families.append(schema)

    families.extend(_kernel_pool_families(snap.get("kernel_pool")))
    families.extend(_ring_families(snap))
    families.extend(_backend_families(snap.get("backends")))
    families.extend(_profile_families(snap.get("profiles")))
    families.extend(_serving_families(snap.get("serving")))
    families.extend(_gauge_families(snap.get("gauges")))

    lines: list[str] = []
    for family in families:
        lines.extend(family.render())
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _kernel_pool_families(pool) -> list[MetricFamily]:
    if not isinstance(pool, dict):
        return []
    out = []
    gauges = MetricFamily(
        "repro_kernel_pool_workers", "gauge", "Workers in the shared kernel pool."
    )
    if _is_number(pool.get("workers")):
        gauges.add(pool["workers"])
        out.append(gauges)
    tasks = MetricFamily(
        "repro_kernel_pool_tasks",
        "counter",
        "Lifetime kernel-pool tasks by state.",
    )
    for state in ("submitted", "completed", "failed", "cancelled"):
        value = pool.get(f"tasks_{state}")
        if _is_number(value):
            tasks.add(value, {"state": state}, suffix="_total")
    if tasks.samples:
        out.append(tasks)
    if _is_number(pool.get("tasks_time_total_s")):
        seconds = MetricFamily(
            "repro_kernel_pool_task_seconds",
            "counter",
            "Total seconds spent inside timed kernel-pool tasks.",
        )
        seconds.add(pool["tasks_time_total_s"], suffix="_total")
        out.append(seconds)
    if _is_number(pool.get("tasks_time_max_s")):
        longest = MetricFamily(
            "repro_kernel_pool_task_max_seconds",
            "gauge",
            "Longest timed kernel-pool task in seconds.",
        )
        longest.add(pool["tasks_time_max_s"])
        out.append(longest)
    return out


def _ring_families(snap: dict) -> list[MetricFamily]:
    out = []
    for key, name, help_text in (
        ("traces", "repro_compile_traces", "Compilation traces recorded."),
        ("tunes", "repro_tune_runs", "Autotune runs recorded."),
        ("spans", "repro_request_spans", "Request span trees recorded."),
        ("events", "repro_flight_events", "Flight-recorder events recorded."),
    ):
        ring = snap.get(key)
        if isinstance(ring, dict) and _is_number(ring.get("recorded")):
            family = MetricFamily(name, "counter", help_text)
            family.add(ring["recorded"], suffix="_total")
            out.append(family)
    events_ring = snap.get("events")
    if isinstance(events_ring, dict) and isinstance(
        events_ring.get("by_kind"), dict
    ):
        kept = MetricFamily(
            "repro_flight_events_kept",
            "gauge",
            "Flight-recorder events currently kept, by kind.",
        )
        for kind, count in sorted(events_ring["by_kind"].items()):
            if _is_number(count):
                kept.add(count, {"kind": kind})
        if kept.samples:
            out.append(kept)
    return out


def _backend_families(backends) -> list[MetricFamily]:
    if not isinstance(backends, dict):
        return []
    family = MetricFamily(
        "repro_backend_events",
        "counter",
        "Backend registry lifetime counters (compiles, artifact ops).",
    )
    for backend in sorted(backends):
        counters = backends[backend]
        if not isinstance(counters, dict):
            continue
        for event in sorted(counters):
            if _is_number(counters[event]):
                family.add(
                    counters[event],
                    {"backend": backend, "event": event},
                    suffix="_total",
                )
    return [family] if family.samples else []


def _profile_families(profiles) -> list[MetricFamily]:
    if not isinstance(profiles, dict) or not isinstance(
        profiles.get("totals"), dict
    ):
        return []
    family = MetricFamily(
        "repro_kernel_profile",
        "counter",
        "Aggregated kernel profiling counters across live recorders.",
    )
    for counter in sorted(profiles["totals"]):
        value = profiles["totals"][counter]
        if _is_number(value):
            family.add(value, {"counter": counter}, suffix="_total")
    return [family] if family.samples else []


def _serving_families(serving) -> list[MetricFamily]:
    if not isinstance(serving, dict):
        return []
    servers = {
        name: snap
        for name, snap in sorted(serving.items())
        if isinstance(snap, dict)  # failed providers render nothing
    }
    out: list[MetricFamily] = []

    for key, help_text in _SERVING_COUNTERS:
        family = MetricFamily(f"repro_serving_{key}", "counter", help_text)
        for name, snap in servers.items():
            if _is_number(snap.get(key)):
                family.add(snap[key], {"server": name}, suffix="_total")
        if family.samples:
            out.append(family)

    resident = MetricFamily(
        "repro_serving_models", "gauge", "Models currently registered."
    )
    predictors = MetricFamily(
        "repro_serving_predictors_resident",
        "gauge",
        "Compiled predictors resident in the cache.",
    )
    for name, snap in servers.items():
        if _is_number(snap.get("models_registered")):
            resident.add(snap["models_registered"], {"server": name})
        if _is_number(snap.get("predictors_resident")):
            predictors.add(snap["predictors_resident"], {"server": name})
    out.extend(f for f in (resident, predictors) if f.samples)

    quantiles = MetricFamily(
        "repro_serving_latency_quantile_seconds",
        "gauge",
        "Nearest-rank latency percentiles over the sliding window.",
    )
    for name, snap in servers.items():
        latency = snap.get("latency")
        if not isinstance(latency, dict):
            continue
        for key, quantile in (
            ("p50", "0.5"),
            ("p90", "0.9"),
            ("p99", "0.99"),
            ("p999", "0.999"),
        ):
            if _is_number(latency.get(key)):
                quantiles.add(
                    latency[key], {"server": name, "quantile": quantile}
                )
    if quantiles.samples:
        out.append(quantiles)

    for hist_key, help_text in _SERVING_HISTOGRAMS.items():
        family = MetricFamily(
            f"repro_serving_{hist_key}", "histogram", help_text
        )
        for name, snap in servers.items():
            hists = snap.get("histograms")
            if not isinstance(hists, dict):
                continue
            hist = hists.get(hist_key)
            if not isinstance(hist, dict):
                continue
            labels = {"server": name}
            cumulative = 0.0
            for bound, count in hist.get("buckets", {}).items():
                if not _is_number(count):
                    continue
                cumulative = count
                family.add(
                    count,
                    {**labels, "le": _le_text(bound)},
                    suffix="_bucket",
                )
            family.add(hist.get("count", cumulative), labels, suffix="_count")
            family.add(hist.get("sum", 0.0), labels, suffix="_sum")
        if family.samples:
            out.append(family)

    tunes = MetricFamily(
        "repro_serving_tunes",
        "counter",
        "Background autotune lifecycle events.",
    )
    swaps = MetricFamily(
        "repro_serving_hot_swaps",
        "counter",
        "Sessions atomically switched to a tuned predictor.",
    )
    for name, snap in servers.items():
        tuning = snap.get("tuning")
        if not isinstance(tuning, dict):
            continue
        for outcome in ("started", "completed", "failed", "cache_hits"):
            if _is_number(tuning.get(outcome)):
                tunes.add(
                    tuning[outcome],
                    {"server": name, "outcome": outcome},
                    suffix="_total",
                )
        if _is_number(tuning.get("hot_swaps")):
            swaps.add(tuning["hot_swaps"], {"server": name}, suffix="_total")
    out.extend(f for f in (tunes, swaps) if f.samples)

    precision_families = {
        "predictors": MetricFamily(
            "repro_serving_precision_predictors",
            "gauge",
            "Resident predictors by schedule precision.",
        ),
        "model_bytes": MetricFamily(
            "repro_serving_precision_model_bytes",
            "gauge",
            "Total model buffer bytes by schedule precision.",
        ),
        "param_bytes": MetricFamily(
            "repro_serving_precision_param_bytes",
            "gauge",
            "Threshold/leaf parameter bytes by schedule precision.",
        ),
        "scratch_bytes": MetricFamily(
            "repro_serving_precision_scratch_bytes",
            "gauge",
            "Scratch arena bytes by schedule precision.",
        ),
    }
    for name, snap in servers.items():
        runtime = snap.get("runtime")
        if not isinstance(runtime, dict):
            continue
        by_precision = runtime.get("bytes_by_precision")
        if not isinstance(by_precision, dict):
            continue
        for precision, slot in sorted(by_precision.items()):
            if not isinstance(slot, dict):
                continue
            for key, family in precision_families.items():
                if _is_number(slot.get(key)):
                    family.add(
                        slot[key], {"server": name, "precision": precision}
                    )
    out.extend(f for f in precision_families.values() if f.samples)

    workers_alive = MetricFamily(
        "repro_serving_shard_worker_alive",
        "gauge",
        "Liveness of each shard worker process (1 = alive).",
    )
    workers_dispatched = MetricFamily(
        "repro_serving_shard_worker_dispatched",
        "counter",
        "Requests scattered to each shard worker.",
    )
    workers_respawns = MetricFamily(
        "repro_serving_shard_worker_respawns",
        "counter",
        "Times each shard worker was respawned after dying.",
    )
    for name, snap in servers.items():
        runtime = snap.get("runtime")
        if not isinstance(runtime, dict):
            continue
        sharded = runtime.get("workers")
        if not isinstance(sharded, dict):
            continue
        for model, stats in sorted(sharded.items()):
            if not isinstance(stats, dict):
                continue
            model_workers = stats.get("workers")
            if not isinstance(model_workers, dict):
                continue
            for worker, info in sorted(model_workers.items()):
                if not isinstance(info, dict):
                    continue
                labels = {"server": name, "model": model, "worker": str(worker)}
                workers_alive.add(1.0 if info.get("alive") else 0.0, labels)
                if _is_number(info.get("dispatched")):
                    workers_dispatched.add(
                        info["dispatched"], labels, suffix="_total"
                    )
                if _is_number(info.get("respawns")):
                    workers_respawns.add(
                        info["respawns"], labels, suffix="_total"
                    )
    out.extend(
        f
        for f in (workers_alive, workers_dispatched, workers_respawns)
        if f.samples
    )
    return out


def _gauge_families(gauges) -> list[MetricFamily]:
    if not isinstance(gauges, dict):
        return []
    family = MetricFamily(
        "repro_gauge", "gauge", "Ad-hoc registered gauges (numeric only)."
    )
    for name in sorted(gauges):
        if _is_number(gauges[name]):
            family.add(gauges[name], {"name": name})
    return [family] if family.samples else []


# ----------------------------------------------------------------------
# Parsing / validation
# ----------------------------------------------------------------------
_SUFFIXES = {
    "counter": ("_total", "_created"),
    "gauge": ("",),
    "histogram": ("_bucket", "_count", "_sum", "_created"),
    "summary": ("", "_count", "_sum", "_created"),
    "info": ("_info",),
    "unknown": ("",),
}


def parse_openmetrics(text: str) -> dict:
    """Strictly parse an OpenMetrics text document.

    Returns ``{family name: {"type", "help", "samples": [(suffix, labels,
    value)]}}``; raises :class:`ValueError` with a line-numbered message on
    the first structural violation. Covers the rules our exporter (and any
    honest scraper) depends on: syntax, TYPE-before-sample ordering, family
    contiguity, counter ``_total`` suffixes, cumulative histogram buckets
    with a final ``le="+Inf"`` and the ``# EOF`` terminator.
    """
    families: dict[str, dict] = {}
    finished: set[str] = set()
    current: str | None = None
    saw_eof = False
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines, start=1):
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            current = _parse_comment(line, lineno, families, finished, current)
            continue
        if not line.strip():
            raise ValueError(f"line {lineno}: blank lines are not allowed")
        current = _parse_sample(line, lineno, families, finished, current)
    if not saw_eof:
        raise ValueError("document does not end with # EOF")
    for name, family in families.items():
        if family["type"] == "histogram":
            _check_histogram(name, family)
        if family["type"] == "counter":
            for suffix, _labels, value in family["samples"]:
                if value < 0:
                    raise ValueError(f"counter {name} has negative sample")
    return families


def _parse_comment(line, lineno, families, finished, current):
    parts = line.split(" ", 3)
    if len(parts) < 3 or parts[0] != "#" or parts[1] not in ("HELP", "TYPE"):
        raise ValueError(f"line {lineno}: malformed comment {line!r}")
    keyword, name = parts[1], parts[2]
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(f"line {lineno}: invalid metric name {name!r}")
    if name in finished and name != current:
        raise ValueError(f"line {lineno}: family {name} is interleaved")
    if name not in families:
        if current is not None:
            finished.add(current)
        families[name] = {"type": "unknown", "help": "", "samples": []}
    if keyword == "TYPE":
        mtype = parts[3] if len(parts) > 3 else ""
        if families[name]["samples"]:
            raise ValueError(
                f"line {lineno}: TYPE for {name} after its samples"
            )
        if mtype not in _SUFFIXES:
            raise ValueError(f"line {lineno}: unknown type {mtype!r}")
        families[name]["type"] = mtype
    else:
        families[name]["help"] = parts[3] if len(parts) > 3 else ""
    return name


def _parse_sample(line, lineno, families, finished, current):
    name_end = len(line)
    for i, ch in enumerate(line):
        if ch in "{ ":
            name_end = i
            break
    sample_name = line[:name_end]
    if not _METRIC_NAME_RE.match(sample_name):
        raise ValueError(f"line {lineno}: invalid sample name {sample_name!r}")
    rest = line[name_end:]
    labels: dict[str, str] = {}
    if rest.startswith("{"):
        labels, rest = _parse_labels(rest, lineno)
    if not rest.startswith(" "):
        raise ValueError(f"line {lineno}: missing value separator")
    value_text = rest.strip().split(" ")[0]
    try:
        value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
    except ValueError:
        raise ValueError(
            f"line {lineno}: unparseable value {value_text!r}"
        ) from None

    family_name, suffix = _resolve_family(sample_name, families)
    if family_name is None:
        raise ValueError(
            f"line {lineno}: sample {sample_name!r} has no TYPE declaration"
        )
    if family_name in finished and family_name != current:
        raise ValueError(f"line {lineno}: family {family_name} is interleaved")
    mtype = families[family_name]["type"]
    if suffix not in _SUFFIXES.get(mtype, ("",)):
        raise ValueError(
            f"line {lineno}: suffix {suffix!r} invalid for {mtype} "
            f"family {family_name}"
        )
    families[family_name]["samples"].append((suffix, labels, value))
    if current is not None and current != family_name:
        finished.add(current)
    return family_name


def _resolve_family(sample_name: str, families: dict):
    """Longest declared family name this sample (with suffix) belongs to."""
    candidates = []
    for family_name, family in families.items():
        if not sample_name.startswith(family_name):
            continue
        suffix = sample_name[len(family_name):]
        if suffix in _SUFFIXES.get(family["type"], ("",)):
            candidates.append((len(family_name), family_name, suffix))
    if not candidates:
        return None, None
    _len, family_name, suffix = max(candidates)
    return family_name, suffix


def _parse_labels(text: str, lineno: int) -> tuple[dict, str]:
    """Parse ``{name="value",...}``; returns (labels, remaining text)."""
    labels: dict[str, str] = {}
    i = 1  # past '{'
    while True:
        if i >= len(text):
            raise ValueError(f"line {lineno}: unterminated label set")
        if text[i] == "}":
            return labels, text[i + 1:]
        j = i
        while j < len(text) and text[j] not in "=}":
            j += 1
        label_name = text[i:j]
        if not _LABEL_NAME_RE.match(label_name):
            raise ValueError(f"line {lineno}: invalid label name {label_name!r}")
        if j >= len(text) or text[j] != "=" or text[j + 1: j + 2] != '"':
            raise ValueError(f"line {lineno}: malformed label value")
        j += 2
        value_chars: list[str] = []
        while j < len(text) and text[j] != '"':
            if text[j] == "\\":
                j += 1
                if j >= len(text):
                    raise ValueError(f"line {lineno}: dangling escape")
                value_chars.append(
                    {"n": "\n", '"': '"', "\\": "\\"}.get(text[j], text[j])
                )
            else:
                value_chars.append(text[j])
            j += 1
        if j >= len(text):
            raise ValueError(f"line {lineno}: unterminated label value")
        if label_name in labels:
            raise ValueError(f"line {lineno}: duplicate label {label_name!r}")
        labels[label_name] = "".join(value_chars)
        j += 1  # past closing quote
        if j < len(text) and text[j] == ",":
            j += 1
        i = j


def _check_histogram(name: str, family: dict) -> None:
    by_series: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}
    for suffix, labels, value in family["samples"]:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        if suffix == "_bucket":
            le = labels.get("le")
            if le is None:
                raise ValueError(f"histogram {name} bucket without le label")
            by_series.setdefault(key, []).append(
                (float(le.replace("+Inf", "inf")), value)
            )
        elif suffix == "_count":
            counts[key] = value
    for key, buckets in by_series.items():
        bounds = [b for b, _ in buckets]
        values = [v for _, v in buckets]
        if bounds != sorted(bounds):
            raise ValueError(f"histogram {name} buckets out of le order")
        if bounds[-1] != float("inf"):
            raise ValueError(f"histogram {name} is missing the +Inf bucket")
        if values != sorted(values):
            raise ValueError(f"histogram {name} buckets are not cumulative")
        if key in counts and values[-1] != counts[key]:
            raise ValueError(
                f"histogram {name} +Inf bucket disagrees with _count"
            )


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------
class _MetricsHandler(BaseHTTPRequestHandler):
    """``/metrics`` (OpenMetrics), ``/snapshot`` (JSON), ``/events`` (NDJSON)."""

    server_version = "repro-observe"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path in ("/", "/metrics"):
                body = render_openmetrics().encode("utf-8")
                ctype = OPENMETRICS_CONTENT_TYPE
            elif path == "/snapshot":
                body = (registry.export_json(indent=2) + "\n").encode("utf-8")
                ctype = "application/json; charset=utf-8"
            elif path == "/events":
                lines = [
                    json.dumps(event) for event in _events.recorder.tail(n=10**9)
                ]
                body = ("\n".join(lines) + "\n").encode("utf-8")
                ctype = "application/x-ndjson; charset=utf-8"
            else:
                self.send_error(404, "unknown path (try /metrics)")
                return
        except Exception as exc:  # noqa: BLE001 - a scrape must not kill the server
            self.send_error(500, f"snapshot failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # noqa: D102 - silence per-request logs
        pass


def start_metrics_server(
    port: int = DEFAULT_METRICS_PORT, addr: str = "127.0.0.1"
) -> ThreadingHTTPServer:
    """Serve the registry over HTTP on a daemon thread; returns the server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address[1]`` (tests do). Call ``server.shutdown()``
    to stop.
    """
    server = ThreadingHTTPServer((addr, port), _MetricsHandler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-http", daemon=True
    )
    thread.start()
    return server
