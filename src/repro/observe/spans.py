"""Request-level tracing for the serving layer.

Compilation traces (:mod:`repro.observe.trace`) answer *why is this model
slow to build*; request spans answer *where does each request spend its
time once the model is serving*. Every sampled ``ModelServer.predict``
gets a :class:`RequestTrace` — one root span with a contiguous sequence of
stage spans covering the whole request path:

``admission``
    input coercion + NaN validation on the caller thread.
``queue_wait``
    from micro-batch enqueue until the batcher worker picks the request
    up (absent on unbatched sessions).
``assemble``
    stacking the coalesced requests into one contiguous batch (absent on
    unbatched sessions).
``kernel``
    the compiled kernel (or fallback executor) running the batch.
``aggregate``
    result scatter, future wake-up and serving bookkeeping back on the
    caller thread.

Stages are recorded as *marks*: each stage ends exactly where the next
one begins, so the stage durations sum to the root span's duration by
construction — a span tree can never silently lose request time to an
uninstrumented gap.

Sampling and overhead
---------------------
Tracing is opt-in per server via ``ServerConfig(trace_sample=...)``.
:class:`RequestTracer` samples deterministically (every request at 1.0,
an evenly spaced stride below it), so a rate of ``0.01`` traces one
request in a hundred regardless of traffic shape. With ``trace_sample=0``
the server wires **no tracer at all** into its sessions — the request
path pays a single ``is None`` test and the compiled kernels are
byte-identical (tracing never touches the compiler), which is the
zero-overhead-when-off guarantee ``benchmarks/test_bench_observe.py``
pins.

Completed traces land in a process-wide bounded :class:`SpanRing`
(:data:`RING`) that the observability registry snapshots under the
``spans`` key; the ring holds plain dicts, so recording is one short
lock-guarded append per *sampled* request.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

from repro.observe.trace import jsonable

#: completed request traces kept for the snapshot
SPAN_RING_CAPACITY = 256

_trace_ids = itertools.count(1)


def new_trace_id() -> str:
    """A short process-unique request id (monotonic, cheap to mint)."""
    return f"req-{next(_trace_ids):08x}"


class RequestTrace:
    """The span tree of one serving request.

    The root span starts at construction (or the caller-supplied
    ``started_s`` so it aligns with the latency the serving metrics
    record) and every :meth:`stage` call closes the stage running since
    the previous mark. Stage order is the order of the marks; stages are
    contiguous by construction.

    A trace is touched by at most one thread at a time (caller →
    batcher worker → caller, each hand-off synchronized by the request
    future), so it needs no lock of its own.
    """

    __slots__ = (
        "trace_id",
        "model",
        "rows",
        "started_s",
        "wall_time",
        "duration_s",
        "error",
        "stages",
        "_mark",
    )

    def __init__(
        self, model: str | None = None, rows: int = 0, started_s: float | None = None
    ) -> None:
        self.trace_id = new_trace_id()
        self.model = model
        self.rows = int(rows)
        self.started_s = time.perf_counter() if started_s is None else started_s
        self.wall_time = time.time()
        self.duration_s = 0.0
        self.error: str | None = None
        #: list of (name, start offset seconds, duration seconds)
        self.stages: list[tuple[str, float, float]] = []
        self._mark = self.started_s

    def stage(self, name: str, now: float | None = None) -> None:
        """Close the stage running since the previous mark as ``name``."""
        if now is None:
            now = time.perf_counter()
        self.stages.append((name, self._mark - self.started_s, now - self._mark))
        self._mark = now

    def finish(self, error: str | None = None) -> "RequestTrace":
        """Seal the root span; its duration is the last mark (or now).

        Using the last stage's end rather than a fresh clock read keeps
        the invariant exact: ``sum(stage durations) == duration_s``
        whenever at least one stage was recorded.
        """
        end = self._mark if self.stages else time.perf_counter()
        self.duration_s = end - self.started_s
        self.error = error
        return self

    def stage_seconds(self) -> dict[str, float]:
        """Total seconds per stage name (stages may repeat)."""
        out: dict[str, float] = {}
        for name, _start, duration in self.stages:
            out[name] = out.get(name, 0.0) + duration
        return out

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "model": self.model,
            "rows": self.rows,
            "ts": self.wall_time,
            "duration_ms": round(self.duration_s * 1e3, 6),
            "error": self.error,
            "stages": [
                {
                    "name": name,
                    "start_ms": round(start * 1e3, 6),
                    "duration_ms": round(duration * 1e3, 6),
                }
                for name, start, duration in self.stages
            ],
        }

    def __repr__(self) -> str:
        names = "→".join(name for name, _s, _d in self.stages) or "<no stages>"
        return (
            f"RequestTrace({self.trace_id}, model={self.model!r}, "
            f"rows={self.rows}, {self.duration_s * 1e3:.3f}ms, {names})"
        )


class SpanRing:
    """Bounded, lock-cheap ring of completed request traces (as dicts)."""

    def __init__(self, capacity: int = SPAN_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("span ring capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, trace: RequestTrace) -> None:
        snapshot = jsonable(trace.to_dict())
        with self._lock:
            self._ring.append(snapshot)
            self._recorded += 1

    def snapshot(self) -> dict:
        with self._lock:
            recent = list(self._ring)
            recorded = self._recorded
        return {"recorded": recorded, "kept": len(recent), "recent": recent}

    def recent(self, n: int | None = None) -> list[dict]:
        with self._lock:
            items = list(self._ring)
        return items if n is None else items[-n:]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SpanRing(kept={len(self._ring)}/{self.capacity}, "
                f"recorded={self._recorded})"
            )


#: the process-wide ring the observability registry snapshots
RING = SpanRing()


class RequestTracer:
    """Per-server sampling policy over one span ring.

    ``sample`` is the fraction of requests traced. Sampling is a
    deterministic stride over a request counter — ``int((i + 1) * s) >
    int(i * s)`` — so the traced subset is evenly spaced (no RNG on the
    request path, reproducible in tests). ``sample=1.0`` traces every
    request; servers with ``sample=0`` should not construct a tracer at
    all (the zero-overhead contract).
    """

    def __init__(
        self, sample: float, ring: SpanRing | None = None
    ) -> None:
        if not (0.0 < sample <= 1.0):
            raise ValueError(
                f"trace sample rate must be in (0, 1], got {sample!r}"
            )
        self.sample = float(sample)
        self.ring = ring if ring is not None else RING
        self._seen = itertools.count()
        self._sampled = 0
        self._lock = threading.Lock()

    def maybe_trace(
        self, model: str | None = None, started_s: float | None = None
    ) -> RequestTrace | None:
        """A new :class:`RequestTrace` when this request is sampled."""
        i = next(self._seen)  # itertools.count is atomic under the GIL
        if self.sample < 1.0 and not (
            int((i + 1) * self.sample) > int(i * self.sample)
        ):
            return None
        with self._lock:
            self._sampled += 1
        return RequestTrace(model=model, started_s=started_s)

    def record(self, trace: RequestTrace) -> None:
        """Push a finished trace into the ring."""
        self.ring.record(trace)

    def stats(self) -> dict:
        with self._lock:
            sampled = self._sampled
        return {"sample": self.sample, "sampled": sampled}

    def __repr__(self) -> str:
        return f"RequestTracer(sample={self.sample}, {self.stats()['sampled']} sampled)"
