"""Unified observability: pipeline tracing, IR statistics, kernel profiling.

The paper's central claim is that *compiler decisions* explain the
speedups; this package makes those decisions observable at every level:

* :class:`~repro.observe.trace.CompilationTrace` — nested timed spans over
  the whole lowering pipeline (HIR tiling/padding/reorder, MIR passes, LIR
  lowering, codegen, JIT), attached to every compiled predictor.
* :mod:`~repro.observe.stats` — structured per-pass IR statistics
  (tile-shape histograms, padding overhead, loop structure, buffer sizes)
  emitted into the matching trace spans.
* :class:`~repro.observe.profile.ProfileRecorder` — kernel profiling
  counters (walk steps, LUT lookups, masked lanes, scratch bytes) that
  ``Schedule(profile=True)`` compiles *into* the generated source; with
  profiling off the instrumentation does not exist in the kernel at all.
* :data:`~repro.observe.registry.registry` — the process-wide registry
  aggregating traces, profiles, serving metrics and kernel-pool gauges
  behind one ``snapshot()`` / ``export_json()``; dump it with
  ``python -m repro.observe``.
* :class:`~repro.observe.spans.RequestTracer` — sampled request span
  trees from the serving layer (admission → queue wait → batch assembly →
  kernel → aggregation), kept in a bounded ring (:data:`spans.RING`).
* :class:`~repro.observe.events.FlightRecorder` — a bounded structured
  event log of notable serving moments (compiles, hot swaps, tune
  outcomes, fallbacks, errors, slow requests); tail it live with
  ``python -m repro.observe tail --follow``.
* :func:`~repro.observe.export.render_openmetrics` — the registry
  snapshot as an OpenMetrics/Prometheus exposition document; serve it
  with ``python -m repro.observe serve --port 9464``.
* :func:`explain` — the per-schedule decision report.

Quickstart::

    from repro import compile_model, Schedule
    from repro.observe import explain, registry

    predictor = compile_model(forest, Schedule(tile_size=8, profile=True))
    print(predictor.trace.report())          # per-pass wall time + stats
    predictor.predict(rows)
    print(predictor.profile_counters())      # walk steps actually executed
    print(explain(forest, predictor=predictor))
    print(registry.export_json(indent=2))    # everything, as one document
"""

from repro.observe.events import FlightRecorder, recorder
from repro.observe.export import (
    parse_openmetrics,
    render_openmetrics,
    start_metrics_server,
)
from repro.observe.profile import (
    COUNTER_FIELDS,
    ProfileCounters,
    ProfileRecorder,
    aggregate_all,
)
from repro.observe.registry import SNAPSHOT_KEYS, Registry, registry
from repro.observe.spans import RequestTrace, RequestTracer, SpanRing
from repro.observe.stats import hir_stats, lir_stats, mir_stats
from repro.observe.trace import CompilationTrace, Span, jsonable

__all__ = [
    "COUNTER_FIELDS",
    "CompilationTrace",
    "FlightRecorder",
    "ProfileCounters",
    "ProfileRecorder",
    "Registry",
    "RequestTrace",
    "RequestTracer",
    "SNAPSHOT_KEYS",
    "Span",
    "SpanRing",
    "aggregate_all",
    "explain",
    "export_json",
    "hir_stats",
    "jsonable",
    "lir_stats",
    "mir_stats",
    "parse_openmetrics",
    "recorder",
    "registry",
    "render_openmetrics",
    "snapshot",
    "start_metrics_server",
]


def explain(forest, schedule=None, predictor=None) -> str:
    """Per-schedule decision report (see :mod:`repro.observe.explain`).

    Imported lazily: the report compiles through :func:`repro.api`, which
    itself imports this package for tracing.
    """
    from repro.observe.explain import explain as _explain

    return _explain(forest, schedule, predictor=predictor)


def snapshot() -> dict:
    """Shorthand for ``registry.snapshot()``."""
    return registry.snapshot()


def export_json(indent: int | None = None) -> str:
    """Shorthand for ``registry.export_json()``."""
    return registry.export_json(indent=indent)
