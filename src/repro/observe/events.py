"""The serving flight recorder: a bounded structured event log.

Metrics answer *how much*, spans answer *where* — the flight recorder
answers *what happened*: a process-wide, bounded, append-only log of the
discrete events that explain a deployment's behaviour after the fact:

``compile``       a predictor was actually compiled (cache misses only)
``fallback``      a compile failed and the session degraded to the
                  interpreter / reference executor
``hot_swap``      a session atomically switched to a tuned predictor
``tune``          an autotune run finished (winner, budget outcome)
``tune_failed``   a background tune died without poisoning serving
``pgo_swap``      a profile-guided recompile swapped in a hot/cold split
                  kernel (measured cutoff, timings, prefix-buffer shrink)
``pgo_failed``    a PGO cycle died without touching the serving path
``error``         a predict request raised
``slow_request``  a request exceeded the server's latency threshold
                  (``ServerConfig(slow_request_s=...)``)
``shard_plan``    a forest was split for the multi-process sharded tier
                  (shard boundaries, worker count, combiner)
``worker_spawn``  a shard worker process started (initial spawn or
                  respawn after death)
``worker_exit``   a shard worker exited during pool shutdown
``worker_dead``   a worker died unexpectedly — a shard worker found dead
                  at dispatch time, or a micro-batcher thread killed by
                  an escaped exception (its pending futures were failed)
``admission_reject``  the SLO front end shed a request before queueing
                  (``max_inflight`` or live p99 over target)

Every event is a plain dict — ``{"seq", "ts", "kind", ...fields}`` — kept
in a bounded deque (old events fall off; ``recorded`` keeps the lifetime
count honest). Recording is one lock-guarded append; events are rare
(compiles, swaps, failures) or threshold-gated (slow requests), so the
recorder costs nothing on the healthy hot path.

For live debugging the recorder can mirror every event to a JSON-lines
file (:meth:`FlightRecorder.attach_file`, or
``ServerConfig(flight_log=...)``); ``python -m repro.observe tail
--follow <file>`` tails it like a flight-deck console. The observability
registry snapshots the recorder under the ``events`` top-level key.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import IO, Iterable

from repro.observe.trace import jsonable

#: recent events kept in memory for the snapshot
EVENT_RING_CAPACITY = 512

#: environment variable naming a default JSONL mirror file
FLIGHT_LOG_ENV = "REPRO_FLIGHT_LOG"


class FlightRecorder:
    """Bounded structured event log with an optional JSONL mirror file."""

    def __init__(self, capacity: int = EVENT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._recorded = 0
        self._seq = itertools.count(1)
        self._file: IO[str] | None = None
        self._file_path: str | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind: str, **fields) -> dict:
        """Append one event; returns the recorded dict (already jsonable)."""
        event = {
            "seq": next(self._seq),
            "ts": round(time.time(), 6),
            "kind": str(kind),
            **jsonable(fields),
        }
        with self._lock:
            self._ring.append(event)
            self._recorded += 1
            fh = self._file
            if fh is not None:
                try:
                    fh.write(json.dumps(event) + "\n")
                    fh.flush()
                except OSError:
                    # A torn mirror file must never take recording down;
                    # drop the sink and keep the in-memory ring authoritative.
                    self._file = None
                    self._file_path = None
        return event

    # ------------------------------------------------------------------
    # JSONL mirror
    # ------------------------------------------------------------------
    def attach_file(self, path: str) -> None:
        """Mirror every subsequent event to ``path`` (JSON lines, append)."""
        fh = open(path, "a", encoding="utf-8")
        with self._lock:
            old, self._file = self._file, fh
            self._file_path = path
        if old is not None:
            old.close()

    def detach_file(self) -> None:
        with self._lock:
            fh, self._file = self._file, None
            self._file_path = None
        if fh is not None:
            fh.close()

    @property
    def file_path(self) -> str | None:
        with self._lock:
            return self._file_path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def tail(self, n: int = 20, kind: str | None = None) -> list[dict]:
        """The most recent ``n`` events (optionally of one kind)."""
        with self._lock:
            events: Iterable[dict] = list(self._ring)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        return list(events)[-n:]

    def counts(self) -> dict[str, int]:
        """Events currently in the ring, bucketed by kind."""
        with self._lock:
            events = list(self._ring)
        out: dict[str, int] = {}
        for event in events:
            out[event["kind"]] = out.get(event["kind"], 0) + 1
        return out

    def snapshot(self) -> dict:
        with self._lock:
            recent = list(self._ring)
            recorded = self._recorded
            path = self._file_path
        counts: dict[str, int] = {}
        for event in recent:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return {
            "recorded": recorded,
            "kept": len(recent),
            "by_kind": counts,
            "file": path,
            "recent": recent,
        }

    def dump_jsonl(self, target) -> int:
        """Write every kept event to ``target`` (path or file object);
        returns the number of lines written."""
        with self._lock:
            events = list(self._ring)
        if hasattr(target, "write"):
            for event in events:
                target.write(json.dumps(event) + "\n")
        else:
            with open(target, "w", encoding="utf-8") as fh:
                for event in events:
                    fh.write(json.dumps(event) + "\n")
        return len(events)

    def clear(self) -> None:
        """Drop kept events and lifetime counters (mirror file stays)."""
        with self._lock:
            self._ring.clear()
            self._recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"FlightRecorder(kept={snap['kept']}/{self.capacity}, "
            f"recorded={snap['recorded']}, file={snap['file']!r})"
        )


#: the process-wide recorder every subsystem reports into
recorder = FlightRecorder()


def record(kind: str, **fields) -> dict:
    """Record one event into the process-wide :data:`recorder`."""
    return recorder.record(kind, **fields)


def format_event(event: dict) -> str:
    """One human-readable line per event (the ``tail`` CLI rendering)."""
    ts = time.strftime("%H:%M:%S", time.localtime(event.get("ts", 0.0)))
    kind = event.get("kind", "?")
    extras = " ".join(
        f"{key}={value}"
        for key, value in event.items()
        if key not in ("seq", "ts", "kind")
    )
    return f"{ts} #{event.get('seq', '?'):>5} {kind:<14s} {extras}"
