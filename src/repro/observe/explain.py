"""``explain(model, schedule)``: the per-schedule decision report.

Compiles the model (through the normal pipeline, so every number reflects
what the compiler actually did), then renders the trace's per-pass timings
and IR statistics as a readable report: what the tiling produced, what
padding cost, how the loop nest was rewritten, and what the buffers weigh.
"""

from __future__ import annotations

from repro.observe.stats import hir_stats  # noqa: F401  (re-exported for callers)


def explain(forest, schedule=None, predictor=None) -> str:
    """Explain the lowering decisions for ``forest`` under ``schedule``.

    Pass an already-compiled ``predictor`` to report on it without
    recompiling (its attached trace is used); otherwise the model is
    compiled here. Returns the report as a string.
    """
    from repro.api import compile_model

    if predictor is None:
        predictor = compile_model(forest, schedule)
    trace = getattr(predictor, "trace", None)
    lines: list[str] = []
    lines.append("=" * 70)
    lines.append("schedule decision report")
    lines.append("=" * 70)
    lines.append(f"schedule: {predictor.schedule}")
    lines.append("")
    if trace is None:
        lines.append("(no compilation trace attached to this predictor)")
        return "\n".join(lines)

    lines.append("-- pipeline timing " + "-" * 51)
    lines.append(trace.report())
    lines.append("")

    tiling = _span_stats(trace, "tiling")
    if tiling:
        lines.append("-- tiling " + "-" * 60)
        before = tiling["tree_depth_before"]
        after = tiling["leaf_tile_depth_after"]
        lines.append(
            f"tile_size={tiling['tile_size']} tiling={tiling['tiling']} "
            f"trees={tiling['num_trees']}"
        )
        lines.append(
            f"walk depth: {before['mean']:.2f} node levels -> "
            f"{after['mean']:.2f} tile levels (mean); "
            f"max {before['max']:.0f} -> {after['max']:.0f}"
        )
        lines.append(
            f"tiles/tree mean {tiling['tiles_per_tree']['mean']:.1f}, "
            f"nodes/tile mean {tiling['nodes_per_tile']['mean']:.2f} "
            f"(utilization {tiling['nodes_per_tile']['mean'] / max(1, tiling['tile_size']):.0%})"
        )
        hist = sorted(
            tiling["tile_shape_hist"].items(), key=lambda kv: -kv[1]
        )
        lines.append(f"distinct tile shapes: {tiling['distinct_shapes']}")
        for label, count in hist[:8]:
            lines.append(f"  {label:<40s} x{count}")
        if len(hist) > 8:
            lines.append(f"  ... and {len(hist) - 8} more shapes")
        lines.append("")

    padding = _span_stats(trace, "padding")
    if padding:
        lines.append("-- padding " + "-" * 59)
        lines.append(
            f"enabled={padding['enabled']} dummy tiles {padding['dummy_tiles']}"
            f"/{padding['total_tiles']} ({padding['dummy_fraction']:.1%} overhead), "
            f"{padding['trees_padded']} trees padded, "
            f"{padding['trees_uniform_depth']} uniform-depth"
        )
        lines.append("")

    reorder = _span_stats(trace, "reorder")
    mir = _span_stats(trace, "verify-mir")  # the pass that records loop stats
    if reorder:
        lines.append("-- loop structure " + "-" * 52)
        lines.append(f"code-sharing groups: {reorder['num_groups']}")
        loops = (mir or {}).get("tree_loops", [])
        for loop in loops:
            lines.append(
                f"  group {loop['group_id']}: {loop['num_trees']} trees, "
                f"{loop['walk_style']} walk x{loop['walk_width']} "
                f"(depth {loop['walk_depth']}, peel {loop['walk_peel']})"
            )
        if mir:
            lines.append(
                f"loop order {mir['loop_order']}, row_block={mir['row_block']}, "
                f"threads={mir['row_threads']}"
            )
        lines.append("")

    lir = _span_stats(trace, "layout")  # the LIR span that records buffer stats
    if lir:
        lines.append("-- memory " + "-" * 60)
        lines.append(
            f"layout={lir['layout']} precision={lir['precision']}: "
            f"model buffers {lir['model_bytes']} B, "
            f"LUT {lir['lut_shape']} = {lir['lut_bytes']} B "
            f"({lir['num_shapes']} shapes"
            f"{', incl. dummy' if lir['has_dummy_shape'] else ''})"
        )
        for g in lir["groups"]:
            lines.append(
                f"  group {g['group_id']}: {g['kind']} {g['nbytes']} B "
                f"({g['num_trees']} trees{', trivial' if g['trivial'] else ''})"
            )
        lines.append("")

    prof = getattr(predictor, "profile_counters", None)
    if callable(prof):
        counters = prof()
        if counters and counters.get("kernel_calls"):
            lines.append("-- kernel profile " + "-" * 52)
            for key, value in counters.items():
                if value:
                    lines.append(f"  {key:<16s} {value}")
            lines.append("")
    return "\n".join(lines)


def _span_stats(trace, name: str) -> dict | None:
    span = trace.find(name)
    return span.stats if span is not None and span.stats else None
