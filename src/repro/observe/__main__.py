"""``python -m repro.observe`` — observability CLI.

Subcommands::

    dump      compile + serve a demo model, print the registry as JSON
              (the default when no subcommand is given — backwards
              compatible with the original flag-only invocation)
    metrics   same demo, printed as an OpenMetrics exposition document
    serve     same demo kept alive behind an HTTP /metrics endpoint
    tail      pretty-print a flight-recorder JSONL file (``--follow``
              keeps reading as the serving process appends)

The demo trains a small synthetic model, compiles and serves it with
request tracing on (``trace_sample=1.0``), so the snapshot contains
pipeline spans, IR statistics, serving counters, request span trees and
flight events. Useful as a smoke test, a schema reference for dashboards,
and the CI artifact generator.

Shared demo options (``dump``/``metrics``/``serve``)::

    --rows N        rows per request (default 256)
    --requests N    predict requests to issue (default 4)
    --profile       compile with Schedule(profile=True) kernel counters
    --parallel N    schedule parallel degree (exercises the kernel pool)
    --explain       print the schedule decision report to stderr first

``dump`` adds ``--output FILE``/``--indent N``; ``serve`` adds
``--port N``/``--addr HOST``/``--duration S``/``--interval S``;
``tail`` takes ``--file PATH`` (or ``$REPRO_FLIGHT_LOG``), ``--lines N``,
``--kind K``, ``--follow``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def _add_demo_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=256)
    parser.add_argument("--requests", type=int, default=4)
    parser.add_argument("--profile", action="store_true")
    parser.add_argument("--parallel", type=int, default=1)
    parser.add_argument("--explain", action="store_true")


def _run_demo(args, *, flight_log: str | None = None):
    """Train/compile/serve the demo model; returns the live server.

    The caller owns the server (``with`` or explicit ``close``).
    """
    import numpy as np

    from repro.config import Schedule
    from repro.observe import explain
    from repro.serve import ModelServer, ServerConfig
    from repro.training.gbdt import GBDTParams, train_gbdt

    rng = np.random.default_rng(0)
    X = rng.normal(size=(512, 12))
    y = 2.0 * X[:, 0] + np.sin(3.0 * X[:, 1]) + (X[:, 2] > 0) * X[:, 3]
    forest = train_gbdt(X, y, GBDTParams(num_rounds=10, max_depth=5, seed=1))
    schedule = Schedule(profile=args.profile, parallel=max(1, args.parallel))

    server = ModelServer(
        ServerConfig(trace_sample=1.0, flight_log=flight_log)
    )
    session = server.register("demo", forest, schedule)
    rows = rng.normal(size=(max(1, args.rows), forest.num_features))
    for _ in range(max(1, args.requests)):
        server.predict("demo", rows)
    if args.explain:
        print(
            explain(forest, schedule, predictor=session.predictor),
            file=sys.stderr,
        )
    return server, rows


def _cmd_dump(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe dump",
        description="Compile + serve a demo model and dump the observability registry as JSON.",
    )
    _add_demo_args(parser)
    parser.add_argument("--output", type=str, default=None)
    parser.add_argument("--indent", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.observe import registry

    server, _ = _run_demo(args)
    with server:
        document = registry.export_json(indent=args.indent)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(document + "\n")
            print(f"wrote {args.output} ({len(document)} bytes)", file=sys.stderr)
        print(document)
    return 0


def _cmd_metrics(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe metrics",
        description="Compile + serve a demo model and print an OpenMetrics exposition document.",
    )
    _add_demo_args(parser)
    args = parser.parse_args(argv)

    from repro.observe.export import render_openmetrics

    server, _ = _run_demo(args)
    with server:
        sys.stdout.write(render_openmetrics())
    return 0


def _cmd_serve(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe serve",
        description="Serve the demo model behind an HTTP /metrics endpoint.",
    )
    _add_demo_args(parser)
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--addr", type=str, default="127.0.0.1")
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="exit after this many seconds (default: run until interrupted)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="seconds between background demo predictions",
    )
    parser.add_argument(
        "--flight-log",
        type=str,
        default=None,
        help="mirror flight events to this JSONL file (tail --follow reads it)",
    )
    args = parser.parse_args(argv)

    from repro.observe.export import DEFAULT_METRICS_PORT, start_metrics_server

    server, rows = _run_demo(args, flight_log=args.flight_log)
    port = DEFAULT_METRICS_PORT if args.port is None else args.port
    with server:
        httpd = start_metrics_server(port=port, addr=args.addr)
        host, bound_port = httpd.server_address[:2]
        print(f"metrics: http://{host}:{bound_port}/metrics", flush=True)
        deadline = None if args.duration is None else time.monotonic() + args.duration
        try:
            while deadline is None or time.monotonic() < deadline:
                server.predict("demo", rows)
                time.sleep(max(0.0, args.interval))
        except KeyboardInterrupt:
            pass
        finally:
            httpd.shutdown()
    return 0


def _cmd_tail(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe tail",
        description="Pretty-print a flight-recorder JSONL file.",
    )
    parser.add_argument(
        "--file",
        type=str,
        default=None,
        help="flight log path (default: $REPRO_FLIGHT_LOG)",
    )
    parser.add_argument("-n", "--lines", type=int, default=20)
    parser.add_argument("--kind", type=str, default=None)
    parser.add_argument("--follow", action="store_true")
    args = parser.parse_args(argv)

    from repro.observe.events import FLIGHT_LOG_ENV, format_event

    path = args.file or os.environ.get(FLIGHT_LOG_ENV)
    if not path:
        print(
            "no flight log: pass --file or set $REPRO_FLIGHT_LOG "
            "(servers write one when ServerConfig(flight_log=...) is set)",
            file=sys.stderr,
        )
        return 2

    def emit(line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            event = json.loads(line)
        except ValueError:
            return
        if args.kind is not None and event.get("kind") != args.kind:
            return
        print(format_event(event), flush=True)

    try:
        fh = open(path, "r")
    except OSError as exc:
        print(f"cannot open {path}: {exc}", file=sys.stderr)
        return 2
    with fh:
        history = fh.readlines()
        for line in history[-args.lines:] if args.lines > 0 else []:
            emit(line)
        if args.follow:
            try:
                while True:
                    line = fh.readline()
                    if line:
                        emit(line)
                    else:
                        time.sleep(0.2)
            except KeyboardInterrupt:
                pass
    return 0


_COMMANDS = {
    "dump": _cmd_dump,
    "metrics": _cmd_metrics,
    "serve": _cmd_serve,
    "tail": _cmd_tail,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Flag-only invocations predate the subcommands and must keep working
    # (CI calls ``python -m repro.observe --profile --output trace.json``):
    # anything that is not a known subcommand falls through to ``dump``.
    if argv and argv[0] in _COMMANDS:
        return _COMMANDS[argv[0]](argv[1:])
    return _cmd_dump(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    raise SystemExit(main())
