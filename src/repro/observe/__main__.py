"""``python -m repro.observe`` — dump the observability registry.

Trains a small synthetic model, compiles and serves it (so the snapshot
contains pipeline spans, IR statistics, serving counters and pool gauges),
then prints ``registry.export_json()``. Useful as a smoke test, a schema
reference for dashboards, and the CI artifact generator.

Options::

    --rows N        rows per request (default 256)
    --requests N    predict requests to issue (default 4)
    --profile       compile with Schedule(profile=True) kernel counters
    --parallel N    schedule parallel degree (exercises the kernel pool)
    --output FILE   also write the JSON document to FILE
    --explain       print the schedule decision report to stderr first
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="Compile + serve a demo model and dump the observability registry as JSON.",
    )
    parser.add_argument("--rows", type=int, default=256)
    parser.add_argument("--requests", type=int, default=4)
    parser.add_argument("--profile", action="store_true")
    parser.add_argument("--parallel", type=int, default=1)
    parser.add_argument("--output", type=str, default=None)
    parser.add_argument("--explain", action="store_true")
    parser.add_argument("--indent", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.config import Schedule
    from repro.observe import explain, registry
    from repro.serve import ModelServer
    from repro.training.gbdt import GBDTParams, train_gbdt

    rng = np.random.default_rng(0)
    X = rng.normal(size=(512, 12))
    y = 2.0 * X[:, 0] + np.sin(3.0 * X[:, 1]) + (X[:, 2] > 0) * X[:, 3]
    forest = train_gbdt(X, y, GBDTParams(num_rounds=10, max_depth=5, seed=1))
    schedule = Schedule(profile=args.profile, parallel=max(1, args.parallel))

    with ModelServer() as server:
        session = server.register("demo", forest, schedule)
        rows = rng.normal(size=(max(1, args.rows), forest.num_features))
        for _ in range(max(1, args.requests)):
            server.predict("demo", rows)
        if args.explain:
            print(explain(forest, schedule, predictor=session.predictor), file=sys.stderr)
        document = registry.export_json(indent=args.indent)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(document + "\n")
            print(f"wrote {args.output} ({len(document)} bytes)", file=sys.stderr)
        print(document)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    raise SystemExit(main())
