"""Treebeard reproduction: an optimizing compiler for decision tree inference.

This package reimplements the MICRO 2022 Treebeard system in pure Python:
a multi-level compiler (HIR tree tiling / MIR loop optimization / LIR memory
layout + vectorization) that specializes batch-inference code to each model,
plus the substrates the paper's evaluation depends on — a GBDT/random-forest
trainer, synthetic benchmark datasets, baseline inference systems (XGBoost-,
Treelite- and Hummingbird-style), and a microarchitectural cost model.

Quickstart::

    import numpy as np
    from repro import GBDTParams, Schedule, compile_model, train_gbdt

    X = np.random.default_rng(0).normal(size=(1000, 16))
    y = X[:, 0] * 2 + np.sin(X[:, 1])
    forest = train_gbdt(X, y, GBDTParams(num_rounds=100, max_depth=6))
    predictor = compile_model(forest, Schedule(tile_size=8))
    predictions = predictor.predict(X)
"""

from repro.api import compile_model, predict, serve_model
from repro.backend.predictor import Predictor
from repro.config import Schedule
from repro.errors import (
    CodegenError,
    CompilerError,
    ExecutionError,
    LayoutError,
    LoweringError,
    ModelError,
    ModelParseError,
    ReproError,
    ScheduleError,
    ServingError,
    TilingError,
)
from repro.forest.ensemble import Forest
from repro.forest.tree import DecisionTree
from repro.observe import explain
from repro.serve import (
    BatchingPolicy,
    InferenceSession,
    ModelServer,
    ServerConfig,
)
from repro.training.gbdt import GBDTParams, train_gbdt
from repro.training.random_forest import RandomForestParams, train_random_forest

__version__ = "1.0.0"

__all__ = [
    "BatchingPolicy",
    "CodegenError",
    "CompilerError",
    "DecisionTree",
    "ExecutionError",
    "Forest",
    "GBDTParams",
    "InferenceSession",
    "LayoutError",
    "LoweringError",
    "ModelError",
    "ModelParseError",
    "ModelServer",
    "Predictor",
    "RandomForestParams",
    "ReproError",
    "Schedule",
    "ScheduleError",
    "ServerConfig",
    "ServingError",
    "TilingError",
    "compile_model",
    "explain",
    "predict",
    "serve_model",
    "train_gbdt",
    "train_random_forest",
    "__version__",
]
