"""Ahead-of-time artifact export: compile once, load anywhere, free.

The ``aot_export`` backend compiles the same NumPy kernel the default
backend does, but additionally knows how to *serialize* a compiled model
into a self-contained artifact directory::

    artifact/
      MANIFEST.json        format version, content fingerprint, model facts,
                           arena spec, per-file sha256 hashes
      kernel.py            the generated ``predict_block`` source
      schedule.json        ``Schedule.to_dict()`` of the compiling schedule
      buffers/<name>.npy   every model buffer of the JIT namespace
                           (thresholds, feature indices, LUT, leaf values,
                           one-hot class matrices, ...)

:func:`load_artifact` reconstitutes a ready executor from that directory in
a fresh process **without invoking the compiler**: no HIR/MIR/LIR lowering
runs, no tiling is computed — the loader reads buffers, rebuilds the
namespace, byte-compiles the stored source and wraps it in an
:class:`ArtifactPredictor` (a :class:`~repro.backend.predictor.KernelExecutor`).
That is the cold-start-free deploy path: warm workers load artifacts in
milliseconds where a compile costs hundreds (``benchmarks/test_bench_aot.py``).

Artifacts are validated whole before anything is trusted: the manifest's
``format_version`` must match this build (:data:`ARTIFACT_FORMAT_VERSION`),
and every listed file must hash to its recorded sha256 — corruption,
truncation and partial copies all fail with
:class:`~repro.errors.ArtifactError` instead of mispredicting. The
manifest's ``fingerprint`` is the :func:`~repro.backend.jit.model_fingerprint`
of the exporting (forest, schedule), so the serving cache can coalesce a
loaded artifact with an in-process compile of the same model.
"""

from __future__ import annotations

import hashlib
import json
import os
import weakref
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.backend.codegen import build_namespace
from repro.backend.jit import compile_source, model_fingerprint
from repro.backend.predictor import KernelExecutor, Predictor
from repro.backend.registry import Backend, register_backend
from repro.config import Schedule
from repro.errors import ArtifactError
from repro.lir.memory import ArenaSpec, ScratchArena
from repro.observe import registry as observe_registry
from repro.observe.profile import ProfileRecorder

#: bump on any incompatible change to the artifact layout or manifest
#: schema; loaders reject every other version (see DESIGN.md for the
#: versioning rules). Version 2: arena specs carry ``acc_dtype``,
#: quantized models ship cut tables / leaf-code buffers and a
#: ``quantization`` manifest summary.
ARTIFACT_FORMAT_VERSION = 2

MANIFEST_NAME = "MANIFEST.json"
KERNEL_NAME = "kernel.py"
SCHEDULE_NAME = "schedule.json"
BUFFER_DIR = "buffers"

#: namespace entries that are runtime objects, not model buffers — they are
#: reconstructed at load time instead of serialized.
_RUNTIME_KEYS = ("_np", "_new_arena", "_P")


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------

def export_artifact(
    model,
    path: str | os.PathLike,
    schedule: Schedule | None = None,
    *,
    overwrite: bool = False,
) -> Path:
    """Serialize a compiled model into a self-contained artifact directory.

    Parameters
    ----------
    model:
        Either an already-compiled :class:`~repro.backend.predictor.Predictor`
        (its forest, schedule and kernel are exported as-is), or a
        :class:`~repro.forest.ensemble.Forest` — which is compiled first
        under ``schedule`` (default: the paper-default schedule).
    path:
        Target directory. Created (parents included) if absent; must be
        empty unless ``overwrite=True``.
    schedule:
        Compilation schedule when ``model`` is a forest; ignored (with the
        predictor's own schedule winning) for predictors.

    Returns the artifact directory as a :class:`~pathlib.Path`.
    """
    if isinstance(model, Predictor):
        predictor = model
    else:
        from repro.api import compile_model  # lazy: api imports this package

        predictor = compile_model(model, schedule)
    if not isinstance(predictor, Predictor):
        raise ArtifactError(
            f"only in-process compiled predictors can be exported, "
            f"got {type(predictor).__name__}"
        )

    out = Path(path)
    out.mkdir(parents=True, exist_ok=True)
    existing = [p.name for p in out.iterdir()]
    if existing and not overwrite:
        raise ArtifactError(
            f"artifact directory {out} is not empty ({existing[:4]}...); "
            f"pass overwrite=True to replace its contents"
        )

    lir = predictor.lir
    sched = predictor.schedule
    (out / BUFFER_DIR).mkdir(exist_ok=True)
    (out / KERNEL_NAME).write_text(predictor.source)
    (out / SCHEDULE_NAME).write_text(
        json.dumps(sched.to_dict(), indent=2, sort_keys=True)
    )

    # The exact namespace the JIT ran against, minus runtime objects: what
    # is serialized is what executed, so the load is bit-faithful.
    namespace = build_namespace(lir)
    buffers: dict[str, dict] = {}
    for name, value in namespace.items():
        if name in _RUNTIME_KEYS:
            continue
        if not isinstance(value, np.ndarray):  # pragma: no cover - all
            # non-runtime namespace entries are arrays by construction
            raise ArtifactError(f"unserializable namespace entry {name!r}")
        rel = f"{BUFFER_DIR}/{name}.npy"
        np.save(out / rel, value, allow_pickle=False)
        buffers[name] = {
            "file": rel,
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }

    files = {rel: _sha256_file(out / rel) for rel in
             [KERNEL_NAME, SCHEDULE_NAME] + [b["file"] for b in buffers.values()]}
    manifest = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "backend": AotExportBackend.name,
        "fingerprint": model_fingerprint(predictor.forest, sched),
        "model": {
            "num_features": lir.num_features,
            "num_classes": lir.num_classes,
            "num_trees": predictor.forest.num_trees,
            "base_score": lir.base_score,
            "objective": predictor.forest.objective,
        },
        "arena": asdict(predictor.arena_spec) if predictor.arena_spec else None,
        "quantization": lir.quant.describe() if lir.quant is not None else None,
        "buffers": buffers,
        "files": files,
    }
    # Manifest last, atomically: a crashed export leaves a directory with
    # no manifest (cleanly rejected) rather than a manifest describing
    # files that were never written.
    tmp = out / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    os.replace(tmp, out / MANIFEST_NAME)
    observe_registry.record_backend_event(AotExportBackend.name, "artifact_exports")
    return out


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------

class ArtifactPredictor(KernelExecutor):
    """A compiled model reconstituted from an AOT artifact directory.

    Executes identically to the in-process :class:`Predictor` it was
    exported from (same source, same buffers, same arena policy), but owns
    neither the forest nor the lowered module — only the facts the
    manifest recorded.
    """

    backend_name = "aot_export"
    #: marks executors that skipped compilation entirely
    is_artifact = True

    def __init__(
        self,
        kernel,
        schedule: Schedule,
        manifest: dict,
        path: Path,
        source: str,
        nbytes: int,
        validate_inputs: bool = True,
        profile_recorder: ProfileRecorder | None = None,
    ) -> None:
        model = manifest["model"]
        arena = None
        if manifest.get("arena"):
            spec = dict(manifest["arena"])
            spec["pack_widths"] = tuple(spec.get("pack_widths") or ())
            arena = ArenaSpec(**spec)
        super().__init__(
            kernel,
            schedule,
            num_features=model["num_features"],
            num_classes=model["num_classes"],
            base_score=model["base_score"],
            objective=model["objective"],
            validate_inputs=validate_inputs,
            arena=arena,
            source=source,
        )
        self.manifest = manifest
        self.artifact_path = path
        #: content hash of the exporting (forest, schedule) — lets the
        #: serving cache coalesce this executor with an in-process compile
        self.fingerprint: str = manifest["fingerprint"]
        self.profile_recorder = profile_recorder
        self._nbytes = nbytes

    def memory_bytes(self) -> int:
        """Model-buffer footprint of the loaded artifact buffers."""
        return self._nbytes

    def profile_counters(self) -> dict:
        if self.profile_recorder is None:
            return {}
        return self.profile_recorder.aggregate()

    def __repr__(self) -> str:
        return (
            f"ArtifactPredictor(trees={self.manifest['model']['num_trees']}, "
            f"fingerprint={self.fingerprint[:12]}, path={str(self.artifact_path)!r})"
        )


def _read_manifest(out: Path) -> dict:
    manifest_path = out / MANIFEST_NAME
    if not out.is_dir():
        raise ArtifactError(f"artifact directory {out} does not exist")
    if not manifest_path.is_file():
        raise ArtifactError(f"{out} is not an artifact: no {MANIFEST_NAME}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactError(f"corrupted {MANIFEST_NAME} in {out}: {exc}") from exc
    version = manifest.get("format_version")
    if version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"artifact {out} has format version {version!r}; this build "
            f"reads only version {ARTIFACT_FORMAT_VERSION} — re-export the "
            f"model with this version"
        )
    for key in ("fingerprint", "model", "buffers", "files"):
        if key not in manifest:
            raise ArtifactError(f"artifact manifest {out} is missing {key!r}")
    return manifest


def _verify_files(out: Path, manifest: dict) -> None:
    for rel, want in manifest["files"].items():
        target = out / rel
        if not target.is_file():
            raise ArtifactError(f"artifact {out} is missing {rel}")
        got = _sha256_file(target)
        if got != want:
            raise ArtifactError(
                f"artifact file {rel} is corrupted: sha256 {got[:16]}... "
                f"does not match the manifest ({want[:16]}...)"
            )


def artifact_fingerprint(path: str | os.PathLike) -> str:
    """The content fingerprint recorded in an artifact's manifest.

    Reads (and version-checks) only the manifest — no buffers are touched —
    so callers can consult a predictor cache before paying for a full
    :func:`load_artifact`. Raises :class:`~repro.errors.ArtifactError` on a
    missing/corrupted manifest or a format-version mismatch, exactly like
    the loader would.
    """
    return _read_manifest(Path(path))["fingerprint"]


def load_artifact(
    path: str | os.PathLike, *, validate_inputs: bool = True
) -> ArtifactPredictor:
    """Reconstitute a ready executor from an artifact directory.

    No compiler stage runs: the stored source is byte-compiled directly
    against the deserialized buffers. Validation is all-or-nothing —
    version mismatch, missing files and content-hash mismatches raise
    :class:`~repro.errors.ArtifactError` before any kernel is built.
    """
    out = Path(path)
    manifest = _read_manifest(out)
    _verify_files(out, manifest)

    schedule = Schedule.from_dict(json.loads((out / SCHEDULE_NAME).read_text()))
    source = (out / KERNEL_NAME).read_text()

    namespace: dict = {"_np": np}
    nbytes = 0
    for name, meta in manifest["buffers"].items():
        array = np.load(out / meta["file"], allow_pickle=False)
        if str(array.dtype) != meta["dtype"] or list(array.shape) != meta["shape"]:
            raise ArtifactError(
                f"buffer {name!r} does not match its manifest entry: "
                f"{array.dtype}{array.shape} vs "
                f"{meta['dtype']}{tuple(meta['shape'])}"
            )
        namespace[name] = array
        nbytes += array.nbytes
    arena_dict = manifest.get("arena")
    if arena_dict:
        spec = dict(arena_dict)
        spec["pack_widths"] = tuple(spec.get("pack_widths") or ())
        arena = ArenaSpec(**spec)
        namespace["_new_arena"] = lambda spec=arena: ScratchArena(spec)
    recorder = None
    if schedule.profile:
        recorder = ProfileRecorder(label=f"artifact-{manifest['fingerprint'][:8]}")
        # Weak proxy, strong ref on the predictor below: exec() closes a
        # namespace<->kernel cycle only gc can break, and a strong `_P`
        # would keep an evicted predictor's counters in aggregate_all()
        # until collection. The proxy lets the recorder die by refcount
        # with its ArtifactPredictor.
        namespace["_P"] = weakref.proxy(recorder)

    kernel, code_hit = compile_source(source, namespace)
    observe_registry.record_backend_event(AotExportBackend.name, "artifact_loads")
    if code_hit:
        # The stored source was already byte-compiled in this process
        # (repeated loads of the same artifact, or a load next to the
        # in-process compile that produced it).
        observe_registry.record_backend_event(
            AotExportBackend.name, "artifact_code_cache_hits"
        )
    return ArtifactPredictor(
        kernel,
        schedule,
        manifest,
        out,
        source,
        nbytes,
        validate_inputs=validate_inputs,
        profile_recorder=recorder,
    )


# ----------------------------------------------------------------------
# The registered backend
# ----------------------------------------------------------------------

@register_backend
class AotExportBackend(Backend):
    """Compile the NumPy kernel and support artifact export/load."""

    name = "aot_export"
    capabilities = ("jit", "export")

    def build(self, forest, lir, *, validate_inputs=True, trace=None) -> Predictor:
        predictor = Predictor(
            forest, lir, validate_inputs=validate_inputs, trace=trace
        )
        predictor.backend_name = self.name
        return predictor

    # The export surface, reachable from the resolved backend object so
    # callers can stay generic over `get_backend(name)`.
    def export(self, model, path, schedule=None, *, overwrite=False) -> Path:
        return export_artifact(model, path, schedule, overwrite=overwrite)

    def load(self, path, *, validate_inputs=True) -> ArtifactPredictor:
        return load_artifact(path, validate_inputs=validate_inputs)
