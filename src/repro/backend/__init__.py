"""Backend: code generation, JIT compilation, and execution runtimes.

The backend turns an :class:`~repro.lir.ir.LIRModule` into an executable
batch-inference function. The primary path generates Python/NumPy source —
one vector statement per LIR walk op, mirroring the paper's vectorized tree
walk — and compiles it with :func:`compile`; a reference interpreter
executes the same buffers row by row for cross-checking. The parallel
runtime implements the row-partitioned execution of Section IV-C with real
threads, plus a deterministic multicore simulator for scaling studies on
single-core hosts.
"""

from repro.backend.codegen import emit_module_source
from repro.backend.interpreter import interpret_lir
from repro.backend.jit import compile_lir
from repro.backend.parallel import MulticoreSimulator, parallel_predict
from repro.backend.predictor import Predictor

__all__ = [
    "MulticoreSimulator",
    "Predictor",
    "compile_lir",
    "emit_module_source",
    "interpret_lir",
    "parallel_predict",
]
