"""Reference interpreter for LIR modules.

Executes the exact buffers the codegen backend uses, but one row and one
tree at a time in plain Python. Predictions must match the compiled kernel
bit for bit (same buffers, same traversal, same accumulation grouping up to
reassociation), so the pair {interpreter, codegen} cross-checks both the
layouts and the generated code. Deliberately unoptimized.

Precision: the interpreter honours ``lir.schedule.precision`` the same way
the backend does — under ``"float32"`` rows, thresholds and leaf values are
rounded to float32 before comparing/accumulating, so a feature that lands
exactly on a threshold routes identically in both executors. The
accumulator stays float64, as in the kernel. Under the quantized modes
(``"int16"``/``"int8"``) routing runs at float64 — rank-coded thresholds
preserve every comparison exactly, so the float64 walk visits the same
leaves the integer kernel does — while leaf values accumulate as their
fixed-point *codes* in int64 with one boundary rescale, reproducing the
kernel's integer accumulation bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.lir.ir import LIRGroup, LIRModule


def _tile_bits(
    thresholds: np.ndarray, features: np.ndarray, row: np.ndarray
) -> int:
    """Predicate bits for one tile: bit i = (row[feature_i] < threshold_i)."""
    bits = 0
    for pos in range(thresholds.shape[0]):
        if row[features[pos]] < thresholds[pos]:
            bits |= 1 << pos
    return bits


def _walk_sparse(
    group: LIRGroup, lut: np.ndarray, lane: int, row: np.ndarray, fdt: np.dtype
) -> float:
    layout = group.layout
    if layout.root_leaf[lane]:
        return float(layout.leaves[lane, 0].astype(fdt))
    tile = 0
    for _ in range(10_000):
        bits = _tile_bits(
            layout.thresholds[lane, tile].astype(fdt), layout.features[lane, tile], row
        )
        child = int(lut[layout.shape_ids[lane, tile], bits])
        base = int(layout.child_base[lane, tile])
        if base < 0:
            return float(layout.leaves[lane, -base - 1 + child].astype(fdt))
        tile = base + child
    raise ExecutionError("sparse walk did not terminate (corrupt layout)")


def _walk_array(
    group: LIRGroup, lut: np.ndarray, lane: int, row: np.ndarray, fdt: np.dtype
) -> float:
    layout = group.layout
    arity = layout.tile_size + 1
    slot = 0
    for _ in range(10_000):
        sid = int(layout.shape_ids[lane, slot])
        if sid == -1:
            return float(layout.leaf_values[lane, slot].astype(fdt))
        if sid < -1:
            raise ExecutionError(f"walk reached empty slot {slot}")
        bits = _tile_bits(
            layout.thresholds[lane, slot].astype(fdt), layout.features[lane, slot], row
        )
        child = int(lut[sid, bits])
        slot = slot * arity + child + 1
    raise ExecutionError("array walk did not terminate (corrupt layout)")


def interpret_lir(lir: LIRModule, rows: np.ndarray) -> np.ndarray:
    """Run the full model on ``rows`` through the reference interpreter.

    Returns the raw margin array shaped ``(B, num_classes)``.
    """
    quant = lir.quant
    fdt = np.dtype(
        np.float32 if lir.schedule.precision == "float32" else np.float64
    )
    rows = np.ascontiguousarray(rows, dtype=np.float64 if quant is not None else fdt)
    out = np.full((rows.shape[0], lir.num_classes), lir.base_score, dtype=np.float64)
    qacc = (
        np.zeros((rows.shape[0], lir.num_classes), dtype=np.int64)
        if quant is not None
        else None
    )
    walk = {"sparse": _walk_sparse, "array": _walk_array}
    for group in lir.groups:
        layout = group.layout
        step = walk[layout.kind]
        for i, row in enumerate(rows):
            for lane in range(layout.num_trees):
                if group.trivial:
                    if layout.kind == "sparse":
                        value = float(layout.leaves[lane, 0].astype(fdt))
                    else:
                        value = float(layout.leaf_values[lane, 0].astype(fdt))
                else:
                    value = step(group, lir.lut, lane, row, fdt)
                if quant is not None:
                    qacc[i, int(group.class_ids[lane])] += int(
                        quant.quantize_leaves(value)
                    )
                else:
                    out[i, int(group.class_ids[lane])] += value
    if quant is not None:
        out += qacc * np.float64(quant.leaf_scale)
    return out
