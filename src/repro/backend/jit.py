"""JIT compilation of generated inference source.

``compile_lir`` emits source for an LIR module, compiles it with the
built-in :func:`compile` (our stand-in for the LLVM JIT), and executes it in
a namespace holding the model buffers. Code objects are cached by source
text, so models that lower to identical code (e.g. the same schedule on
isomorphic models) share compilation work — the payoff of tree reordering's
code sharing, at the module level.
"""

from __future__ import annotations

from typing import Callable

from repro.backend.codegen import build_namespace, emit_module_source
from repro.errors import CodegenError
from repro.lir.ir import LIRModule

_CODE_CACHE: dict[str, object] = {}


def compile_source(source: str, namespace: dict) -> Callable:
    """Compile ``source`` and return its ``predict_block`` bound to ``namespace``."""
    code = _CODE_CACHE.get(source)
    if code is None:
        try:
            code = compile(source, filename="<repro-jit>", mode="exec")
        except SyntaxError as exc:  # codegen bug: surface the source context
            raise CodegenError(f"generated source failed to compile: {exc}") from exc
        _CODE_CACHE[source] = code
    exec(code, namespace)
    fn = namespace.get("predict_block")
    if fn is None:
        raise CodegenError("generated source did not define predict_block")
    return fn


def compile_lir(lir: LIRModule) -> tuple[Callable, str]:
    """Emit + compile ``lir``; returns ``(predict_block, source)``."""
    source = emit_module_source(lir)
    namespace = build_namespace(lir)
    return compile_source(source, namespace), source


def cache_size() -> int:
    """Number of distinct compiled sources (for tests/diagnostics)."""
    return len(_CODE_CACHE)
