"""JIT compilation of generated inference source.

``compile_lir`` emits source for an LIR module, compiles it with the
built-in :func:`compile` (our stand-in for the LLVM JIT), and executes it in
a namespace holding the model buffers. Code objects are cached by source
text, so models that lower to identical code (e.g. the same schedule on
isomorphic models) share compilation work — the payoff of tree reordering's
code sharing, at the module level.

The cache is a bounded, thread-safe LRU: a long-lived server compiling many
distinct models must not grow it without limit. The serving layer
(:mod:`repro.serve`) keys whole predictors one level up by
:func:`model_fingerprint`, a stable hash of the forest structure plus the
schedule, so re-registering an isomorphic model is a cache hit before any
lowering happens.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.backend.codegen import build_namespace, emit_module_source
from repro.errors import CodegenError
from repro.lir.ir import LIRModule
from repro.observe.profile import ProfileRecorder
from repro.observe.trace import CompilationTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.config import Schedule
    from repro.forest.ensemble import Forest

#: Default bound on distinct compiled sources kept alive.
DEFAULT_CODE_CACHE_CAP = 256

_CODE_CACHE: "OrderedDict[str, object]" = OrderedDict()
_CACHE_CAP = DEFAULT_CODE_CACHE_CAP
_CACHE_LOCK = threading.Lock()


def compile_source(source: str, namespace: dict) -> tuple[Callable, bool]:
    """Compile ``source``; returns ``(predict_block, cache_hit)``.

    The hit flag is decided by the initial lookup, not by observing the
    cache size: once the LRU is at capacity an insert+evict leaves the
    size unchanged, and concurrent compiles shift it arbitrarily — both
    previously mis-reported misses as hits.
    """
    with _CACHE_LOCK:
        code = _CODE_CACHE.get(source)
        hit = code is not None
        if hit:
            _CODE_CACHE.move_to_end(source)
    if code is None:
        try:
            code = compile(source, filename="<repro-jit>", mode="exec")
        except SyntaxError as exc:  # codegen bug: surface the source context
            raise CodegenError(f"generated source failed to compile: {exc}") from exc
        with _CACHE_LOCK:
            # A concurrent compile of the same source may have inserted
            # meanwhile; keep one canonical code object, but still report
            # a miss — this thread paid for the compilation.
            existing = _CODE_CACHE.get(source)
            if existing is not None:
                code = existing
            else:
                _CODE_CACHE[source] = code
                while len(_CODE_CACHE) > _CACHE_CAP:
                    _CODE_CACHE.popitem(last=False)
            _CODE_CACHE.move_to_end(source)
    exec(code, namespace)
    fn = namespace.get("predict_block")
    if fn is None:
        raise CodegenError("generated source did not define predict_block")
    return fn, hit


def compile_lir(
    lir: LIRModule,
    trace: CompilationTrace | None = None,
    profile_recorder: ProfileRecorder | None = None,
) -> tuple[Callable, str]:
    """Emit + compile ``lir``; returns ``(predict_block, source)``.

    ``trace`` gets one span per backend stage (source emission, namespace
    materialization, bytecode compile); ``profile_recorder`` is bound as
    the kernel's ``_P`` when the schedule enables profiling.
    """
    trace = trace or CompilationTrace()
    with trace.span("codegen-emit") as span:
        source = emit_module_source(lir)
        span.stats["source_lines"] = source.count("\n")
        span.stats["source_bytes"] = len(source)
    with trace.span("codegen-namespace") as span:
        namespace = build_namespace(lir, profile_recorder=profile_recorder)
        span.stats["num_globals"] = len(namespace)
    with trace.span("jit-compile") as span:
        kernel, hit = compile_source(source, namespace)
        span.stats["code_cache_hit"] = hit
    return kernel, source


def cache_size() -> int:
    """Number of distinct compiled sources (for tests/diagnostics)."""
    with _CACHE_LOCK:
        return len(_CODE_CACHE)


def cache_limit() -> int:
    """Current bound on the code cache."""
    return _CACHE_CAP


def set_cache_limit(cap: int) -> int:
    """Set the LRU bound; returns the previous bound.

    Shrinking below the current population evicts least-recently-used
    entries immediately.
    """
    global _CACHE_CAP
    if cap < 1:
        raise ValueError(f"cache limit must be >= 1, got {cap}")
    with _CACHE_LOCK:
        previous, _CACHE_CAP = _CACHE_CAP, cap
        while len(_CODE_CACHE) > _CACHE_CAP:
            _CODE_CACHE.popitem(last=False)
    return previous


def clear_cache() -> None:
    """Drop every cached code object (tests/benchmark hygiene)."""
    with _CACHE_LOCK:
        _CODE_CACHE.clear()


def model_fingerprint(forest: "Forest", schedule: "Schedule | None" = None) -> str:
    """Stable content hash of ``forest`` (and optionally ``schedule``).

    Two forests with identical structure and parameters — e.g. one
    serialized and re-loaded, or re-trained deterministically — produce the
    same fingerprint, so a predictor cache keyed on it turns re-registration
    into a cache hit without lowering anything. The hash covers everything
    ``Forest.to_dict`` serializes (splits, thresholds, leaf values, node
    probabilities, objective, base score) plus the schedule's repr, which
    for a frozen dataclass enumerates every optimization knob.
    """
    payload = json.dumps(forest.to_dict(), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode())
    if schedule is not None:
        digest.update(repr(schedule).encode())
    return digest.hexdigest()


def predictor_cache_key(forest: "Forest", schedule: "Schedule") -> str:
    """Backend-qualified key for caches that hold compiled *executors*.

    :func:`model_fingerprint` deliberately excludes the backend name (the
    backend choice never changes compiled semantics, and the schedule's
    ``backend`` field is ``repr``-suppressed), but a cache of executors
    must not: the same (forest, schedule) compiled under two backends are
    distinct objects with different capabilities. Namespacing the
    fingerprint by ``schedule.backend`` keeps them from colliding.

    The repr-suppressed ``pgo`` knob gets the same treatment: a
    profile-guided split never changes outputs (so the fingerprint may
    ignore it) but does change the compiled kernel, so executors built
    with different cutoffs must occupy different cache slots. The default
    (``pgo=None``) key shape is unchanged — pinned key hashes stay valid.
    """
    key = f"{schedule.backend}:{model_fingerprint(forest, schedule)}"
    if schedule.pgo is not None:
        key += f":pgo={schedule.pgo}"
    return key


def artifact_cache_key(backend_name: str, fingerprint: str) -> str:
    """Cache key for an executor loaded from an AOT artifact.

    Mirrors :func:`predictor_cache_key`'s ``backend:fingerprint`` shape so
    a loaded artifact and an in-process compile of the same (forest,
    schedule) under the same backend share one cache slot.
    """
    return f"{backend_name}:{fingerprint}"
