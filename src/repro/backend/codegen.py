"""NumPy source generation for compiled inference functions.

``emit_module_source`` walks an :class:`~repro.lir.ir.LIRModule` and emits
the body of ``predict_block(rows, out)``. The emitted statements follow the
walk-step op sequence of Section V-A one to one, using the fastest NumPy
realization of each op:

========================  ================================================
LIR op                    emitted statement
========================  ================================================
loadThresholds            ``thr = _np.take(g_th, idx, axis=0)``
loadFeatureIndices        ``fidx = _np.take(g_fi, idx, axis=0)``
gatherFeatures            ``feat = _np.take(rowsf, rof + fidx)``
vectorCompare             ``cmp = feat < thr``
packBits                  integer reinterpretation of the bool vector
                          (the movemask analog; see ``_pack_bits_expr``)
loadTileShape             ``sid = _np.take(g_sid, idx)``
lookupChildIndex          ``ci = _np.take(lut, sid * LUTC + bits)``
advanceToChild            layout-specific child arithmetic
========================  ================================================

Buffers are stored flattened with 64-bit index math (``np.take`` on int64
indices is several times faster than multi-axis advanced indexing), and
tile storage is padded to a power-of-two lane width so the comparison
vector can be reinterpreted as a single integer per tile.

Walk styles lower differently: ``unrolled`` emits straight-line step
sequences with no termination checks; ``peeled`` emits check-free prologue
steps followed by the guarded loop; ``loop`` emits the guarded loop only.
The guarded loop uses *active-lane compaction* — finished (row, tree) walks
leave the working set, the vectorized analog of the scalar walk's early
exit, which is what probability-based tiling's shorter expected walks pay
into. The tree-chunk loop realizes walk interleaving: all ``width`` jammed
walks advance inside the same vector statements.

NaN caveat: speculative evaluation relies on padding predicates
(``x < +inf``) being true, which fails for NaN inputs — the predictor
validates rows before calling the kernel.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodegenError
from repro.lir.ir import LIRGroup, LIRModule


class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.depth + text if text else "")

    def block(self, header: str) -> "_IndentCtx":
        self.emit(header)
        return _IndentCtx(self)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _IndentCtx:
    def __init__(self, emitter: _Emitter) -> None:
        self.emitter = emitter

    def __enter__(self):
        self.emitter.depth += 1
        return self.emitter

    def __exit__(self, *exc):
        self.emitter.depth -= 1
        return False


def _pack_bits_expr(width: int) -> str:
    """Pack the bool comparison vector (last axis = ``width``, a power of
    two) into integer predicate bits — the movemask analog.

    The trick: a fresh bool array stores one byte per lane, so the last axis
    can be reinterpreted as a single unsigned integer whose byte ``i`` is
    lane ``i``'s outcome; one multiply gathers the bytes into the top byte
    (LSB-first), one shift extracts them.
    """
    if width == 1:
        return "cmp[..., 0]"
    if width == 2:
        return (
            "(lambda v: (v | (v >> _np.uint16(7))) & _np.uint16(3))"
            "(cmp.view(_np.uint16)[..., 0])"
        )
    if width == 4:
        return (
            "((cmp.view(_np.uint32)[..., 0] * _np.uint32(0x01020408)) "
            ">> _np.uint32(24)) & _np.uint32(15)"
        )
    if width == 8:
        return (
            "((cmp.view(_np.uint64)[..., 0] * _np.uint64(0x0102040810204080)) "
            ">> _np.uint64(56)).astype(_np.int64)"
        )
    # Wide tiles (>8): generic matmul fallback.
    return "(cmp.astype(_np.uint32) @ p2).astype(_np.int64)"


class _GroupEmitter:
    """Emits the chunked walk for one tree group."""

    def __init__(self, e: _Emitter, lir: LIRModule, group: LIRGroup, vec: bool) -> None:
        self.e = e
        self.lir = lir
        self.group = group
        self.vec = vec
        self.g = f"g{group.group_id}"
        self.layout = group.layout
        self.width = self.layout.thresholds.shape[2]
        self.lut_cols = lir.lut.shape[1]
        self.has_dummy = lir.dummy_shape_id is not None
        # Number of LUT rows describing *real* tile shapes (the reserved
        # dummy row routes data-independently and is handled by masking).
        self.real_shapes = lir.lut.shape[0] - (1 if self.has_dummy else 0)

    # -- shared op fragments ------------------------------------------
    def eval_tile(self, idx: str, feat_index: str) -> None:
        """The evaluateTilePredicates sequence at flat tile indices ``idx``.

        Model-specific specialization (the compiler knows the tiled model
        statically): when every real tile in the model shares one shape,
        the shape load + full LUT lookup are elided — the LUT collapses to
        its single real row, and for tile size 1 the whole lookup folds to
        ``1 - bit`` (true goes to child 0, the left subtree). If the model
        also contains dummy (padding/hop) tiles, a 0/1 non-dummy mask
        forces their child index to 0 regardless of the speculative
        comparisons (which can be false for ``+inf`` inputs).
        """
        e, g = self.e, self.g
        single_shape = self.real_shapes == 1
        e.emit(f"thr = _np.take({g}_th, {idx}, axis=0)")    # loadThresholds
        e.emit(f"fidx = _np.take({g}_fi, {idx}, axis=0)")   # loadFeatureIndices
        e.emit(f"feat = _np.take({self._rowsrc()}, {feat_index})")  # gatherFeatures
        e.emit("cmp = feat < thr")                          # vectorCompare
        if single_shape and self.width == 1:
            # packBits + lookupChildIndex folded into one arithmetic op.
            e.emit("ci = 1 - cmp[..., 0]")
            self._mask_dummies(idx)
            return
        e.emit(f"bits = {_pack_bits_expr(self.width)}")     # packBits
        if single_shape:
            e.emit("ci = _np.take(lut1, bits)")             # lookupChildIndex
            self._mask_dummies(idx)
            return
        e.emit(f"sid = _np.take({g}_sid, {idx})")           # loadTileShape
        e.emit(f"ci = _np.take(lut, sid * {self.lut_cols} + bits)")  # lookupChildIndex

    def _mask_dummies(self, idx: str) -> None:
        """Zero the child index at dummy tiles (single-real-shape paths)."""
        if self.has_dummy:
            self.e.emit(f"ci *= _np.take({self.g}_nd, {idx})")

    def _rowsrc(self) -> str:
        return "rowsf" if self.vec else "row"

    def _feat_full(self) -> str:
        """Feature gather index for full (B, k) state."""
        return "rof + fidx" if self.vec else "fidx"

    def _feat_act(self) -> str:
        """Feature gather index for compacted active positions."""
        return "rof0[act_r][:, None] + fidx" if self.vec else "fidx"

    # -- sparse layout -------------------------------------------------
    def sparse_walk(self) -> None:
        e, g = self.e, self.g
        walk = self.group.walk
        shape = "(B, k)" if self.vec else "(k,)"
        e.emit(f"state = _np.zeros({shape}, dtype=_np.int64)")

        def advance() -> None:
            e.emit("idx = bofs + state")
            self.eval_tile("idx", self._feat_full())
            e.emit(f"state = _np.take({g}_cb, idx) + ci")    # advanceToChild
            e.emit()

        if walk.style == "unrolled":
            for _ in range(walk.depth - 1):
                advance()
            # Final step: uniform depth guarantees the leaves array.
            e.emit("idx = bofs + state")
            self.eval_tile("idx", self._feat_full())
            e.emit(f"base = _np.take({g}_cb, idx)")
            e.emit(f"vals = _np.take({g}_lv, lofs - base - 1 + ci)")
            return

        if walk.style == "peeled":
            for _ in range(walk.peel):
                advance()

        if not self.lir.schedule.compact_walks:
            # Ablation path: masked loop. Finished lanes re-evaluate the
            # root harmlessly and keep their state under the mask; the loop
            # runs to the *slowest* lane's depth.
            e.emit("alive = state >= 0")
            with e.block("while alive.any():"):
                e.emit("t = _np.where(alive, state, 0)")
                e.emit("idx = bofs + t")
                self.eval_tile("idx", self._feat_full())
                e.emit(f"base = _np.take({g}_cb, idx)")
                e.emit("nxt = _np.where(base >= 0, base + ci, base - ci)")
                e.emit("state = _np.where(alive, nxt, state)")
                e.emit("alive = state >= 0")
        elif self.vec:
            e.emit("act_r, act_l = _np.nonzero(state >= 0)")
            with e.block("while act_r.size:"):
                e.emit("t = state[act_r, act_l]")
                e.emit("idx = bofs0[act_l] + t")
                self.eval_tile("idx", self._feat_act())
                e.emit(f"base = _np.take({g}_cb, idx)")
                e.emit("nxt = _np.where(base >= 0, base + ci, base - ci)")
                e.emit("state[act_r, act_l] = nxt")
                e.emit("keep = nxt >= 0")
                e.emit("act_r = act_r[keep]")
                e.emit("act_l = act_l[keep]")
        else:
            e.emit("act = _np.nonzero(state >= 0)[0]")
            with e.block("while act.size:"):
                e.emit("t = state[act]")
                e.emit("idx = bofs[act] + t")
                self.eval_tile("idx", "fidx")
                e.emit(f"base = _np.take({g}_cb, idx)")
                e.emit("nxt = _np.where(base >= 0, base + ci, base - ci)")
                e.emit("state[act] = nxt")
                e.emit("act = act[nxt >= 0]")
        e.emit(f"vals = _np.take({g}_lv, lofs - state - 1)")

    # -- array layout ----------------------------------------------------
    def array_walk(self) -> None:
        e, g = self.e, self.g
        walk = self.group.walk
        arity = self.layout.tile_size + 1
        shape = "(B, k)" if self.vec else "(k,)"
        e.emit(f"state = _np.zeros({shape}, dtype=_np.int64)")

        def advance() -> None:
            e.emit("idx = bofs + state")
            self.eval_tile("idx", self._feat_full())
            e.emit(f"state = state * {arity} + ci + 1")
            e.emit()

        if walk.style == "unrolled":
            for _ in range(walk.depth):
                advance()
            e.emit(f"vals = _np.take({g}_lv, bofs + state)")
            return

        if walk.style == "peeled":
            for _ in range(walk.peel):
                advance()

        if not self.lir.schedule.compact_walks:
            # Ablation path: masked loop (see the sparse variant).
            e.emit(f"alive = _np.take({g}_sid, bofs + state) >= 0")
            with e.block("while alive.any():"):
                e.emit("t = _np.where(alive, state, 0)")
                e.emit("idx = bofs + t")
                self.eval_tile("idx", self._feat_full())
                e.emit(f"nxt = t * {arity} + ci + 1")
                e.emit("state = _np.where(alive, nxt, state)")
                e.emit(f"alive = _np.take({g}_sid, bofs + state) >= 0")
            e.emit(f"vals = _np.take({g}_lv, bofs + state)")
            return

        if self.vec:
            e.emit(f"act_r, act_l = _np.nonzero(_np.take({g}_sid, bofs + state) >= 0)")
            with e.block("while act_r.size:"):
                e.emit("t = state[act_r, act_l]")
                e.emit("idx = bofs0[act_l] + t")
                self.eval_tile("idx", self._feat_act())
                e.emit(f"nxt = t * {arity} + ci + 1")
                e.emit("state[act_r, act_l] = nxt")
                e.emit(f"keep = _np.take({g}_sid, bofs0[act_l] + nxt) >= 0")
                e.emit("act_r = act_r[keep]")
                e.emit("act_l = act_l[keep]")
        else:
            e.emit(f"act = _np.nonzero(_np.take({g}_sid, bofs + state) >= 0)[0]")
            with e.block("while act.size:"):
                e.emit("t = state[act]")
                e.emit("idx = bofs[act] + t")
                self.eval_tile("idx", "fidx")
                e.emit(f"nxt = t * {arity} + ci + 1")
                e.emit("state[act] = nxt")
                e.emit(f"act = act[_np.take({g}_sid, bofs[act] + nxt) >= 0]")
        e.emit(f"vals = _np.take({g}_lv, bofs + state)")


def _emit_group(e: _Emitter, lir: LIRModule, group: LIRGroup, vec: bool, target: str) -> None:
    """Emit the tree-chunk loop + walk + accumulation for one group."""
    g = f"g{group.group_id}"
    layout = group.layout
    if group.trivial:
        # Depth-0 group: every member tree is a single leaf; its contribution
        # is a per-class constant folded at compile time.
        e.emit(f"{target} += {g}_const")
        e.emit()
        return
    if layout.kind == "sparse" and bool(layout.root_leaf.any()):
        raise CodegenError("single-leaf tree in a non-trivial group")
    width = max(1, group.walk.width)
    num_trees = layout.num_trees
    ge = _GroupEmitter(e, lir, group, vec)
    e.emit(f"# group {group.group_id}: {num_trees} trees, {layout.kind} layout, "
           f"{group.walk.describe()}")
    with e.block(f"for c0 in range(0, {num_trees}, {width}):"):
        e.emit(f"k = min({width}, {num_trees} - c0)")
        # Flat base offsets of this chunk's lanes: tiles and leaf values.
        e.emit(f"bofs0 = {g}_laneT[c0:c0 + k]")
        e.emit("bofs = bofs0" if not vec else "bofs = bofs0[None, :]")
        if layout.kind == "sparse":
            e.emit(f"lofs = {g}_laneL[c0:c0 + k]" + ("[None, :]" if vec else ""))
            ge.sparse_walk()
        else:
            ge.array_walk()
        e.emit(f"{target} += vals @ {g}_oh[c0:c0 + k]")
    e.emit()


def emit_module_source(lir: LIRModule) -> str:
    """Emit the full ``predict_block(rows, out)`` source for ``lir``.

    ``rows`` is a C-contiguous ``(B, F)`` float64 batch; ``out`` a
    ``(B, num_classes)`` float64 accumulator pre-filled by the caller with
    the base score. Model buffers resolve from the JIT namespace.
    """
    e = _Emitter()
    one_row = lir.mir.loop_order == "one-row"
    e.emit('"""Generated by repro.backend.codegen — do not edit."""')
    with e.block("def predict_block(rows, out):"):
        e.emit("B = rows.shape[0]")
        if not one_row:
            e.emit("rowsf = rows.reshape(-1)")
            e.emit(f"rof0 = _np.arange(B, dtype=_np.int64) * {lir.num_features}")
            e.emit("rof = rof0[:, None, None]")
            e.emit()
            for group in lir.groups:
                _emit_group(e, lir, group, vec=True, target="out")
        else:
            with e.block("for i in range(B):"):
                e.emit("row = rows[i]")
                e.emit("acc = out[i]")
                for group in lir.groups:
                    _emit_group(e, lir, group, vec=False, target="acc")
        e.emit("return out")
    return e.source()


def build_namespace(lir: LIRModule) -> dict:
    """The globals the generated source runs against.

    Layout buffers are flattened with per-lane base offsets precomputed and
    all index-bearing arrays widened to int64 (NumPy's fast path for
    ``take``). The LUT is flattened to one int64 vector indexed by
    ``shape_id * row_length + bits``.
    """
    ns: dict = {"_np": np, "lut": np.ascontiguousarray(lir.lut, dtype=np.int64).reshape(-1)}
    dummy_sid = lir.dummy_shape_id
    has_dummy = dummy_sid is not None
    single_real = lir.lut.shape[0] - (1 if has_dummy else 0) == 1
    if single_real:
        # Single-real-shape specialization: the LUT collapses to the real
        # row; dummy tiles are masked via the per-group `_nd` buffers below.
        real_sid = next(i for i in range(lir.lut.shape[0]) if i != dummy_sid)
        ns["lut1"] = np.ascontiguousarray(lir.lut[real_sid], dtype=np.int64)
    for group in lir.groups:
        g = f"g{group.group_id}"
        layout = group.layout
        num_classes = lir.num_classes
        if group.trivial:
            const = np.zeros(num_classes, dtype=np.float64)
            if layout.kind == "sparse":
                values = layout.leaves[:, 0]
            else:
                values = layout.leaf_values[:, 0]
            np.add.at(const, layout.class_ids, values)
            ns[f"{g}_const"] = const
            continue
        k, tiles, width = layout.thresholds.shape
        if width > 8:
            ns["p2"] = (1 << np.arange(width, dtype=np.uint32))
        ns[f"{g}_th"] = np.ascontiguousarray(
            layout.thresholds.reshape(k * tiles, width), dtype=np.float64
        )
        ns[f"{g}_fi"] = np.ascontiguousarray(
            layout.features.reshape(k * tiles, width), dtype=np.int64
        )
        ns[f"{g}_sid"] = layout.shape_ids.reshape(-1).astype(np.int64)
        if single_real and has_dummy:
            # 0 at dummy tiles, 1 elsewhere: forces dummy child index to 0
            # independent of the (speculative) padding comparisons.
            ns[f"{g}_nd"] = (
                layout.shape_ids.reshape(-1) != dummy_sid
            ).astype(np.int64)
        ns[f"{g}_laneT"] = np.arange(k, dtype=np.int64) * tiles
        if layout.kind == "sparse":
            ns[f"{g}_cb"] = layout.child_base.reshape(-1).astype(np.int64)
            leaves = layout.leaves
            ns[f"{g}_lv"] = np.ascontiguousarray(leaves.reshape(-1), dtype=np.float64)
            ns[f"{g}_laneL"] = np.arange(k, dtype=np.int64) * leaves.shape[1]
        else:
            ns[f"{g}_lv"] = np.ascontiguousarray(
                layout.leaf_values.reshape(-1), dtype=np.float64
            )
            # Array layout leaf offsets coincide with tile offsets (per-slot
            # leaf values), so laneT doubles as the value base.
        onehot = np.zeros((layout.num_trees, num_classes), dtype=np.float64)
        onehot[np.arange(layout.num_trees), layout.class_ids] = 1.0
        ns[f"{g}_oh"] = onehot
    return ns
