"""NumPy source generation for compiled inference functions.

``emit_module_source`` walks an :class:`~repro.lir.ir.LIRModule` and emits
the body of ``predict_block(rows, out, arena=None)``. The emitted
statements follow the walk-step op sequence of Section V-A one to one,
using the fastest NumPy realization of each op:

========================  ================================================
LIR op                    emitted statement
========================  ================================================
loadThresholds            ``thr = _np.take(g_th, idx, axis=0)``
loadFeatureIndices        ``fidx = _np.take(g_fi, idx, axis=0)``
gatherFeatures            ``feat = _np.take(rowsf, rof + fidx)``
vectorCompare             ``cmp = feat < thr``
packBits                  integer reinterpretation of the bool vector
                          (the movemask analog; see ``_pack_bits_expr``)
loadTileShape             ``sid = _np.take(g_sid, idx)``
lookupChildIndex          ``ci = _np.take(lut, sid * LUTC + bits)``
advanceToChild            layout-specific child arithmetic
========================  ================================================

Buffers are stored flattened with 64-bit index math (``np.take`` on int64
indices is several times faster than multi-axis advanced indexing), and
tile storage is padded to a power-of-two lane width so the comparison
vector can be reinterpreted as a single integer per tile.

Two temporary-buffer policies exist, selected by ``Schedule.scratch``:

* ``"arena"`` (default): every step temporary is written into a
  preallocated per-thread :class:`~repro.lir.memory.ScratchArena` buffer
  via ``out=`` (``np.take(..., mode='clip', out=...)``,
  ``np.less(..., out=...)``, …) — the NumPy substitute for the paper's
  generated SIMD loop keeping its working set in registers and fixed
  buffers across walk steps. ``mode='clip'`` skips NumPy's bounds-check
  buffering; indices are in range by construction. The steady-state hot
  path allocates nothing.
* ``"alloc"``: the legacy emitter — a fresh temporary per op — kept as the
  benchmark/ablation reference.

``Schedule.precision`` specializes element widths: under ``"float32"`` the
threshold/feature/leaf/one-hot buffers (and the input rows) are float32 and
the feature-index buffer is int32, halving model-buffer memory traffic
(the paper's element-width discussion). The output accumulator stays
float64 regardless. Under the integer modes ``"int16"``/``"int8"``
(:mod:`repro.lir.quantize`) the kernel grows a prologue that rank-codes
the incoming batch once per feature (``searchsorted`` against the
compiled cut tables), the walk compares/gathers int16/int8 codes, leaf
codes accumulate into a float64 ``qacc`` (integer sums below 2**53 are
exact in a double, and carrying the codes in float buffers lets the chunk
matmul use BLAS instead of NumPy's slow integer loop — see
:func:`repro.lir.memory.quant_mm_dtype`), and one boundary statement
rescales: ``out += qacc * _qs``. Threshold routing under quantization is
*exact* (rank codes preserve every comparison), so only the fixed-point
leaf rounding separates quantized output from the float64 reference.

Walk styles lower differently: ``unrolled`` emits straight-line step
sequences with no termination checks; ``peeled`` emits check-free prologue
steps followed by the guarded loop; ``loop`` emits the guarded loop only.
The guarded loop uses *active-lane compaction* — finished (row, tree) walks
leave the working set, the vectorized analog of the scalar walk's early
exit, which is what probability-based tiling's shorter expected walks pay
into. The tree-chunk loop realizes walk interleaving: all ``width`` jammed
walks advance inside the same vector statements. Compaction inherently
allocates (``nonzero``, boolean indexing); the arena covers its lane-sized
gathers, which dominate.

NaN caveat: speculative evaluation relies on padding predicates
(``x < +inf``) being true, which fails for NaN inputs — the predictor
validates rows before calling the kernel.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.config import PRECISION_TABLE
from repro.errors import CodegenError
from repro.lir.ir import LIRGroup, LIRModule
from repro.lir.memory import ScratchArena, arena_spec, quant_mm_dtype
from repro.observe.profile import ProfileRecorder


class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.depth + text if text else "")

    def block(self, header: str) -> "_IndentCtx":
        self.emit(header)
        return _IndentCtx(self)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _IndentCtx:
    def __init__(self, emitter: _Emitter) -> None:
        self.emitter = emitter

    def __enter__(self):
        self.emitter.depth += 1
        return self.emitter

    def __exit__(self, *exc):
        self.emitter.depth -= 1
        return False


def _pack_bits_expr(width: int) -> str:
    """Pack the bool comparison vector (last axis = ``width``, a power of
    two) into integer predicate bits — the movemask analog.

    The trick: a fresh bool array stores one byte per lane, so the last axis
    can be reinterpreted as a single unsigned integer whose byte ``i`` is
    lane ``i``'s outcome; one multiply gathers the bytes into the top byte
    (LSB-first), one shift extracts them.
    """
    if width == 1:
        return "cmp[..., 0]"
    if width == 2:
        return (
            "(lambda v: (v | (v >> _np.uint16(7))) & _np.uint16(3))"
            "(cmp.view(_np.uint16)[..., 0])"
        )
    if width == 4:
        return (
            "((cmp.view(_np.uint32)[..., 0] * _np.uint32(0x01020408)) "
            ">> _np.uint32(24)) & _np.uint32(15)"
        )
    if width == 8:
        return (
            "((cmp.view(_np.uint64)[..., 0] * _np.uint64(0x0102040810204080)) "
            ">> _np.uint64(56)).astype(_np.int64)"
        )
    # Wide tiles (>8): generic matmul fallback.
    return "(cmp.astype(_np.uint32) @ p2).astype(_np.int64)"


class _GroupEmitter:
    """Emits the chunked walk for one tree group."""

    def __init__(self, e: _Emitter, lir: LIRModule, group: LIRGroup, vec: bool) -> None:
        self.e = e
        self.lir = lir
        self.group = group
        self.vec = vec
        self.g = f"g{group.group_id}"
        self.layout = group.layout
        self.width = self.layout.thresholds.shape[2]
        self.lut_cols = lir.lut.shape[1]
        self.has_dummy = lir.dummy_shape_id is not None
        self.arena = lir.schedule.scratch == "arena"
        self.profile = lir.schedule.profile
        # Number of LUT rows describing *real* tile shapes (the reserved
        # dummy row routes data-independently and is handled by masking).
        self.real_shapes = lir.lut.shape[0] - (1 if self.has_dummy else 0)
        #: hot/cold split plan (Schedule(pgo=...)); None for ordinary groups
        self.hot = group.hot
        #: tile-buffer name infix: "" for the full buffers, "h" while the
        #: hot prefix is emitted (see ``buf`` and ``emit_hot``)
        self.p = ""

    def buf(self, name: str) -> str:
        """Group buffer reference, routed to the hot prefix copies while
        the hot phase is being emitted (``g0_th`` vs ``g0_hth``)."""
        return f"{self.g}_{self.p}{name}"

    # -- arena view management ----------------------------------------
    @property
    def _full_n(self) -> str:
        """Scalar element count of the full (uncompacted) working set."""
        return "B * k" if self.vec else "k"

    @property
    def _full_shape(self) -> str:
        return "B, k" if self.vec else "k"

    def _needs_pack(self) -> bool:
        single_shape = self.real_shapes == 1
        return self.width in (2, 4, 8) and not (single_shape and self.width == 1)

    # -- profiling (Schedule.profile) ----------------------------------
    def prof(self, text: str) -> None:
        """Emit a profiling-counter statement — only under ``profile=True``.

        With profiling off this is a no-op, so the generated source carries
        zero profiling references (compiled out, not branched over).
        """
        if self.profile:
            self.e.emit(text)

    def _scratch_bytes_per_elem(self, full: bool) -> int:
        """Bytes of arena views bound per working-set element (compile-time
        constant, so the emitted increment is one multiply). Element and
        feature-index widths come from the schedule precision table — the
        same source of truth :func:`~repro.lir.memory.arena_spec` sizes
        the arena from."""
        info = PRECISION_TABLE[self.lir.schedule.precision]
        fsize, isize = info.element_size, info.findex_size
        per = self.width * (2 * fsize + isize + 1)      # thr, feat, fidx, cmp
        if self.vec:
            per += self.width * 8                       # gidx
        per += 3 * 8                                    # ci, sid, base
        if self._needs_pack():
            per += self.width                           # pv (uint{W*8})
        if full:
            per += 8                                    # idx
        return per

    def bind_scratch(self, n_expr: str, shape: str, full: bool) -> None:
        """Bind shaped arena views for the step temporaries.

        ``shape`` is a dims string like ``"B, k"`` or ``"m"``; lane views
        append the tile width. ``full`` additionally binds ``idx``/``state``
        (compaction steps compute their own index vectors and mutate the
        chunk-level ``state`` view in place).
        """
        e, W = self.e, self.width
        lane = f"_n * {W}" if W > 1 else "_n"
        e.emit(f"_n = {n_expr}")
        e.emit(f"thr = _A.f0[:{lane}].reshape({shape}, {W})")
        e.emit(f"feat = _A.f1[:{lane}].reshape({shape}, {W})")
        e.emit(f"fidx = _A.i0[:{lane}].reshape({shape}, {W})")
        if self.vec:
            e.emit(f"gidx = _A.i1[:{lane}].reshape({shape}, {W})")
        e.emit(f"cmp = _A.c0[:{lane}].reshape({shape}, {W})")
        e.emit(f"ci = _A.i3[:_n].reshape({shape})")
        e.emit(f"sid = _A.i4[:_n].reshape({shape})")
        e.emit(f"base = _A.i6[:_n].reshape({shape})")
        if self._needs_pack():
            e.emit(f"pv = _A.p{self.width * 8}[:_n].reshape({shape})")
        if full:
            e.emit(f"idx = _A.i2[:_n].reshape({shape})")
        self.prof(f"_C.scratch_bytes += _n * {self._scratch_bytes_per_elem(full)}")

    def bind_vals(self) -> None:
        """Bind the leaf-value view at full working-set shape (the final
        loads run after compaction loops may have shadowed the views).

        Quantized modules bind the dedicated ``qv`` buffer: leaf codes are
        float-carried (exact integers) so the chunk matmul hits BLAS, and
        the element-dtype ``f1`` view cannot hold them."""
        buf = "qv" if self.lir.quant is not None else "f1"
        self.e.emit(
            f"vals = _A.{buf}[:{self._full_n}].reshape({self._full_shape})"
        )

    def _rebind_idx(self) -> None:
        self.e.emit(f"idx = _A.i2[:{self._full_n}].reshape({self._full_shape})")

    # -- shared op fragments ------------------------------------------
    def eval_tile(self, idx: str, feat_index: str) -> None:
        """The evaluateTilePredicates sequence at flat tile indices ``idx``.

        Model-specific specialization (the compiler knows the tiled model
        statically): when every real tile in the model shares one shape,
        the shape load + full LUT lookup are elided — the LUT collapses to
        its single real row, and for tile size 1 the whole lookup folds to
        ``1 - bit`` (true goes to child 0, the left subtree). If the model
        also contains dummy (padding/hop) tiles, a 0/1 non-dummy mask
        forces their child index to 0 regardless of the speculative
        comparisons (which can be false for ``+inf`` inputs).
        """
        if self.arena:
            self._eval_tile_arena(idx, feat_index)
            return
        e = self.e
        single_shape = self.real_shapes == 1
        e.emit(f"thr = _np.take({self.buf('th')}, {idx}, axis=0)")    # loadThresholds
        e.emit(f"fidx = _np.take({self.buf('fi')}, {idx}, axis=0)")   # loadFeatureIndices
        e.emit(f"feat = _np.take({self._rowsrc()}, {feat_index})")  # gatherFeatures
        e.emit("cmp = feat < thr")                          # vectorCompare
        if single_shape and self.width == 1:
            # packBits + lookupChildIndex folded into one arithmetic op.
            e.emit("ci = 1 - cmp[..., 0]")
            self._mask_dummies(idx)
            return
        e.emit(f"bits = {_pack_bits_expr(self.width)}")     # packBits
        if single_shape:
            e.emit("ci = _np.take(lut1, bits)")             # lookupChildIndex
            self.prof(f"_C.lut_lookups += ({idx}).size")
            self._mask_dummies(idx)
            return
        e.emit(f"sid = _np.take({self.buf('sid')}, {idx})")  # loadTileShape
        e.emit(f"ci = _np.take(lut, sid * {self.lut_cols} + bits)")  # lookupChildIndex
        self.prof(f"_C.lut_lookups += ({idx}).size")

    def _eval_tile_arena(self, idx: str, feat_index: str) -> None:
        """Arena realization of the same op sequence: every temporary lands
        in a preallocated buffer via ``out=`` and in-range gathers use
        ``mode='clip'`` to skip NumPy's bounds-check buffering."""
        e, W = self.e, self.width
        single_shape = self.real_shapes == 1
        e.emit(f"_np.take({self.buf('th')}, {idx}, axis=0, mode='clip', out=thr)")
        e.emit(f"_np.take({self.buf('fi')}, {idx}, axis=0, mode='clip', out=fidx)")
        if self.vec:
            e.emit(f"_np.add({feat_index}, fidx, out=gidx)")
            e.emit("_np.take(rowsf, gidx, mode='clip', out=feat)")
        else:
            e.emit("_np.take(row, fidx, mode='clip', out=feat)")
        e.emit("_np.less(feat, thr, out=cmp)")
        if single_shape and W == 1:
            e.emit("_np.subtract(1, cmp[..., 0], out=ci)")
            self._mask_dummies_arena(idx)
            return
        self._emit_pack_arena()
        if single_shape:
            e.emit("_np.take(lut1, bits, mode='clip', out=ci)")
            self.prof(f"_C.lut_lookups += ({idx}).size")
            self._mask_dummies_arena(idx)
            return
        e.emit(f"_np.take({self.buf('sid')}, {idx}, mode='clip', out=sid)")
        e.emit(f"_np.multiply(sid, {self.lut_cols}, out=sid)")
        e.emit("_np.add(sid, bits, out=sid)")
        e.emit("_np.take(lut, sid, mode='clip', out=ci)")
        self.prof(f"_C.lut_lookups += ({idx}).size")

    def _emit_pack_arena(self) -> None:
        """packBits into the width-matched unsigned scratch (``pv``); wrap
        semantics of the movemask multiply require computing in the exact
        unsigned dtype, so ``pv``'s dtype is fixed at arena build time."""
        e, W = self.e, self.width
        if W == 1:
            e.emit("bits = cmp[..., 0]")
            return
        if W == 2:
            e.emit("v2 = cmp.view(_np.uint16)[..., 0]")
            e.emit("_np.right_shift(v2, _np.uint16(7), out=pv)")
            e.emit("_np.bitwise_or(pv, v2, out=pv)")
            e.emit("_np.bitwise_and(pv, _np.uint16(3), out=pv)")
            e.emit("bits = pv")
            return
        if W == 4:
            e.emit(
                "_np.multiply(cmp.view(_np.uint32)[..., 0], "
                "_np.uint32(0x01020408), out=pv)"
            )
            e.emit("_np.right_shift(pv, _np.uint32(24), out=pv)")
            e.emit("_np.bitwise_and(pv, _np.uint32(15), out=pv)")
            e.emit("bits = pv")
            return
        if W == 8:
            e.emit(
                "_np.multiply(cmp.view(_np.uint64)[..., 0], "
                "_np.uint64(0x0102040810204080), out=pv)"
            )
            e.emit("_np.right_shift(pv, _np.uint64(56), out=pv)")
            # Post-shift values fit a byte; reinterpret instead of casting
            # (uint64 + int64 index math would promote to float64).
            e.emit("bits = pv.view(_np.int64)")
            return
        # Wide tiles (>8): generic matmul fallback, allocating (rare).
        e.emit(f"bits = {_pack_bits_expr(W)}")

    def _mask_dummies(self, idx: str) -> None:
        """Zero the child index at dummy tiles (single-real-shape paths)."""
        if self.has_dummy:
            self.e.emit(f"ci *= _np.take({self.buf('nd')}, {idx})")

    def _mask_dummies_arena(self, idx: str) -> None:
        if self.has_dummy:
            # `sid` is free here: single-real-shape paths never load shapes.
            self.e.emit(f"_np.take({self.buf('nd')}, {idx}, mode='clip', out=sid)")
            self.e.emit("_np.multiply(ci, sid, out=ci)")

    def _rowsrc(self) -> str:
        return "rowsf" if self.vec else "row"

    def _feat_full(self) -> str:
        """Feature gather index for full (B, k) state."""
        if self.arena:
            return "rof" if self.vec else "fidx"
        return "rof + fidx" if self.vec else "fidx"

    def _feat_act(self) -> str:
        """Feature gather index for compacted active positions."""
        if self.arena:
            return "rof0[act_r][:, None]" if self.vec else "fidx"
        return "rof0[act_r][:, None] + fidx" if self.vec else "fidx"

    def _init_state(self) -> None:
        e = self.e
        if self.hot is not None:
            # Hot/cold split: the cold tail starts from the tile indices the
            # hot phase left in hstate — prefix and full buffers share tile
            # numbering, so the carried state needs no translation. The
            # slice is used directly as the chunk state; every cold mutation
            # pattern (out=, fancy assignment, rebinding) is view-safe.
            src = "hstate[:, c0:c0 + k]" if self.vec else "hstate[c0:c0 + k]"
            e.emit(f"state = {src}")
        elif self.arena:
            e.emit(f"state = _A.i5[:_n].reshape({self._full_shape})")
            e.emit("state[...] = 0")
        else:
            shape = "(B, k)" if self.vec else "(k,)"
            e.emit(f"state = _np.zeros({shape}, dtype=_np.int64)")

    # -- hot prefix (Schedule(pgo=...)) --------------------------------
    def emit_hot(self) -> None:
        """Emit the check-free hot phase over the compact prefix buffers.

        Runs before the cold chunk loop: every walk of the group advances
        ``hot.depth`` levels with no leaf/termination checks (legality
        guarantees only internal tiles above the cutoff), at a much wider
        jam width than the guarded cold tail, reading the ``g_h*`` prefix
        copies whose small footprint stays cache-resident. The resulting
        tile indices land in ``hstate``; cold chunks seed from its slices.
        """
        e, g, hot = self.e, self.g, self.hot
        nt = self.layout.num_trees
        hw = min(hot.width, nt)
        sparse = self.layout.kind == "sparse"
        arity = self.layout.tile_size + 1
        e.emit(
            f"# hot prefix: {hot.depth} levels over {hot.tiles} tiles/lane "
            f"(jam x{hw})"
        )
        if self.arena:
            if self.vec:
                e.emit(f"hstate = _A.hs[:B * {nt}].reshape(B, {nt})")
            else:
                e.emit(f"hstate = _A.hs[:{nt}]")
        else:
            shape = f"(B, {nt})" if self.vec else f"({nt},)"
            e.emit(f"hstate = _np.empty({shape}, dtype=_np.int64)")
        self.p = "h"
        with e.block(f"for c0 in range(0, {nt}, {hw}):"):
            e.emit(f"k = min({hw}, {nt} - c0)")
            e.emit(f"bofs0 = {g}_hlaneT[c0:c0 + k]")
            e.emit("bofs = bofs0[None, :]" if self.vec else "bofs = bofs0")
            if self.arena:
                self.bind_scratch(self._full_n, self._full_shape, full=True)
            src = "hstate[:, c0:c0 + k]" if self.vec else "hstate[c0:c0 + k]"
            e.emit(f"state = {src}")
            e.emit("state[...] = 0")
            for _ in range(hot.depth):
                if self.arena:
                    e.emit("_np.add(bofs, state, out=idx)")
                    self.eval_tile("idx", self._feat_full())
                    if sparse:
                        e.emit(
                            f"_np.take({self.buf('cb')}, idx, mode='clip', "
                            "out=base)"
                        )
                        e.emit("_np.add(base, ci, out=state)")
                    else:
                        e.emit(f"_np.multiply(state, {arity}, out=state)")
                        e.emit("_np.add(state, ci, out=state)")
                        e.emit("_np.add(state, 1, out=state)")
                else:
                    e.emit("idx = bofs + state")
                    self.eval_tile("idx", self._feat_full())
                    # write through: hstate must carry into the cold loop
                    if sparse:
                        e.emit(
                            f"state[...] = _np.take({self.buf('cb')}, idx) + ci"
                        )
                    else:
                        e.emit(f"state[...] = state * {arity} + ci + 1")
                self.prof("_C.walk_steps += idx.size")
                e.emit()
        self.p = ""

    # -- sparse layout -------------------------------------------------
    def sparse_walk(self) -> None:
        e, g = self.e, self.g
        arena = self.arena
        walk = self.group.walk
        # Levels already walked by the hot phase; straight-line cold styles
        # emit that many fewer steps (guarded loops terminate by state).
        hot_done = self.hot.depth if self.hot is not None else 0
        if arena:
            self.bind_scratch(self._full_n, self._full_shape, full=True)
        self._init_state()

        def advance() -> None:
            if arena:
                e.emit("_np.add(bofs, state, out=idx)")
                self.eval_tile("idx", self._feat_full())
                e.emit(f"_np.take({g}_cb, idx, mode='clip', out=base)")
                e.emit("_np.add(base, ci, out=state)")
            else:
                e.emit("idx = bofs + state")
                self.eval_tile("idx", self._feat_full())
                e.emit(f"state = _np.take({g}_cb, idx) + ci")    # advanceToChild
            self.prof("_C.walk_steps += idx.size")
            e.emit()

        if walk.style == "unrolled":
            for _ in range(walk.depth - 1 - hot_done):
                advance()
            # Final step: uniform depth guarantees the leaves array.
            if arena:
                e.emit("_np.add(bofs, state, out=idx)")
                self.eval_tile("idx", self._feat_full())
                e.emit(f"_np.take({g}_cb, idx, mode='clip', out=base)")
                e.emit("_np.subtract(lofs, base, out=base)")
                e.emit("_np.subtract(base, 1, out=base)")
                e.emit("_np.add(base, ci, out=base)")
                self.bind_vals()
                e.emit(f"_np.take({g}_lv, base, mode='clip', out=vals)")
            else:
                e.emit("idx = bofs + state")
                self.eval_tile("idx", self._feat_full())
                e.emit(f"base = _np.take({g}_cb, idx)")
                e.emit(f"vals = _np.take({g}_lv, lofs - base - 1 + ci)")
            self.prof("_C.walk_steps += idx.size")
            self.prof(f"_C.unrolled_steps += {walk.depth - hot_done}")
            return

        if walk.style == "peeled":
            for _ in range(walk.peel - hot_done):
                advance()
            if walk.peel - hot_done > 0:
                self.prof(f"_C.peeled_steps += {walk.peel - hot_done}")

        if not self.lir.schedule.compact_walks:
            # Ablation path: masked loop. Finished lanes re-evaluate the
            # root harmlessly and keep their state under the mask; the loop
            # runs to the *slowest* lane's depth.
            e.emit("alive = state >= 0")
            if arena:
                e.emit(f"t = _A.i7[:_n].reshape({self._full_shape})")
            with e.block("while alive.any():"):
                self.prof("_pa = int(alive.sum())")
                self.prof("_C.walk_steps += _pa")
                self.prof("_C.rows_masked += alive.size - _pa")
                self.prof("_C.loop_iterations += 1")
                if arena:
                    e.emit("_np.multiply(state, alive, out=t)")
                    e.emit("_np.add(bofs, t, out=idx)")
                    self.eval_tile("idx", self._feat_full())
                    e.emit(f"_np.take({g}_cb, idx, mode='clip', out=base)")
                    e.emit("nxt = _np.where(base >= 0, base + ci, base - ci)")
                    e.emit("_np.copyto(state, nxt, where=alive)")
                    e.emit("_np.greater_equal(state, 0, out=alive)")
                else:
                    e.emit("t = _np.where(alive, state, 0)")
                    e.emit("idx = bofs + t")
                    self.eval_tile("idx", self._feat_full())
                    e.emit(f"base = _np.take({g}_cb, idx)")
                    e.emit("nxt = _np.where(base >= 0, base + ci, base - ci)")
                    e.emit("state = _np.where(alive, nxt, state)")
                    e.emit("alive = state >= 0")
        elif self.vec:
            e.emit("act_r, act_l = _np.nonzero(state >= 0)")
            with e.block("while act_r.size:"):
                self.prof("_C.walk_steps += act_r.size")
                self.prof("_C.loop_iterations += 1")
                if arena:
                    self.bind_scratch("act_r.size", "_n", full=False)
                e.emit("t = state[act_r, act_l]")
                e.emit("idx = bofs0[act_l] + t")
                self.eval_tile("idx", self._feat_act())
                if arena:
                    e.emit(f"_np.take({g}_cb, idx, mode='clip', out=base)")
                else:
                    e.emit(f"base = _np.take({g}_cb, idx)")
                e.emit("nxt = _np.where(base >= 0, base + ci, base - ci)")
                e.emit("state[act_r, act_l] = nxt")
                e.emit("keep = nxt >= 0")
                e.emit("act_r = act_r[keep]")
                e.emit("act_l = act_l[keep]")
        else:
            e.emit("act = _np.nonzero(state >= 0)[0]")
            with e.block("while act.size:"):
                self.prof("_C.walk_steps += act.size")
                self.prof("_C.loop_iterations += 1")
                if arena:
                    self.bind_scratch("act.size", "_n", full=False)
                e.emit("t = state[act]")
                e.emit("idx = bofs[act] + t")
                self.eval_tile("idx", "fidx")
                if arena:
                    e.emit(f"_np.take({g}_cb, idx, mode='clip', out=base)")
                else:
                    e.emit(f"base = _np.take({g}_cb, idx)")
                e.emit("nxt = _np.where(base >= 0, base + ci, base - ci)")
                e.emit("state[act] = nxt")
                e.emit("act = act[nxt >= 0]")
        if arena:
            self._rebind_idx()
            e.emit("_np.subtract(lofs, state, out=idx)")
            e.emit("_np.subtract(idx, 1, out=idx)")
            self.bind_vals()
            e.emit(f"_np.take({g}_lv, idx, mode='clip', out=vals)")
        else:
            e.emit(f"vals = _np.take({g}_lv, lofs - state - 1)")

    # -- array layout ----------------------------------------------------
    def array_walk(self) -> None:
        e, g = self.e, self.g
        arena = self.arena
        walk = self.group.walk
        arity = self.layout.tile_size + 1
        hot_done = self.hot.depth if self.hot is not None else 0
        if arena:
            self.bind_scratch(self._full_n, self._full_shape, full=True)
        self._init_state()

        def advance() -> None:
            if arena:
                e.emit("_np.add(bofs, state, out=idx)")
                self.eval_tile("idx", self._feat_full())
                e.emit(f"_np.multiply(state, {arity}, out=state)")
                e.emit("_np.add(state, ci, out=state)")
                e.emit("_np.add(state, 1, out=state)")
            else:
                e.emit("idx = bofs + state")
                self.eval_tile("idx", self._feat_full())
                e.emit(f"state = state * {arity} + ci + 1")
            self.prof("_C.walk_steps += idx.size")
            e.emit()

        def final_vals() -> None:
            if arena:
                self._rebind_idx()
                e.emit("_np.add(bofs, state, out=idx)")
                self.bind_vals()
                e.emit(f"_np.take({g}_lv, idx, mode='clip', out=vals)")
            else:
                e.emit(f"vals = _np.take({g}_lv, bofs + state)")

        if walk.style == "unrolled":
            for _ in range(walk.depth - hot_done):
                advance()
            self.prof(f"_C.unrolled_steps += {walk.depth - hot_done}")
            final_vals()
            return

        if walk.style == "peeled":
            for _ in range(walk.peel - hot_done):
                advance()
            if walk.peel - hot_done > 0:
                self.prof(f"_C.peeled_steps += {walk.peel - hot_done}")

        if not self.lir.schedule.compact_walks:
            # Ablation path: masked loop (see the sparse variant).
            if arena:
                e.emit("_np.add(bofs, state, out=idx)")
                e.emit(f"alive = _np.take({g}_sid, idx) >= 0")
                e.emit(f"t = _A.i7[:_n].reshape({self._full_shape})")
            else:
                e.emit(f"alive = _np.take({g}_sid, bofs + state) >= 0")
            with e.block("while alive.any():"):
                self.prof("_pa = int(alive.sum())")
                self.prof("_C.walk_steps += _pa")
                self.prof("_C.rows_masked += alive.size - _pa")
                self.prof("_C.loop_iterations += 1")
                if arena:
                    e.emit("_np.multiply(state, alive, out=t)")
                    e.emit("_np.add(bofs, t, out=idx)")
                    self.eval_tile("idx", self._feat_full())
                    e.emit(f"_np.multiply(t, {arity}, out=base)")
                    e.emit("_np.add(base, ci, out=base)")
                    e.emit("_np.add(base, 1, out=base)")
                    e.emit("_np.copyto(state, base, where=alive)")
                    e.emit("_np.add(bofs, state, out=idx)")
                    e.emit(f"_np.take({g}_sid, idx, mode='clip', out=t)")
                    e.emit("_np.greater_equal(t, 0, out=alive)")
                else:
                    e.emit("t = _np.where(alive, state, 0)")
                    e.emit("idx = bofs + t")
                    self.eval_tile("idx", self._feat_full())
                    e.emit(f"nxt = t * {arity} + ci + 1")
                    e.emit("state = _np.where(alive, nxt, state)")
                    e.emit(f"alive = _np.take({g}_sid, bofs + state) >= 0")
            final_vals()
            return

        if self.vec:
            e.emit(f"act_r, act_l = _np.nonzero(_np.take({g}_sid, bofs + state) >= 0)")
            with e.block("while act_r.size:"):
                self.prof("_C.walk_steps += act_r.size")
                self.prof("_C.loop_iterations += 1")
                if arena:
                    self.bind_scratch("act_r.size", "_n", full=False)
                e.emit("t = state[act_r, act_l]")
                e.emit("idx = bofs0[act_l] + t")
                self.eval_tile("idx", self._feat_act())
                e.emit(f"nxt = t * {arity} + ci + 1")
                e.emit("state[act_r, act_l] = nxt")
                e.emit(f"keep = _np.take({g}_sid, bofs0[act_l] + nxt) >= 0")
                e.emit("act_r = act_r[keep]")
                e.emit("act_l = act_l[keep]")
        else:
            e.emit(f"act = _np.nonzero(_np.take({g}_sid, bofs + state) >= 0)[0]")
            with e.block("while act.size:"):
                self.prof("_C.walk_steps += act.size")
                self.prof("_C.loop_iterations += 1")
                if arena:
                    self.bind_scratch("act.size", "_n", full=False)
                e.emit("t = state[act]")
                e.emit("idx = bofs[act] + t")
                self.eval_tile("idx", "fidx")
                e.emit(f"nxt = t * {arity} + ci + 1")
                e.emit("state[act] = nxt")
                e.emit(f"act = act[_np.take({g}_sid, bofs[act] + nxt) >= 0]")
        final_vals()


def _emit_group(e: _Emitter, lir: LIRModule, group: LIRGroup, vec: bool, target: str) -> None:
    """Emit the tree-chunk loop + walk + accumulation for one group."""
    g = f"g{group.group_id}"
    layout = group.layout
    arena = lir.schedule.scratch == "arena"
    if group.trivial:
        # Depth-0 group: every member tree is a single leaf; its contribution
        # is a per-class constant folded at compile time.
        e.emit(f"{target} += {g}_const")
        e.emit()
        return
    if layout.kind == "sparse" and bool(layout.root_leaf.any()):
        raise CodegenError("single-leaf tree in a non-trivial group")
    width = max(1, group.walk.width)
    num_trees = layout.num_trees
    ge = _GroupEmitter(e, lir, group, vec)
    e.emit(f"# group {group.group_id}: {num_trees} trees, {layout.kind} layout, "
           f"{group.walk.describe()}")
    if group.hot is not None:
        ge.emit_hot()
    with e.block(f"for c0 in range(0, {num_trees}, {width}):"):
        e.emit(f"k = min({width}, {num_trees} - c0)")
        # Flat base offsets of this chunk's lanes: tiles and leaf values.
        e.emit(f"bofs0 = {g}_laneT[c0:c0 + k]")
        e.emit("bofs = bofs0" if not vec else "bofs = bofs0[None, :]")
        if layout.kind == "sparse":
            e.emit(f"lofs = {g}_laneL[c0:c0 + k]" + ("[None, :]" if vec else ""))
            ge.sparse_walk()
        else:
            ge.array_walk()
        if arena:
            classes = lir.num_classes
            size = f"B * {classes}" if vec else str(classes)
            shape = f"(B, {classes})" if vec else f"({classes},)"
            e.emit(f"mm = _A.fm[:{size}].reshape{shape}")
            e.emit(f"_np.matmul(vals, {g}_oh[c0:c0 + k], out=mm)")
            e.emit(f"_np.add({target}, mm, out={target})")
        else:
            e.emit(f"{target} += vals @ {g}_oh[c0:c0 + k]")
    e.emit()


def emit_module_source(lir: LIRModule) -> str:
    """Emit the full ``predict_block(rows, out, arena)`` source for ``lir``.

    ``rows`` is a C-contiguous ``(B, F)`` batch in the schedule's precision
    dtype; ``out`` a ``(B, num_classes)`` float64 accumulator pre-filled by
    the caller with the base score; ``arena`` the caller's per-thread
    :class:`~repro.lir.memory.ScratchArena` (arena-mode kernels build a
    transient one when omitted). Model buffers resolve from the JIT
    namespace.
    """
    e = _Emitter()
    one_row = lir.mir.loop_order == "one-row"
    arena = lir.schedule.scratch == "arena"
    quant = lir.quant
    F, C = lir.num_features, lir.num_classes
    e.emit('"""Generated by repro.backend.codegen — do not edit."""')
    with e.block("def predict_block(rows, out, arena=None):"):
        e.emit("B = rows.shape[0]")
        if lir.schedule.profile:
            # Kernel profiling (Schedule.profile): bind this thread's
            # counter struct once per invocation; the walk emits plain
            # integer increments against it. Absent when profile=False.
            e.emit("_C = _P.local()")
            e.emit("_C.kernel_calls += 1")
            e.emit("_C.rows += B")
        if arena:
            with e.block("if arena is None:"):
                e.emit("arena = _new_arena()")
            e.emit("_A = arena.ensure(B)")
        if quant is not None:
            # Input pre-quantization prologue: one searchsorted against the
            # per-feature cut table turns each float column into rank codes
            # once per batch; the walk below is integer-only after this.
            if arena and not one_row:
                e.emit(f"qrows = _A.qr[:B * {F}].reshape(B, {F})")
            else:
                e.emit(f"qrows = _np.empty((B, {F}), dtype=_np.{quant.dtype})")
            with e.block(f"for f in range({F}):"):
                e.emit(
                    "qrows[:, f] = _np.searchsorted("
                    "_qc[_qo[f]:_qo[f + 1]], rows[:, f], side='right')"
                )
        if not one_row:
            e.emit("rowsf = qrows.reshape(-1)" if quant is not None
                   else "rowsf = rows.reshape(-1)")
            if arena:
                e.emit("rof0 = _A.rof0[:B]")
            else:
                e.emit(f"rof0 = _np.arange(B, dtype=_np.int64) * {lir.num_features}")
            e.emit("rof = rof0[:, None, None]")
            if quant is not None:
                # Leaf codes accumulate exactly in float64 (integral sums
                # of T trees of |code| <= qmax sit far below 2**53); one
                # rescale at the boundary below.
                if arena:
                    e.emit(f"qacc = _A.qa[:B * {C}].reshape(B, {C})")
                    e.emit("qacc[...] = 0")
                else:
                    e.emit(f"qacc = _np.zeros((B, {C}))")
            e.emit()
            for group in lir.groups:
                _emit_group(
                    e, lir, group, vec=True,
                    target="out" if quant is None else "qacc",
                )
        else:
            if quant is not None:
                e.emit(f"qacc = _np.zeros((B, {C}))")
            with e.block("for i in range(B):"):
                e.emit("row = qrows[i]" if quant is not None else "row = rows[i]")
                e.emit("acc = qacc[i]" if quant is not None else "acc = out[i]")
                for group in lir.groups:
                    _emit_group(e, lir, group, vec=False, target="acc")
        if quant is not None:
            e.emit("out += qacc * _qs")
        e.emit("return out")
    return e.source()


def build_namespace(lir: LIRModule, profile_recorder: ProfileRecorder | None = None) -> dict:
    """The globals the generated source runs against.

    Layout buffers are flattened with per-lane base offsets precomputed and
    all index-bearing arrays widened to int64 (NumPy's fast path for
    ``take``). The LUT is flattened to one int64 vector indexed by
    ``shape_id * row_length + bits``. Under ``precision="float32"`` the
    threshold/leaf/one-hot buffers narrow to float32 and feature indices to
    int32, halving their footprint and memory traffic; index math that
    feeds ``np.take`` stays int64 (its fast path). Arena-mode modules also
    get ``_new_arena``, the fallback scratch factory for direct kernel
    calls.
    """
    info = PRECISION_TABLE[lir.schedule.precision]
    fdt = np.dtype(info.element_dtype)
    idt = np.dtype(info.findex_dtype)
    quant = lir.quant
    ns: dict = {"_np": np, "lut": np.ascontiguousarray(lir.lut, dtype=np.int64).reshape(-1)}
    if quant is not None:
        # Row-quantization tables (the kernel prologue) and the boundary
        # rescale. The scale is a 0-d array so AOT export serializes it
        # like every other namespace buffer.
        ns["_qc"] = np.ascontiguousarray(quant.cuts, dtype=np.float64)
        ns["_qo"] = np.ascontiguousarray(quant.cut_offsets, dtype=np.int64)
        ns["_qs"] = np.asarray(quant.leaf_scale, dtype=np.float64)
    if lir.schedule.scratch == "arena":
        spec = arena_spec(lir)
        ns["_new_arena"] = lambda spec=spec: ScratchArena(spec)
    if lir.schedule.profile:
        # The kernel's `_C = _P.local()` resolves against this recorder. An
        # externally owned recorder (the predictor's) is bound as a weak
        # proxy: exec() installs predict_block into this namespace, closing
        # a namespace<->function cycle that only gc breaks, and a strong
        # `_P` would keep an evicted predictor's counters visible in
        # aggregate_all() until that collection ran. With the proxy, the
        # recorder dies by refcount with its predictor. Only when no owner
        # exists (direct build_namespace calls, AOT export) does the
        # namespace own the recorder itself.
        if profile_recorder is not None:
            ns["_P"] = weakref.proxy(profile_recorder)
        else:
            ns["_P"] = ProfileRecorder()
    # Quantized leaf codes and one-hots are float-carried exact integers
    # so the chunk matmul dispatches to BLAS (see quant_mm_dtype).
    mmdt = np.dtype(quant_mm_dtype(lir))
    dummy_sid = lir.dummy_shape_id
    has_dummy = dummy_sid is not None
    single_real = lir.lut.shape[0] - (1 if has_dummy else 0) == 1
    if single_real:
        # Single-real-shape specialization: the LUT collapses to the real
        # row; dummy tiles are masked via the per-group `_nd` buffers below.
        real_sid = next(i for i in range(lir.lut.shape[0]) if i != dummy_sid)
        ns["lut1"] = np.ascontiguousarray(lir.lut[real_sid], dtype=np.int64)
    for group in lir.groups:
        g = f"g{group.group_id}"
        layout = group.layout
        num_classes = lir.num_classes
        if group.trivial:
            # Quantized modules fold trivial trees as summed leaf codes so
            # they accumulate with the walk's integer codes and share the
            # single boundary rescale (int64 here; the float64 qacc takes
            # the upcast exactly).
            if layout.kind == "sparse":
                values = layout.leaves[:, 0]
            else:
                values = layout.leaf_values[:, 0]
            if quant is not None:
                const = np.zeros(num_classes, dtype=np.int64)
                np.add.at(
                    const, layout.class_ids,
                    quant.quantize_leaves(values).astype(np.int64),
                )
            else:
                const = np.zeros(num_classes, dtype=np.float64)
                np.add.at(const, layout.class_ids, values)
            ns[f"{g}_const"] = const
            continue
        k, tiles, width = layout.thresholds.shape
        if width > 8:
            ns["p2"] = (1 << np.arange(width, dtype=np.uint32))
        if quant is not None:
            # Thresholds become per-feature rank codes (+inf padding maps
            # to the dtype-max sentinel) — routing stays exactly float64's.
            ns[f"{g}_th"] = np.ascontiguousarray(
                quant.quantize_thresholds(
                    layout.thresholds, layout.features
                ).reshape(k * tiles, width)
            )
        else:
            ns[f"{g}_th"] = np.ascontiguousarray(
                layout.thresholds.reshape(k * tiles, width), dtype=fdt
            )
        ns[f"{g}_fi"] = np.ascontiguousarray(
            layout.features.reshape(k * tiles, width), dtype=idt
        )
        ns[f"{g}_sid"] = layout.shape_ids.reshape(-1).astype(np.int64)
        if single_real and has_dummy:
            # 0 at dummy tiles, 1 elsewhere: forces dummy child index to 0
            # independent of the (speculative) padding comparisons.
            ns[f"{g}_nd"] = (
                layout.shape_ids.reshape(-1) != dummy_sid
            ).astype(np.int64)
        ns[f"{g}_laneT"] = np.arange(k, dtype=np.int64) * tiles
        if group.hot is not None:
            # Hot prefix copies (Schedule(pgo=...)): both layouts number
            # tiles in level order, so the first `hot.tiles` positions of
            # each lane are exactly the tiles above the cutoff, at
            # unchanged indices. Slicing the *built* buffers inherits the
            # precision/quantization transforms applied above; the compact
            # contiguous copies are what keeps the hot working set small.
            H = group.hot.tiles
            ns[f"{g}_hth"] = np.ascontiguousarray(
                ns[f"{g}_th"].reshape(k, tiles, width)[:, :H]
            ).reshape(k * H, width)
            ns[f"{g}_hfi"] = np.ascontiguousarray(
                ns[f"{g}_fi"].reshape(k, tiles, width)[:, :H]
            ).reshape(k * H, width)
            ns[f"{g}_hsid"] = np.ascontiguousarray(
                ns[f"{g}_sid"].reshape(k, tiles)[:, :H]
            ).reshape(-1)
            if single_real and has_dummy:
                ns[f"{g}_hnd"] = np.ascontiguousarray(
                    ns[f"{g}_nd"].reshape(k, tiles)[:, :H]
                ).reshape(-1)
            if layout.kind == "sparse":
                ns[f"{g}_hcb"] = np.ascontiguousarray(
                    layout.child_base[:, :H]
                ).reshape(-1).astype(np.int64)
            ns[f"{g}_hlaneT"] = np.arange(k, dtype=np.int64) * H

        def _leaf_buf(values: np.ndarray) -> np.ndarray:
            if quant is not None:
                # Codes are bounded by qmax, so the float carrier is exact.
                return np.ascontiguousarray(
                    quant.quantize_leaves(values), dtype=mmdt
                )
            return np.ascontiguousarray(values, dtype=fdt)

        if layout.kind == "sparse":
            ns[f"{g}_cb"] = layout.child_base.reshape(-1).astype(np.int64)
            leaves = layout.leaves
            ns[f"{g}_lv"] = _leaf_buf(leaves.reshape(-1))
            ns[f"{g}_laneL"] = np.arange(k, dtype=np.int64) * leaves.shape[1]
        else:
            ns[f"{g}_lv"] = _leaf_buf(layout.leaf_values.reshape(-1))
            # Array layout leaf offsets coincide with tile offsets (per-slot
            # leaf values), so laneT doubles as the value base.
        # Quantized one-hots share the float matmul dtype: 0/1 weights are
        # exact in any float, and matching dtypes keep the matmul on BLAS.
        onehot = np.zeros(
            (layout.num_trees, num_classes),
            dtype=mmdt if quant is not None else fdt,
        )
        onehot[np.arange(layout.num_trees), layout.class_ids] = 1
        ns[f"{g}_oh"] = onehot
    return ns
