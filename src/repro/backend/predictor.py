"""The compiled predictor: Treebeard's ``predictForest`` entry point.

Two layers live here:

* :class:`KernelExecutor` — the runtime engine around one compiled
  ``predict_block`` kernel: input validation, output allocation, row
  blocking, parallel fan-out, per-thread scratch arenas, and the objective
  transform. It needs only the kernel plus a handful of scalar facts
  (feature/class counts, base score, dtypes, arena spec) — *not* the
  forest or the lowered module — which is what lets the AOT loader
  (:mod:`repro.backend.aot`) reconstitute a ready executor in a process
  that never ran the compiler.
* :class:`Predictor` — the in-process compile result: a
  :class:`KernelExecutor` that also owns the source forest, the lowered
  module, the compilation trace and the profiling recorder, and exposes
  the introspection hooks used heavily by the tests and experiments
  (generated source, LIR dump, buffer footprints).

Arena-mode kernels (``Schedule.scratch == "arena"``) write their walk-step
temporaries into a preallocated :class:`~repro.lir.memory.ScratchArena`.
The executor owns one arena *per thread* (created lazily in thread-local
storage), so parallel row blocks never share scratch; the weak registry
behind :meth:`KernelExecutor.scratch_nbytes` tracks every live arena for
footprint accounting without pinning arenas of dead threads.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable

import numpy as np

from repro.backend.jit import compile_lir, model_fingerprint
from repro.backend.parallel import MulticoreSimulator, parallel_predict
from repro.config import Schedule
from repro.errors import ExecutionError
from repro.forest.ensemble import Forest, sigmoid, softmax
from repro.lir.ir import LIRModule
from repro.lir.memory import ArenaSpec, ScratchArena, arena_spec
from repro.observe.profile import ProfileRecorder
from repro.observe.trace import CompilationTrace


class KernelExecutor:
    """Executable wrapper around one compiled ``predict_block`` kernel."""

    #: registry name of the backend that produced this executor.
    backend_name: str = "numpy_jit"

    def __init__(
        self,
        kernel: Callable,
        schedule: Schedule,
        *,
        num_features: int,
        num_classes: int,
        base_score: float,
        objective: str = "regression",
        validate_inputs: bool = True,
        arena: ArenaSpec | None = None,
        source: str = "",
    ) -> None:
        self.kernel = kernel
        self.schedule = schedule
        self.num_features = num_features
        self.num_classes = num_classes
        self.base_score = base_score
        self.objective = objective
        self.validate_inputs = validate_inputs
        self.source = source
        # Quantized kernels keep float64 input: rows are rank-coded inside
        # the kernel against float64 cut tables, so callers never see the
        # integer representation.
        self.input_dtype = (
            np.float32 if schedule.precision == "float32" else np.float64
        )
        self.arena_spec = arena
        self._tls = threading.local()
        self._arenas: "weakref.WeakSet[ScratchArena]" = weakref.WeakSet()
        self._arenas_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _check(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.num_features:
            raise ExecutionError(
                f"rows must be (n, {self.num_features}), got {rows.shape}"
            )
        if rows.dtype != self.input_dtype or not rows.flags.c_contiguous:
            rows = np.ascontiguousarray(rows, dtype=self.input_dtype)
        # Single cheap validation pass: min() propagates NaN without
        # materializing an (n, F) boolean mask the way isnan().any() does.
        if self.validate_inputs and rows.size and np.isnan(rows.min()):
            raise ExecutionError(
                "NaN inputs are unsupported: speculative tile evaluation "
                "requires totally ordered features"
            )
        return rows

    def _alloc_out(self, n: int) -> np.ndarray:
        return np.full((n, self.num_classes), self.base_score, dtype=np.float64)

    def _arena(self) -> ScratchArena | None:
        """This thread's scratch arena (lazily created), or None in alloc mode."""
        if self.arena_spec is None:
            return None
        arena = getattr(self._tls, "arena", None)
        if arena is None:
            arena = ScratchArena(self.arena_spec)
            self._tls.arena = arena
            with self._arenas_lock:
                self._arenas.add(arena)
        return arena

    def raw_predict(self, rows: np.ndarray, threads: int | None = None) -> np.ndarray:
        """Raw margins; matches ``Forest.raw_predict`` up to accumulation order.

        ``threads`` overrides the schedule's parallel degree for this call —
        the serving layer uses it to pick a fan-out per micro-batch without
        recompiling the kernel.
        """
        rows = self._check(rows)
        out = self._alloc_out(rows.shape[0])
        threads = self.schedule.parallel if threads is None else max(1, int(threads))
        if rows.shape[0] == 0:
            pass  # empty batch: correctly-shaped output, no kernel launch
        elif threads > 1:
            parallel_predict(self._run_blocks, rows, out, threads)
        else:
            self._run_blocks(rows, out)
        return out[:, 0] if self.num_classes == 1 else out

    def _run_blocks(self, rows: np.ndarray, out: np.ndarray) -> None:
        arena = self._arena()
        block = self.schedule.row_block or max(rows.shape[0], 1)
        for lo in range(0, rows.shape[0], block):
            hi = min(lo + block, rows.shape[0])
            self.kernel(rows[lo:hi], out[lo:hi], arena)

    def predict(self, rows: np.ndarray, threads: int | None = None) -> np.ndarray:
        """Objective-transformed predictions (probabilities for classifiers)."""
        raw = self.raw_predict(rows, threads=threads)
        if self.objective == "binary:logistic":
            return sigmoid(raw)
        if self.objective == "multiclass":
            return softmax(raw)
        return raw

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generated_source(self) -> str:
        """The compiled Python/NumPy source of ``predict_block``."""
        return self.source

    def scratch_nbytes(self) -> int:
        """Materialized scratch-arena footprint across all owning threads.

        Zero for alloc-mode schedules and for arena-mode executors that
        have not run yet (arenas are created lazily per thread).
        """
        with self._arenas_lock:
            return sum(arena.nbytes() for arena in self._arenas)


class Predictor(KernelExecutor):
    """Executable inference function for one in-process compiled model."""

    def __init__(
        self,
        forest: Forest,
        lir: LIRModule,
        validate_inputs: bool = True,
        trace: CompilationTrace | None = None,
    ) -> None:
        self.forest = forest
        self.lir = lir
        #: the compilation trace this predictor was built under (None when
        #: constructed outside ``compile_model``); see ``trace.report()``
        self.trace = trace
        self.profile_recorder = (
            ProfileRecorder(
                label=f"trees{forest.num_trees}-t{lir.schedule.tile_size}"
                f"-{lir.schedule.tiling}-{lir.schedule.layout}"
            )
            if lir.schedule.profile
            else None
        )
        kernel, source = compile_lir(
            lir, trace=trace, profile_recorder=self.profile_recorder
        )
        super().__init__(
            kernel,
            lir.schedule,
            num_features=lir.num_features,
            num_classes=lir.num_classes,
            base_score=lir.base_score,
            objective=forest.objective,
            validate_inputs=validate_inputs,
            arena=arena_spec(lir) if lir.schedule.scratch == "arena" else None,
            source=source,
        )
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Inference (simulation path needs the LIR-aware block runner)
    # ------------------------------------------------------------------
    def predict_simulated_parallel(
        self, rows: np.ndarray, cores: int, simulator: MulticoreSimulator | None = None
    ) -> tuple[np.ndarray, float]:
        """Run under the multicore timing model; returns (raw, seconds)."""
        rows = self._check(rows)
        out = self._alloc_out(rows.shape[0])
        sim = simulator or MulticoreSimulator()
        _, seconds = sim.run(self._run_blocks, rows, out, cores)
        raw = out[:, 0] if self.num_classes == 1 else out
        return raw, seconds

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Stable (model, schedule) content hash; the serving cache key."""
        if self._fingerprint is None:
            self._fingerprint = model_fingerprint(self.forest, self.schedule)
        return self._fingerprint

    def memory_bytes(self) -> int:
        """Model-buffer footprint of the chosen in-memory representation.

        Quantized modules report the materialized kernel buffers (narrow
        int codes + cut tables) so serving gauges and benchmarks see the
        savings; float modules keep the historical layout accounting.
        """
        if self.lir.quant is not None:
            from repro.lir.memory import compiled_model_nbytes

            return compiled_model_nbytes(self.lir)
        return self.lir.total_nbytes()

    def profile_counters(self) -> dict:
        """Aggregated kernel profiling counters across all threads.

        Requires ``Schedule(profile=True)``; returns ``{}`` otherwise (the
        instrumentation was compiled out of the kernel entirely).
        """
        if self.profile_recorder is None:
            return {}
        return self.profile_recorder.aggregate()

    def reset_profile(self) -> None:
        """Zero the profiling counters (before/after measurements)."""
        if self.profile_recorder is not None:
            self.profile_recorder.reset()

    def dump_ir(self) -> str:
        """MIR loop nest + LIR summary, for docs and debugging."""
        return self.lir.mir.dump() + "\n" + self.lir.dump()

    def __repr__(self) -> str:
        return (
            f"Predictor(trees={self.forest.num_trees}, schedule={self.schedule}, "
            f"bytes={self.memory_bytes()})"
        )
