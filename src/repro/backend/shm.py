"""Shared-memory model-buffer export: one copy of the model per machine.

The multi-process serving tier (:mod:`repro.serve.workers`) forks workers
that all execute the same compiled kernels. Pickling the model buffers to
every child would multiply resident memory by the worker count — exactly
the footprint the quantized int8/int16 buffers (PR7) worked to shrink. So
the parent exports the compiled model once into named
``multiprocessing.shared_memory`` segments and ships children only a tiny
picklable *manifest* (kernel source + buffer names/dtypes/shapes + model
facts); each child attaches the segments and maps zero-copy, read-only
NumPy views over them.

This mirrors the AOT artifact layout (:mod:`repro.backend.aot`) with the
filesystem swapped for POSIX shared memory: the serialized namespace is
exactly what the JIT executed, so an attached executor is bit-identical to
the exporting predictor. Lifecycle is explicit and parent-owned: the
:class:`SharedModelHandle` unlinks the segments; children merely close
their attachments.
"""

from __future__ import annotations

import weakref
from dataclasses import asdict
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.backend.codegen import build_namespace
from repro.backend.jit import compile_source
from repro.backend.predictor import KernelExecutor, Predictor
from repro.config import Schedule
from repro.errors import BackendError
from repro.lir.memory import ArenaSpec, ScratchArena
from repro.observe.profile import ProfileRecorder

#: namespace entries that are runtime objects, not model buffers (same
#: contract as the AOT exporter) — reconstructed at attach time.
_RUNTIME_KEYS = ("_np", "_new_arena", "_P")


class SharedModelHandle:
    """Parent-side owner of one exported model's shared-memory segments.

    ``manifest`` is a plain picklable dict a child passes to
    :func:`attach_shared`; the handle itself stays in the parent and is
    the single place the segments get unlinked.
    """

    def __init__(self, manifest: dict, segments: list[shared_memory.SharedMemory]) -> None:
        self.manifest = manifest
        self._segments = segments
        self._unlinked = False

    @property
    def fingerprint(self) -> str:
        return self.manifest["fingerprint"]

    def nbytes(self) -> int:
        return sum(meta["nbytes"] for meta in self.manifest["buffers"].values())

    def unlink(self) -> None:
        """Close and remove every segment (idempotent).

        After this, new attaches fail; already-attached children keep
        their mappings alive until they close (POSIX unlink semantics).
        """
        if self._unlinked:
            return
        self._unlinked = True
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already removed externally
                pass
        self._segments = []

    def __enter__(self) -> "SharedModelHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()

    def __repr__(self) -> str:
        return (
            f"SharedModelHandle(buffers={len(self.manifest['buffers'])}, "
            f"nbytes={self.nbytes()}, fingerprint={self.fingerprint[:12]})"
        )


def export_shared(predictor: Predictor, *, name_prefix: str = "repro") -> SharedModelHandle:
    """Copy a compiled predictor's model buffers into shared memory.

    Returns a :class:`SharedModelHandle` whose ``manifest`` is picklable
    and self-contained: kernel source, schedule, model facts, arena spec
    and per-buffer segment names. Only in-process :class:`Predictor`
    instances can be exported (the namespace is rebuilt from their LIR).
    """
    if not isinstance(predictor, Predictor):
        raise BackendError(
            f"only in-process compiled predictors can be shared, "
            f"got {type(predictor).__name__}"
        )
    lir = predictor.lir
    namespace = build_namespace(lir)
    segments: list[shared_memory.SharedMemory] = []
    buffers: dict[str, dict] = {}
    try:
        for buf_name, value in namespace.items():
            if buf_name in _RUNTIME_KEYS:
                continue
            if not isinstance(value, np.ndarray):  # pragma: no cover - all
                # non-runtime namespace entries are arrays by construction
                raise BackendError(f"unshareable namespace entry {buf_name!r}")
            value = np.ascontiguousarray(value)
            # SharedMemory rejects zero-byte segments; degenerate empty
            # buffers still get a 1-byte segment so attach stays uniform.
            segment = shared_memory.SharedMemory(create=True, size=max(1, value.nbytes))
            segments.append(segment)
            view = np.ndarray(value.shape, dtype=value.dtype, buffer=segment.buf)
            view[...] = value
            buffers[buf_name] = {
                "segment": segment.name,
                "dtype": str(value.dtype),
                "shape": list(value.shape),
                "nbytes": value.nbytes,
            }
    except BaseException:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass
        raise
    manifest = {
        "fingerprint": predictor.fingerprint,
        "source": predictor.source,
        "schedule": predictor.schedule.to_dict(),
        "model": {
            "num_features": lir.num_features,
            "num_classes": lir.num_classes,
            "base_score": lir.base_score,
            "objective": predictor.forest.objective,
            "num_trees": predictor.forest.num_trees,
        },
        "arena": asdict(predictor.arena_spec) if predictor.arena_spec else None,
        "buffers": buffers,
    }
    return SharedModelHandle(manifest, segments)


class SharedMemoryPredictor(KernelExecutor):
    """A compiled model attached from shared-memory segments.

    Executes identically to the exporting predictor (same source, same
    bytes) but owns no buffer storage: its arrays are read-only views over
    segments another process created. ``close()`` drops the attachments;
    it never unlinks — that is the exporting parent's job.
    """

    backend_name = "shm"
    is_artifact = True

    def __init__(
        self,
        kernel,
        schedule: Schedule,
        manifest: dict,
        segments: list[shared_memory.SharedMemory],
        source: str,
        validate_inputs: bool = True,
        profile_recorder: ProfileRecorder | None = None,
    ) -> None:
        model = manifest["model"]
        arena = None
        if manifest.get("arena"):
            spec = dict(manifest["arena"])
            spec["pack_widths"] = tuple(spec.get("pack_widths") or ())
            arena = ArenaSpec(**spec)
        super().__init__(
            kernel,
            schedule,
            num_features=model["num_features"],
            num_classes=model["num_classes"],
            base_score=model["base_score"],
            objective=model["objective"],
            validate_inputs=validate_inputs,
            arena=arena,
            source=source,
        )
        self.manifest = manifest
        self.fingerprint: str = manifest["fingerprint"]
        self.profile_recorder = profile_recorder
        self._segments = segments
        self._closed = False

    def memory_bytes(self) -> int:
        """Mapped (shared, not private) buffer bytes."""
        return sum(meta["nbytes"] for meta in self.manifest["buffers"].values())

    def close(self) -> None:
        """Drop the segment attachments (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def __repr__(self) -> str:
        return (
            f"SharedMemoryPredictor(buffers={len(self.manifest['buffers'])}, "
            f"fingerprint={self.fingerprint[:12]})"
        )


def attach_shared(
    manifest: dict, *, validate_inputs: bool = True, untrack: bool = False
) -> SharedMemoryPredictor:
    """Attach an exported model in this process (typically a forked worker).

    Rebuilds the JIT namespace from zero-copy, read-only views over the
    named segments and byte-compiles the stored kernel source against it.
    Raises :class:`~repro.errors.BackendError` if a segment is gone or a
    buffer does not match its manifest entry.

    ``untrack`` matters only for processes with their *own* resource
    tracker (spawn-started workers, unrelated processes): there, Python's
    attach registers the segment as if this process owned it, and the
    tracker would unlink it at exit — tearing the mapping out from under
    every sibling — so such callers must pass ``untrack=True``. Forked
    workers and same-process attaches share the exporter's tracker and
    must leave ``untrack=False``, or they would cancel the registration
    that lets the tracker reap the segments if the exporter crashes.
    """
    segments: list[shared_memory.SharedMemory] = []
    namespace: dict = {"_np": np}
    try:
        for buf_name, meta in manifest["buffers"].items():
            try:
                segment = shared_memory.SharedMemory(name=meta["segment"])
            except FileNotFoundError as exc:
                raise BackendError(
                    f"shared buffer {buf_name!r} (segment {meta['segment']}) "
                    f"is gone — did the exporting process unlink it?"
                ) from exc
            segments.append(segment)
            if untrack:
                try:  # pragma: no cover - internal API, best effort
                    resource_tracker.unregister(segment._name, "shared_memory")
                except Exception:
                    pass
            shape = tuple(meta["shape"])
            dtype = np.dtype(meta["dtype"])
            if int(np.prod(shape, dtype=np.int64)) * dtype.itemsize > segment.size:
                raise BackendError(
                    f"shared buffer {buf_name!r} is smaller than its "
                    f"manifest entry {dtype}{shape}"
                )
            array = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
            array.flags.writeable = False
            namespace[buf_name] = array
    except BaseException:
        for segment in segments:
            try:
                segment.close()
            except OSError:
                pass
        raise

    schedule = Schedule.from_dict(manifest["schedule"])
    if manifest.get("arena"):
        spec = dict(manifest["arena"])
        spec["pack_widths"] = tuple(spec.get("pack_widths") or ())
        arena = ArenaSpec(**spec)
        namespace["_new_arena"] = lambda spec=arena: ScratchArena(spec)
    recorder = None
    if schedule.profile:
        recorder = ProfileRecorder(label=f"shm-{manifest['fingerprint'][:8]}")
        # Weak proxy + strong ref on the predictor, same reasoning as the
        # AOT loader: let the recorder die by refcount with its executor.
        namespace["_P"] = weakref.proxy(recorder)

    kernel, _ = compile_source(manifest["source"], namespace)
    return SharedMemoryPredictor(
        kernel,
        schedule,
        manifest,
        segments,
        manifest["source"],
        validate_inputs=validate_inputs,
        profile_recorder=recorder,
    )
