"""The retargetable backend registry.

The lowering pipeline (HIR → MIR → LIR) is backend-agnostic; what turns a
lowered :class:`~repro.lir.ir.LIRModule` into something executable is a
:class:`Backend`. This module is the seam between the two: a process-wide
name → backend registry that :func:`repro.api.compile_model` resolves
through ``Schedule(backend=...)``, so the final emission step is swappable
without touching any lowering code (the interface-first decomposition of
"Composable and Modular Code Generation in MLIR", and the registered-
backend idiom of gt4py / slope).

Built-in backends:

* ``"numpy_jit"`` (:mod:`repro.backend.numpy_jit`) — the default: emit
  NumPy source, ``compile()`` it in-process. Behavior and generated code
  are byte-identical to the pre-registry pipeline.
* ``"aot_export"`` (:mod:`repro.backend.aot`) — same kernel, plus
  ahead-of-time serialization: ``export_artifact`` writes a self-contained
  artifact directory that ``load_artifact`` reconstitutes into a ready
  executor in a fresh process without running the compiler.

Third parties register their own with the decorator idiom::

    @register_backend
    class NumbaBackend(Backend):
        name = "numba"
        def build(self, forest, lir, *, validate_inputs=True, trace=None):
            ...

Names are unique — duplicate registration raises
:class:`~repro.errors.BackendError` (use :func:`unregister_backend` first
to replace one, e.g. in tests).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.forest.ensemble import Forest
    from repro.lir.ir import LIRModule
    from repro.observe.trace import CompilationTrace

#: name of the default backend (the pre-registry JIT path)
DEFAULT_BACKEND = "numpy_jit"


class Backend:
    """Interface one code-generation target implements.

    A backend receives the *fully lowered* module — every schedule decision
    (tiling, layout, interleave, precision, scratch policy) is already
    baked into the LIR — and returns an executor with the
    :class:`~repro.backend.predictor.Predictor` surface: ``raw_predict`` /
    ``predict`` with an optional ``threads`` override, ``schedule``,
    ``fingerprint``, ``memory_bytes``. Backends must be stateless and
    thread-safe: one instance serves every compile in the process.
    """

    #: unique registry name; subclasses must override.
    name: str = ""

    #: coarse capability flags (``"export"`` = supports AOT artifact
    #: serialization via ``export`` / ``load``), for discovery/UIs.
    capabilities: tuple[str, ...] = ()

    def build(
        self,
        forest: "Forest",
        lir: "LIRModule",
        *,
        validate_inputs: bool = True,
        trace: "CompilationTrace | None" = None,
    ):
        """Turn ``lir`` into an executor; must not mutate the module."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Registry metadata (stable keys: name, capabilities, class)."""
        return {
            "name": self.name,
            "capabilities": list(self.capabilities),
            "class": f"{type(self).__module__}.{type(self).__qualname__}",
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_LOCK = threading.Lock()
_BACKENDS: dict[str, Backend] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import (and thereby register) the built-in backends, once.

    Deferred so that ``import repro.config`` stays cheap and the registry
    module itself has no import cycle with the modules that define the
    built-ins (they import ``register_backend`` from here).
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _LOCK:
        if _builtins_loaded:
            return
        # Mark first: the imports below construct Schedule objects in
        # docstring-free module scope only, but predictors built during
        # registration of *future* builtins must not recurse here.
        _builtins_loaded = True
    import repro.backend.aot  # noqa: F401  (registers "aot_export")
    import repro.backend.numpy_jit  # noqa: F401  (registers "numpy_jit")


def register_backend(backend):
    """Register a backend instance or :class:`Backend` subclass.

    Usable as a decorator on a class (it is instantiated once) or called
    with an instance. The backend's ``name`` must be non-empty and unused;
    duplicates raise :class:`~repro.errors.BackendError`. Returns the
    argument unchanged so the decorator form is transparent.
    """
    instance = backend() if isinstance(backend, type) else backend
    if not isinstance(instance, Backend):
        raise BackendError(
            f"backend must subclass repro.backend.registry.Backend, "
            f"got {type(instance).__name__}"
        )
    name = instance.name
    if not isinstance(name, str) or not name:
        raise BackendError(
            f"backend {type(instance).__name__} has no name: set a "
            f"non-empty class attribute `name`"
        )
    with _LOCK:
        if name in _BACKENDS:
            raise BackendError(
                f"backend {name!r} is already registered "
                f"({_BACKENDS[name]!r}); unregister_backend({name!r}) first "
                f"to replace it"
            )
        _BACKENDS[name] = instance
    return backend


def unregister_backend(name: str) -> bool:
    """Remove one registered backend; returns whether it was present.

    Built-ins can be unregistered too (tests do); re-importing does not
    re-register them — construct and register a fresh instance instead.
    """
    _ensure_builtins()
    with _LOCK:
        return _BACKENDS.pop(name, None) is not None


def get_backend(name: str) -> Backend:
    """Resolve ``name`` to its registered :class:`Backend` instance.

    Unknown names raise :class:`~repro.errors.BackendError` listing every
    registered backend, so a typo in ``Schedule(backend=...)`` is
    diagnosable from the message alone.
    """
    _ensure_builtins()
    with _LOCK:
        backend = _BACKENDS.get(name)
    if backend is None:
        raise BackendError(
            f"unknown backend {name!r}: registered backends are "
            f"{list_backends()}"
        )
    return backend


def require_backend(name: str) -> None:
    """Raise :class:`~repro.errors.BackendError` unless ``name`` resolves."""
    get_backend(name)


def list_backends() -> list[str]:
    """Sorted names of every registered backend (built-ins included)."""
    _ensure_builtins()
    with _LOCK:
        return sorted(_BACKENDS)


def describe_backends() -> dict[str, dict]:
    """``{name: backend.describe()}`` for every registered backend."""
    _ensure_builtins()
    with _LOCK:
        backends = dict(_BACKENDS)
    return {name: backends[name].describe() for name in sorted(backends)}


def temporary_backend(backend) -> "_TemporaryBackend":
    """Context manager registering ``backend`` for the enclosed block only.

    Test/plugin convenience::

        with temporary_backend(MyBackend()):
            compile_model(forest, Schedule(backend="mine"))
    """
    return _TemporaryBackend(backend)


class _TemporaryBackend:
    def __init__(self, backend) -> None:
        self._backend = backend() if isinstance(backend, type) else backend

    def __enter__(self) -> Backend:
        register_backend(self._backend)
        return self._backend

    def __exit__(self, *exc_info) -> None:
        unregister_backend(self._backend.name)
