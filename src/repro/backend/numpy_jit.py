"""The default backend: NumPy source emission + in-process ``compile()``.

This is the pre-registry code path verbatim, packaged behind the
:class:`~repro.backend.registry.Backend` interface: emit one vector
statement per LIR walk op (:mod:`repro.backend.codegen`), compile the
source through the bounded code cache (:mod:`repro.backend.jit`), and wrap
the kernel in a :class:`~repro.backend.predictor.Predictor`. Registering it
changes nothing observable — generated source, fingerprints, and runtime
behavior are byte-identical to the hardwired pipeline it replaced (the
registry tests pin this).
"""

from __future__ import annotations

from repro.backend.predictor import Predictor
from repro.backend.registry import Backend, register_backend


@register_backend
class NumpyJitBackend(Backend):
    """Emit NumPy source for the LIR and JIT it with ``compile()``."""

    name = "numpy_jit"
    capabilities = ("jit",)

    def build(self, forest, lir, *, validate_inputs=True, trace=None) -> Predictor:
        return Predictor(forest, lir, validate_inputs=validate_inputs, trace=trace)
