"""Parallel execution of compiled inference kernels (Section IV-C).

Treebeard parallelizes naively: the row loop is tiled by the core count and
each core runs the full tree nest on its block. Two realizations are
provided:

* :func:`parallel_predict` — real threads on a *persistent*, lazily-created
  module-level pool shared by every predictor (serving micro-batches
  included): spawning and joining a fresh ``ThreadPoolExecutor`` per call
  costs more than small batches themselves, and persistent workers are what
  make per-thread scratch arenas pay off. Output blocks are disjoint, so no
  synchronization is needed. (NumPy releases the GIL in many kernels;
  scaling on a real multicore machine is partial but genuine.)
* :class:`MulticoreSimulator` — a deterministic model for scaling studies
  on hosts without enough cores: each block is executed and timed serially,
  and the simulated wall-clock is ``max(block times) + spawn overhead``,
  optionally inflated by a memory-bandwidth contention factor. This is the
  substitution used for the paper's 16-core results (Figures 7b, 8b, 13).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

_POOL: ThreadPoolExecutor | None = None
_POOL_LOCK = threading.Lock()
_POOL_WORKERS = 0
_POOLS_CREATED = 0
_TASKS_SUBMITTED = 0
_TASKS_COMPLETED = 0
_TASKS_FAILED = 0
_TASKS_CANCELLED = 0
_TASK_TIMING = False
_TASKS_TIME_TOTAL_S = 0.0
_TASKS_TIME_MAX_S = 0.0


def set_task_timing(enabled: bool) -> None:
    """Toggle per-task wall-clock accounting on the shared pool.

    Off by default: timing wraps every block in two ``perf_counter`` calls,
    which is noise for large blocks but measurable for tiny ones. The
    OpenMetrics exporter surfaces the accumulated totals as
    ``repro_kernel_pool_task_seconds_total`` / ``..._task_max_seconds``.
    """
    global _TASK_TIMING
    with _POOL_LOCK:
        _TASK_TIMING = bool(enabled)


def _default_pool_size() -> int:
    return max(2, os.cpu_count() or 2)


def get_pool(min_workers: int = 0) -> ThreadPoolExecutor:
    """The shared kernel-execution pool, created once on first use.

    Sized to the host's core count (at least ``min_workers``); later
    requests for more concurrency than the pool holds simply queue — kernel
    tasks are leaves, so queuing cannot deadlock.
    """
    global _POOL, _POOL_WORKERS, _POOLS_CREATED
    with _POOL_LOCK:
        if _POOL is None:
            _POOL_WORKERS = max(_default_pool_size(), min_workers)
            _POOL = ThreadPoolExecutor(
                max_workers=_POOL_WORKERS, thread_name_prefix="repro-kernel"
            )
            _POOLS_CREATED += 1
        return _POOL


def shutdown_pool(wait: bool = True) -> None:
    """Tear down the shared pool (tests/benchmark hygiene); it will be
    recreated lazily on the next :func:`parallel_predict` call."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
        _POOL_WORKERS = 0
    if pool is not None:
        pool.shutdown(wait=wait)


def pool_stats() -> dict:
    """Lifetime counters of the shared pool (serving metrics surface)."""
    with _POOL_LOCK:
        return {
            "active": _POOL is not None,
            "workers": _POOL_WORKERS,
            "pools_created": _POOLS_CREATED,
            "tasks_submitted": _TASKS_SUBMITTED,
            "tasks_completed": _TASKS_COMPLETED,
            "tasks_failed": _TASKS_FAILED,
            "tasks_cancelled": _TASKS_CANCELLED,
            "task_timing": _TASK_TIMING,
            "tasks_time_total_s": _TASKS_TIME_TOTAL_S,
            "tasks_time_max_s": _TASKS_TIME_MAX_S,
        }


def row_blocks(num_rows: int, num_blocks: int) -> list[tuple[int, int]]:
    """Split ``num_rows`` into ``num_blocks`` near-equal contiguous ranges.

    Zero rows yield zero blocks: callers must treat an empty batch as "no
    work", not as one degenerate block.
    """
    if num_rows <= 0:
        return []
    num_blocks = max(1, min(num_blocks, num_rows))
    bounds = np.linspace(0, num_rows, num_blocks + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_blocks)]


def _timed(kernel: Callable) -> Callable:
    """Wrap ``kernel`` so each block's wall-clock feeds the pool totals."""

    def run(rows: np.ndarray, out: np.ndarray) -> None:
        global _TASKS_TIME_TOTAL_S, _TASKS_TIME_MAX_S
        start = time.perf_counter()
        try:
            kernel(rows, out)
        finally:
            elapsed = time.perf_counter() - start
            with _POOL_LOCK:
                _TASKS_TIME_TOTAL_S += elapsed
                if elapsed > _TASKS_TIME_MAX_S:
                    _TASKS_TIME_MAX_S = elapsed

    return run


def parallel_predict(
    kernel: Callable,
    rows: np.ndarray,
    out: np.ndarray,
    num_threads: int,
) -> np.ndarray:
    """Run ``kernel`` over row blocks on the shared pool; returns ``out``.

    On a block failure the first exception is re-raised, but only after
    every sibling task has settled: still-queued blocks are cancelled and
    in-flight ones are waited for, so no task is left writing into ``out``
    after the caller has seen the exception.
    """
    global _TASKS_SUBMITTED, _TASKS_COMPLETED, _TASKS_FAILED, _TASKS_CANCELLED
    blocks = row_blocks(rows.shape[0], num_threads)
    if not blocks:
        return out
    if len(blocks) == 1:
        kernel(rows, out)
        return out
    pool = get_pool()
    with _POOL_LOCK:
        _TASKS_SUBMITTED += len(blocks)
        timing = _TASK_TIMING
    task = _timed(kernel) if timing else kernel
    futures = [
        pool.submit(task, rows[lo:hi], out[lo:hi]) for lo, hi in blocks
    ]
    first_exc: BaseException | None = None
    done = failed = cancelled = 0
    try:
        for i, future in enumerate(futures):
            try:
                future.result()
                done += 1
            except BaseException as exc:
                first_exc = exc
                failed += 1
                for later in futures[i + 1 :]:
                    later.cancel()
                for later in futures[i + 1 :]:
                    if later.cancelled():
                        cancelled += 1
                        continue
                    try:
                        later.result()
                        done += 1
                    except BaseException:
                        failed += 1
                break
    finally:
        # submitted == completed + failed + cancelled in steady state; a
        # growing failed count is what the gauge dashboards watch for.
        with _POOL_LOCK:
            _TASKS_COMPLETED += done
            _TASKS_FAILED += failed
            _TASKS_CANCELLED += cancelled
    if first_exc is not None:
        raise first_exc
    return out


@dataclass
class MulticoreSimulator:
    """Deterministic multicore timing model over measured serial blocks.

    Attributes
    ----------
    spawn_overhead_s:
        Fixed fork/join cost added per parallel region.
    bandwidth_factor:
        Per-extra-core slowdown fraction modeling shared memory-bandwidth
        contention: with ``c`` cores each block is inflated by
        ``1 + bandwidth_factor * (c - 1)``. Zero = perfectly parallel.
    utilization:
        Fraction of cores the runtime actually keeps busy (the paper
        observed Hummingbird using ~3 of 16 cores); effective cores =
        ``max(1, round(c * utilization))``.
    """

    spawn_overhead_s: float = 20e-6
    bandwidth_factor: float = 0.01
    utilization: float = 1.0

    def run(
        self,
        kernel: Callable,
        rows: np.ndarray,
        out: np.ndarray,
        cores: int,
    ) -> tuple[np.ndarray, float]:
        """Execute all blocks serially; return ``(out, simulated_seconds)``."""
        effective = max(1, int(round(cores * self.utilization)))
        blocks = row_blocks(rows.shape[0], effective)
        if not blocks:
            return out, 0.0
        times = []
        for lo, hi in blocks:
            start = time.perf_counter()
            kernel(rows[lo:hi], out[lo:hi])
            times.append(time.perf_counter() - start)
        contention = 1.0 + self.bandwidth_factor * (effective - 1)
        simulated = max(times) * contention
        if effective > 1:
            simulated += self.spawn_overhead_s
        return out, simulated
