"""Alternative traversal strategies pluggable behind the Predictor API.

Section VII of the paper: "the QuickScorer algorithm can easily be
integrated into TREEBEARD as another traversal strategy for the system to
explore." This module does that integration: a QuickScorer-backed object
with the same inference surface as the tiled-walk
:class:`~repro.backend.predictor.Predictor`, selected with
``Schedule(traversal="quickscorer")`` and explorable by the autotuner.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.quickscorer import QuickScorerPredictor
from repro.config import QUANTIZED_PRECISIONS, Schedule
from repro.errors import CodegenError, ExecutionError
from repro.forest.ensemble import Forest, sigmoid, softmax


class QuickScorerStrategyPredictor:
    """QuickScorer traversal behind the compiled-predictor interface.

    Supports the runtime knobs that make sense for the strategy (input
    validation, simulated parallelism); tiling-related schedule fields are
    ignored, as the bitvector algorithm has no tiles. Trees are limited to
    64 leaves (the strategy's scaling cap, which the paper also notes).
    """

    def __init__(self, forest: Forest, schedule: Schedule, validate_inputs: bool = True) -> None:
        if schedule.precision in QUANTIZED_PRECISIONS:
            # The bitvector strategy compares float thresholds directly;
            # silently ignoring the precision knob would change numerics
            # relative to the quantized tiled kernels it is swept against.
            raise CodegenError(
                "quickscorer traversal does not support quantized "
                f"precision {schedule.precision!r}; use the tiled traversal"
            )
        self.forest = forest
        self.schedule = schedule
        self.validate_inputs = validate_inputs
        self._impl = QuickScorerPredictor(forest)

    def _check(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.forest.num_features:
            raise ExecutionError(
                f"rows must be (n, {self.forest.num_features}), got {rows.shape}"
            )
        if rows.dtype != np.float64 or not rows.flags.c_contiguous:
            rows = np.ascontiguousarray(rows, dtype=np.float64)
        # min() propagates NaN in one pass without an (n, F) boolean mask.
        if self.validate_inputs and rows.size and np.isnan(rows.min()):
            raise ExecutionError("NaN inputs are unsupported")
        return rows

    def raw_predict(self, rows: np.ndarray) -> np.ndarray:
        return self._impl.raw_predict(self._check(rows))

    def predict(self, rows: np.ndarray) -> np.ndarray:
        raw = self.raw_predict(rows)
        if self.forest.objective == "binary:logistic":
            return sigmoid(raw)
        if self.forest.objective == "multiclass":
            return softmax(raw)
        return raw

    def memory_bytes(self) -> int:
        """Footprint of the bitvector structures (masks + leaf values)."""
        impl = self._impl
        total = impl.full_mask.nbytes + impl.leaf_values.nbytes
        for f in impl.features:
            total += impl.thresholds[f].nbytes + impl.tree_ids[f].nbytes
            total += impl.masks[f].nbytes
        return total

    @property
    def generated_source(self) -> str:
        return "# quickscorer traversal strategy (interpreted; no generated kernel)"

    def dump_ir(self) -> str:
        return (
            f"QuickScorerStrategy(trees={self.forest.num_trees}, "
            f"features={len(self._impl.features)}, "
            f"max_leaves={self._impl.leaf_values.shape[1]})"
        )

    def __repr__(self) -> str:
        return f"QuickScorerStrategyPredictor(trees={self.forest.num_trees})"
