"""Synthetic benchmark datasets matched to the paper's Table I.

The paper trains on eight public datasets from the Intel scikit-learn_bench
suite. Network access and those exact files are unavailable here, so this
package generates synthetic datasets whose *structural* properties match
Table I — feature count, tree count, maximum depth, objective — and whose
feature distributions are shaped to reproduce each benchmark's leaf-bias
character (e.g. one-hot-encoded airline-ohe is strongly leaf-biased,
dense-feature epsilon is not), which is what the probability-based tiling
results depend on.
"""

from repro.datasets.registry import (
    BENCHMARKS,
    DatasetSpec,
    fresh_rows,
    get_benchmark,
    load_benchmark_model,
    train_benchmark,
)
from repro.datasets.synthetic import generate_dataset

__all__ = [
    "BENCHMARKS",
    "DatasetSpec",
    "fresh_rows",
    "generate_dataset",
    "get_benchmark",
    "load_benchmark_model",
    "train_benchmark",
]
