"""The eight Table-I benchmarks, with training and on-disk caching.

Structural parameters (features, trees, depth, classes) follow Table I of
the paper. ``scale`` shrinks tree counts proportionally — CPython training
and per-row baselines make full-size models expensive on small hosts — while
keeping depth, feature count and leaf-bias character intact; experiments
record the scale they ran at. Trained models (with leaf statistics) are
cached as JSON under ``.bench_cache/`` keyed by spec + scale + seed.

The prototype parameters of each spec are calibrated so the measured
leaf-biased tree fraction (at ⟨alpha=0.075, beta=0.9⟩) tracks the paper's
#Leaf-biased column: airline-ohe almost fully biased, abalone/covtype
partially, epsilon/letter/year not at all.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace

import numpy as np

from repro.datasets.synthetic import generate_dataset
from repro.errors import ModelError
from repro.forest.ensemble import Forest
from repro.forest.statistics import populate_node_probabilities
from repro.training.gbdt import GBDTParams, train_gbdt


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark: Table-I parameters plus generator/trainer settings.

    ``paper_leaf_biased`` is the #Leaf-biased column of Table I (at
    ⟨alpha=0.075, beta=0.9⟩), reported alongside our measured counts.
    """

    name: str
    num_features: int
    num_trees: int
    max_depth: int
    paper_leaf_biased: int
    objective: str = "regression"
    num_classes: int = 1
    feature_kind: str = "normal"
    train_rows: int = 2500
    active_features: int = 8
    learning_rate: float = 0.1
    reg_lambda: float = 1e-3
    colsample: float = 1.0
    noise: float = 0.3
    prototype_fraction: float = 0.0
    prototype_count: int = 10
    prototype_feature_fraction: float = 1.0
    prototype_zipf: float = 2.0

    @property
    def rounds_per_class(self) -> int:
        return self.num_trees // max(1, self.num_classes)


#: Table I of the paper, as dataset specs.
BENCHMARKS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            "abalone", 8, 1000, 7, 438, feature_kind="skewed",
            prototype_fraction=0.95, prototype_feature_fraction=0.85, colsample=0.6,
        ),
        DatasetSpec(
            "airline", 13, 100, 9, 8, objective="binary:logistic",
            feature_kind="mixed", prototype_fraction=0.93, prototype_zipf=2.5,
            prototype_feature_fraction=0.75, colsample=0.6,
        ),
        DatasetSpec(
            "airline-ohe", 692, 1000, 9, 976,
            objective="binary:logistic", feature_kind="onehot",
            active_features=120, noise=0.8, train_rows=1500,
            prototype_fraction=0.97, prototype_count=8, prototype_zipf=3.0,
        ),
        DatasetSpec(
            "covtype", 54, 800, 9, 283,
            objective="multiclass", num_classes=8, feature_kind="mixed",
            prototype_fraction=0.95, prototype_feature_fraction=0.9, colsample=0.5,
        ),
        DatasetSpec(
            "epsilon", 2000, 100, 9, 0,
            objective="binary:logistic", feature_kind="normal",
            train_rows=1200, active_features=64,
        ),
        DatasetSpec(
            "letter", 16, 2600, 7, 0,
            objective="multiclass", num_classes=26, feature_kind="uniform",
        ),
        DatasetSpec(
            "higgs", 28, 100, 9, 8, objective="binary:logistic",
            feature_kind="mixed", prototype_fraction=0.88, prototype_zipf=2.5,
            prototype_feature_fraction=0.6, colsample=0.6,
        ),
        DatasetSpec("year", 90, 100, 9, 0, feature_kind="normal"),
    )
}


def get_benchmark(name: str) -> DatasetSpec:
    """Look up a benchmark spec by name."""
    if name not in BENCHMARKS:
        raise ModelError(f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}")
    return BENCHMARKS[name]


def _generate(
    spec: DatasetSpec, rows: int, seed: int, weighted: bool = False
):
    return generate_dataset(
        num_rows=rows,
        num_features=spec.num_features,
        objective=spec.objective,
        num_classes=spec.num_classes,
        feature_kind=spec.feature_kind,
        active_features=spec.active_features,
        noise=spec.noise,
        prototype_fraction=spec.prototype_fraction,
        prototype_count=spec.prototype_count,
        prototype_feature_fraction=spec.prototype_feature_fraction,
        prototype_zipf=spec.prototype_zipf,
        weighted=weighted,
        seed=seed,
    )


def train_benchmark(
    spec: DatasetSpec | str,
    scale: float = 1.0,
    seed: int = 0,
    train_rows: int | None = None,
) -> tuple[Forest, np.ndarray]:
    """Train a benchmark model; returns ``(forest, X_train)``.

    Training uses the weighted representation of the benchmark distribution
    (prototype clusters carry their Zipf mass as sample weights), and the
    forest's node probabilities are populated with the same weights — so the
    leaf statistics match what physically sampled heavy-hitter data would
    produce, at a fraction of the training cost.
    """
    if isinstance(spec, str):
        spec = get_benchmark(spec)
    rows = train_rows or spec.train_rows
    X, y, w = _generate(spec, rows, seed, weighted=True)
    rounds = max(1, int(round(spec.rounds_per_class * scale)))
    params = GBDTParams(
        num_rounds=rounds,
        max_depth=spec.max_depth,
        learning_rate=spec.learning_rate,
        reg_lambda=spec.reg_lambda,
        colsample=spec.colsample,
        min_child_weight=1e-3,
        objective=spec.objective,
        num_classes=spec.num_classes,
        seed=seed,
    )
    forest = train_gbdt(X, y, params, sample_weight=w)
    populate_node_probabilities(forest, X, weights=w)
    return forest, X


def _cache_dir() -> str:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        here = os.path.abspath(__file__)
        repo = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(here))))
        root = os.path.join(repo, ".bench_cache")
    os.makedirs(root, exist_ok=True)
    return root


def load_benchmark_model(
    name: str, scale: float = 1.0, seed: int = 0, use_cache: bool = True
) -> tuple[Forest, np.ndarray]:
    """Train-or-load a cached benchmark model; returns ``(forest, X_train)``.

    The training matrix is regenerated deterministically from the seed, so
    only the forest itself is cached.
    """
    spec = get_benchmark(name)
    key = f"{name}_s{scale:g}_r{seed}.json"
    path = os.path.join(_cache_dir(), key)
    if use_cache and os.path.exists(path):
        with open(path) as f:
            forest = Forest.from_dict(json.load(f))
        X, _ = _generate(spec, spec.train_rows, seed)
        return forest, X
    forest, X = train_benchmark(spec, scale=scale, seed=seed)
    if use_cache:
        with open(path, "w") as f:
            json.dump(forest.to_dict(), f)
    return forest, X


def fresh_rows(
    spec: DatasetSpec | str, num_rows: int, seed: int = 10_000, diffuse: bool = False
) -> np.ndarray:
    """Generate an inference batch drawn from the benchmark's distribution.

    ``diffuse=True`` samples only the diffuse component (no prototype
    heavy-hitters): every row then takes its own path through the trees,
    which is the right input for cache-behaviour studies where path
    diversity, not the skew, is under test.
    """
    if isinstance(spec, str):
        spec = get_benchmark(spec)
    if diffuse:
        spec = replace(spec, prototype_fraction=0.0)
    X, _ = _generate(spec, num_rows, seed)
    return X


def mixed_rows(
    spec: DatasetSpec | str,
    num_rows: int,
    prototype_fraction: float,
    seed: int = 10_000,
) -> np.ndarray:
    """An inference batch with an explicit heavy-hitter share.

    Used by the microarchitecture experiment: a moderate prototype share
    keeps branches realistically biased (predictable hot paths) while the
    diffuse remainder provides the path diversity that pressures caches.
    """
    if isinstance(spec, str):
        spec = get_benchmark(spec)
    spec = replace(spec, prototype_fraction=prototype_fraction)
    X, _ = _generate(spec, num_rows, seed)
    return X
